"""End-to-end graph latency estimation and functional graph execution.

The *latency* executor walks a (quantized, fused) graph in topological order
and asks an *operator runner* for the latency of every node: UNIT's compiled
operators (``repro.core``) or one of the baseline libraries
(``repro.baselines``).  The sum is the model-inference latency reported in
the end-to-end figures; batch size is always 1 (Section V-C).

The *functional* executor (:func:`execute_graph`) runs the same graph
numerically: compute-intensive operators (convolutions, dense layers) are
expressed in the tensor DSL, lowered, and executed through the vectorized
execution engine (``repro.tir.execute``) — the repository's validation
oracle — while structural operators (pooling, concat, softmax, elementwise)
use direct numpy semantics.

:func:`run_model` is the *memory-planned* whole-model path: a liveness
analysis (:func:`plan_memory`) assigns every activation a slot in one shared
arena — a node's output buffer is reused as soon as its last consumer has
run, instead of every operator allocating fresh storage — and every
compute-intensive node executes through the process-wide executable-plan
cache (:mod:`repro.tir.plan`), so a model's many structurally identical
layers compile once and run warm.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..hwsim.cost import CostBreakdown
from .ir import (
    ConcatNode,
    Conv2DNode,
    DenseNode,
    DepthwiseConv2DNode,
    ElementwiseNode,
    FlattenNode,
    GlobalPoolNode,
    Graph,
    GraphNode,
    InputNode,
    PoolNode,
    SoftmaxNode,
)

__all__ = [
    "GraphLatencyReport",
    "estimate_graph_latency",
    "execute_graph",
    "MemoryPlan",
    "plan_memory",
    "ModelRun",
    "run_model",
]

# Fallback sustained MAC rate for operators no runner specialises (depthwise
# convolutions, pooling): a vectorised but non-tensorized loop.
_FALLBACK_MACS_PER_SECOND = 2.0e11
_FALLBACK_ELEMENTWISE_US = 4.0


@dataclass
class GraphLatencyReport:
    """Per-node and total latency of one model."""

    graph_name: str
    total: CostBreakdown
    per_node: Dict[str, CostBreakdown] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.total.seconds

    @property
    def total_milliseconds(self) -> float:
        return self.total.seconds * 1e3

    def slowest_nodes(self, k: int = 5) -> List[str]:
        ranked = sorted(self.per_node.items(), key=lambda kv: kv[1].seconds, reverse=True)
        return [name for name, _ in ranked[:k]]


def estimate_graph_latency(graph: Graph, runner) -> GraphLatencyReport:
    """Estimate the end-to-end inference latency of ``graph`` under ``runner``.

    ``runner`` must provide ``conv2d_latency(Conv2DParams)``,
    ``dense_latency(DenseParams)`` and ``elementwise_latency()``; it may
    optionally provide ``depthwise_conv2d_latency(node)`` and
    ``pool_latency(node, shape)`` for more faithful handling of those
    operators.
    """
    graph.infer_shapes()
    per_node: Dict[str, CostBreakdown] = {}
    total = CostBreakdown(seconds=0.0)
    for node in graph.nodes:
        cost = _node_latency(node, graph, runner)
        per_node[node.name] = cost
        total = total + cost
    return GraphLatencyReport(graph_name=graph.name, total=total, per_node=per_node)


def _node_latency(node: GraphNode, graph: Graph, runner) -> CostBreakdown:
    if isinstance(node, InputNode):
        return CostBreakdown(seconds=0.0)
    if isinstance(node, Conv2DNode):
        params = node.conv_params()
        cost = runner.conv2d_latency(params)
        if node.groups > 1:
            cost = cost.scaled(node.groups)
        return cost
    if isinstance(node, DenseNode):
        return runner.dense_latency(node.dense_params())
    if isinstance(node, DepthwiseConv2DNode):
        if hasattr(runner, "depthwise_conv2d_latency"):
            return runner.depthwise_conv2d_latency(node)
        seconds = node.macs / _FALLBACK_MACS_PER_SECOND + _FALLBACK_ELEMENTWISE_US * 1e-6
        return CostBreakdown(seconds=seconds, compute_seconds=seconds)
    if isinstance(node, (PoolNode, GlobalPoolNode)):
        if hasattr(runner, "pool_latency"):
            return runner.pool_latency(node, graph.output_shape(node.name))
        out = graph.output_shape(node.name)
        work = out.elements * (node.kernel**2 if isinstance(node, PoolNode) else 1)
        seconds = work / _FALLBACK_MACS_PER_SECOND + _FALLBACK_ELEMENTWISE_US * 1e-6
        return CostBreakdown(seconds=seconds, compute_seconds=seconds)
    if isinstance(node, (ElementwiseNode, ConcatNode, FlattenNode, SoftmaxNode)):
        return runner.elementwise_latency()
    raise TypeError(f"unknown graph node type {type(node).__name__}")


# ---------------------------------------------------------------------------
# Functional execution — the engine as the graph-level oracle
# ---------------------------------------------------------------------------


def execute_graph(
    graph: Graph,
    inputs: Dict[str, np.ndarray],
    weights: Optional[Dict[str, np.ndarray]] = None,
    rng: Optional[np.random.Generator] = None,
    engine: str = "vector",
    executor=None,
) -> Dict[str, np.ndarray]:
    """Execute ``graph`` numerically in float32, CHW activations.

    ``inputs`` maps input-node names to ``(C, H, W)`` arrays.  ``weights``
    optionally supplies parameters per node (``(K, C, R, S)`` for
    convolutions, ``(C, R, S)`` for depthwise, ``(out, in)`` for dense);
    missing parameters are drawn deterministically from ``rng``.

    Convolutions and dense layers are lowered from the tensor DSL and run
    through a :class:`~repro.tir.Executor` — pass one via ``executor`` to
    control the tier and validation policy, or use the legacy ``engine``
    string (``"vector"`` is the default oracle, ``"scalar"`` the reference
    interpreter), so graph execution exercises exactly the code path that
    validates tensorized kernels.  Returns every node's output keyed by node
    name.
    """
    graph.infer_shapes()
    weights = dict(weights or {})
    rng = rng or np.random.default_rng(0)
    executor = _resolve_executor(executor, engine)
    outputs: Dict[str, np.ndarray] = {}
    for node in graph.nodes:
        ins = [outputs[name] for name in node.inputs]
        out = _execute_node(node, ins, inputs, weights, rng, executor)
        for activation in node.fused_activations:
            out = _apply_elementwise(activation, [out])
        outputs[node.name] = np.ascontiguousarray(out, dtype=np.float32)
    return outputs


def _resolve_executor(executor, engine: str):
    """An Executor for graph execution: the caller's, or one for the legacy
    ``engine`` string."""
    if executor is not None:
        return executor
    from ..tir.executor import Executor, tier_for_engine

    return Executor(tier=tier_for_engine(engine))


def _execute_node(node, ins, inputs, weights, rng, executor, out_buf=None) -> np.ndarray:
    """Execute one node; when ``out_buf`` is given, compute-intensive
    operators write straight into it (an arena slot view under
    :func:`run_model`) and it is returned."""
    from ..dsl import compute, placeholder, reduce_axis, sum_reduce
    from ..tir import lower

    def dsl_run(out_tensor, bindings, out_array=None):
        func = lower(out_tensor)
        buffers = {}
        for param, array in bindings.items():
            buffers[param] = np.ascontiguousarray(array, dtype=np.float32)
        if out_array is not None:
            # Execute straight into the caller's (arena) storage: both
            # engines scatter into the bound output buffer in place, so no
            # per-op output allocation happens.
            out_array = out_array.reshape(func.output.shape)
            out_array[...] = 0.0
            buffers[func.output] = out_array
        else:
            buffers[func.output] = np.zeros(
                func.output.shape, dtype=func.output.dtype.np_dtype
            )
        return executor.run(func, buffers)

    if isinstance(node, InputNode):
        try:
            array = inputs[node.name]
        except KeyError as exc:
            raise KeyError(f"missing input array for node {node.name!r}") from exc
        shape = (node.shape.channels, node.shape.height, node.shape.width)
        if tuple(array.shape) != shape:
            raise ValueError(
                f"input {node.name!r} has shape {array.shape}, expected {shape}"
            )
        return array

    if isinstance(node, Conv2DNode):
        x = ins[0]
        c_in, _, _ = x.shape
        w = _param(
            weights, node.name, (node.out_channels, c_in // node.groups, node.kernel, node.kernel), rng
        )
        if node.padding:
            x = np.pad(x, ((0, 0), (node.padding,) * 2, (node.padding,) * 2))
        if node.groups == 1:
            return _conv2d_dsl(dsl_run, x, w, node.stride, node.name, out_buf)
        group_c = c_in // node.groups
        group_k = node.out_channels // node.groups
        parts = [
            _conv2d_dsl(
                dsl_run,
                x[g * group_c : (g + 1) * group_c],
                w[g * group_k : (g + 1) * group_k],
                node.stride,
                f"{node.name}_g{g}",
                None if out_buf is None else out_buf[g * group_k : (g + 1) * group_k],
            )
            for g in range(node.groups)
        ]
        if out_buf is not None:
            return out_buf
        return np.concatenate(parts, axis=0)

    if isinstance(node, DepthwiseConv2DNode):
        x = ins[0]
        c = x.shape[0]
        w = _param(weights, node.name, (c, node.kernel, node.kernel), rng)
        if node.padding:
            x = np.pad(x, ((0, 0), (node.padding,) * 2, (node.padding,) * 2))
        _, h, wd = x.shape
        oh = (h - node.kernel) // node.stride + 1
        ow = (wd - node.kernel) // node.stride + 1
        data = placeholder(x.shape, "float32", "data")
        wt = placeholder(w.shape, "float32", "weight")
        rr = reduce_axis(0, node.kernel, "r")
        rs = reduce_axis(0, node.kernel, "s")
        out = compute(
            (c, oh, ow),
            lambda cc, y, xx: sum_reduce(
                data[cc, y * node.stride + rr, xx * node.stride + rs] * wt[cc, rr, rs],
                [rr, rs],
            ),
            name=node.name,
        )
        return dsl_run(out, {data: x, wt: w}, out_buf)

    if isinstance(node, DenseNode):
        x = ins[0].reshape(-1)
        w = _param(weights, node.name, (node.out_features, x.size), rng)
        data = placeholder(x.shape, "float32", "data")
        wt = placeholder(w.shape, "float32", "weight")
        rk = reduce_axis(0, x.size, "rk")
        out = compute(
            (node.out_features,),
            lambda j: sum_reduce(data[rk] * wt[j, rk], rk),
            name=node.name,
        )
        return dsl_run(out, {data: x, wt: w}, out_buf).reshape(node.out_features, 1, 1)

    if isinstance(node, PoolNode):
        x = ins[0]
        k, s = node.kernel, node.stride
        if node.padding:
            fill = -np.inf if node.kind == "max" else 0.0
            x = np.pad(
                x, ((0, 0), (node.padding,) * 2, (node.padding,) * 2),
                constant_values=fill,
            )
        _, h, w = x.shape
        oh = max((h - k) // s + 1, 1)
        ow = max((w - k) // s + 1, 1)
        acc = None
        for r in range(k):
            for c in range(k):
                window = x[:, r : r + oh * s : s, c : c + ow * s : s]
                if acc is None:
                    acc = window.astype(np.float32)
                elif node.kind == "max":
                    acc = np.maximum(acc, window)
                else:
                    acc = acc + window
        return acc if node.kind == "max" else acc / float(k * k)

    if isinstance(node, GlobalPoolNode):
        return ins[0].mean(axis=(1, 2), keepdims=True)

    if isinstance(node, ElementwiseNode):
        return _apply_elementwise(node.kind, ins)

    if isinstance(node, ConcatNode):
        return np.concatenate(ins, axis=0)

    if isinstance(node, FlattenNode):
        return ins[0].reshape(-1, 1, 1)

    if isinstance(node, SoftmaxNode):
        x = ins[0]
        e = np.exp(x - x.max(axis=0, keepdims=True))
        return e / e.sum(axis=0, keepdims=True)

    raise TypeError(f"cannot execute graph node type {type(node).__name__}")


def _conv2d_dsl(dsl_run, x, w, stride, name, out_buf=None):
    from ..dsl import compute, placeholder, reduce_axis, sum_reduce

    c_in, h, wd = x.shape
    k, _, kernel, _ = w.shape
    oh = (h - kernel) // stride + 1
    ow = (wd - kernel) // stride + 1
    data = placeholder(x.shape, "float32", "data")
    wt = placeholder(w.shape, "float32", "weight")
    rc = reduce_axis(0, c_in, "rc")
    rr = reduce_axis(0, kernel, "r")
    rs = reduce_axis(0, kernel, "s")
    out = compute(
        (k, oh, ow),
        lambda kk, y, xx: sum_reduce(
            data[rc, y * stride + rr, xx * stride + rs] * wt[kk, rc, rr, rs],
            [rc, rr, rs],
        ),
        name=name,
    )
    return dsl_run(out, {data: x, wt: w}, out_buf)


def _param(weights: Dict[str, np.ndarray], name: str, shape, rng) -> np.ndarray:
    if name in weights:
        array = np.asarray(weights[name], dtype=np.float32)
        if tuple(array.shape) != tuple(shape):
            raise ValueError(
                f"parameter for {name!r} has shape {array.shape}, expected {tuple(shape)}"
            )
        return array
    array = (rng.standard_normal(size=shape) * 0.1).astype(np.float32)
    weights[name] = array
    return array


def _apply_elementwise(kind: str, ins) -> np.ndarray:
    if kind == "relu":
        return np.maximum(ins[0], 0.0)
    if kind == "add":
        total = ins[0]
        for other in ins[1:]:
            total = total + other
        return total
    if kind == "clip":
        return np.clip(ins[0], 0.0, 6.0)
    if kind == "sigmoid":
        return 1.0 / (1.0 + np.exp(-ins[0]))
    # batch_norm and friends are latency stand-ins with no parameters here;
    # they pass activations through unchanged.
    return ins[0]


# ---------------------------------------------------------------------------
# Memory-planned whole-model execution
# ---------------------------------------------------------------------------


@dataclass
class MemoryPlan:
    """Liveness-based activation storage assignment for one graph.

    Every non-input node's output lives in a *slot* of one shared arena; a
    slot is recycled as soon as the node's last consumer has executed.
    ``naive_elements`` is what per-op fresh allocation would use (the sum of
    every activation), the denominator of the reuse ratio reported by the
    benchmarks.
    """

    graph_name: str
    slot_of: Dict[str, int]
    slot_elements: List[int]
    naive_elements: int

    @property
    def arena_elements(self) -> int:
        return sum(self.slot_elements)

    @property
    def arena_bytes(self) -> int:
        return self.arena_elements * 4  # float32 activations

    @property
    def naive_bytes(self) -> int:
        return self.naive_elements * 4

    @property
    def reuse_ratio(self) -> float:
        """How many times smaller the arena is than naive allocation."""
        return self.naive_elements / self.arena_elements if self.arena_elements else 1.0


def plan_memory(graph: Graph, keep: Sequence[str] = ()) -> MemoryPlan:
    """Assign every activation an arena slot via liveness analysis.

    Nodes in ``keep`` (plus the graph output — the last node) are pinned:
    their slots are never recycled, so their contents survive the whole run.
    Slot assignment is greedy best-fit: a released slot is reused by the next
    node it can hold (growing the smallest-fitting slot when none is large
    enough), which keeps the arena close to the live-set peak.
    """
    graph.infer_shapes()
    pinned = set(keep)
    if graph.nodes:
        pinned.add(graph.nodes[-1].name)
    last_use: Dict[str, int] = {}
    for index, node in enumerate(graph.nodes):
        for name in node.inputs:
            last_use[name] = index

    slot_of: Dict[str, int] = {}
    slot_elements: List[int] = []
    free: List[int] = []
    naive = 0
    for index, node in enumerate(graph.nodes):
        if not isinstance(node, InputNode):
            need = graph.output_shape(node.name).elements
            naive += need
            fitting = [s for s in free if slot_elements[s] >= need]
            if fitting:
                slot = min(fitting, key=lambda s: slot_elements[s])
                free.remove(slot)
            elif free:
                slot = max(free, key=lambda s: slot_elements[s])
                free.remove(slot)
                slot_elements[slot] = need
            else:
                slot = len(slot_elements)
                slot_elements.append(need)
            slot_of[node.name] = slot
        # Inputs whose last consumer just ran release their slots — after the
        # current node's output slot is assigned, so a node never computes
        # into a buffer it is still reading.  Deduplicated: a node listing
        # the same input twice must release its slot exactly once.
        for name in dict.fromkeys(node.inputs):
            if (
                last_use.get(name) == index
                and name in slot_of
                and name not in pinned
            ):
                free.append(slot_of[name])
    return MemoryPlan(
        graph_name=graph.name,
        slot_of=slot_of,
        slot_elements=slot_elements,
        naive_elements=naive,
    )


@dataclass
class ModelRun:
    """The result of one memory-planned, plan-cached model execution."""

    graph_name: str
    output: np.ndarray
    outputs: Dict[str, np.ndarray]
    memory: MemoryPlan
    plan_hits: int
    plan_misses: int
    seconds: float

    @property
    def plan_hit_rate(self) -> float:
        total = self.plan_hits + self.plan_misses
        return self.plan_hits / total if total else 0.0


def run_model(
    graph: Graph,
    inputs: Dict[str, np.ndarray],
    weights: Optional[Dict[str, np.ndarray]] = None,
    rng: Optional[np.random.Generator] = None,
    engine: str = "vector",
    keep: Sequence[str] = (),
    executor=None,
) -> ModelRun:
    """Execute a whole model through cached plans and one activation arena.

    The engine-backed counterpart of :func:`execute_graph` for end-to-end
    runs: numerically identical (same DSL lowerings, same engines, same
    parameter generation), but activations live in arena slots assigned by
    :func:`plan_memory` — recycled buffer space instead of one fresh array
    per operator — and every lowered operator executes through the
    process-wide :class:`~repro.tir.plan.PlanCache`, so a model's repeated
    layer shapes pay the loop-nest analysis once.

    Returns a :class:`ModelRun` with the graph output (the last node), the
    outputs of ``keep`` nodes, the memory plan, and the plan-cache hit/miss
    delta of this call.  Buffers of nodes not in ``keep`` are reused during
    the run and must not be read afterwards.
    """
    from ..tir.plan import plan_cache

    graph.infer_shapes()
    memory = plan_memory(graph, keep=keep)
    weights = dict(weights or {})
    rng = rng or np.random.default_rng(0)
    executor = _resolve_executor(executor, engine)

    cache_stats = plan_cache().stats
    hits0, misses0 = cache_stats.hits, cache_stats.misses
    started = time.perf_counter()

    arena = np.empty(memory.arena_elements, dtype=np.float32)
    offsets: List[int] = []
    cursor = 0
    for elements in memory.slot_elements:
        offsets.append(cursor)
        cursor += elements

    def slot_view(name: str) -> np.ndarray:
        shape = graph.output_shape(name)
        start = offsets[memory.slot_of[name]]
        return arena[start : start + shape.elements].reshape(
            shape.channels, shape.height, shape.width
        )

    outputs: Dict[str, np.ndarray] = {}
    for node in graph.nodes:
        ins = [outputs[name] for name in node.inputs]
        if isinstance(node, InputNode):
            outputs[node.name] = np.ascontiguousarray(
                _execute_node(node, ins, inputs, weights, rng, executor),
                dtype=np.float32,
            )
            continue
        view = slot_view(node.name)
        result = _execute_node(node, ins, inputs, weights, rng, executor, out_buf=view)
        for activation in node.fused_activations:
            result = _apply_elementwise(activation, [result])
        result = np.asarray(result, dtype=np.float32).reshape(view.shape)
        # ``result`` is either a reshape of ``view`` itself (the in-place DSL
        # paths — same memory, same layout, so the copy is a safe no-op) or a
        # fresh array from a structural operator / fused activation.
        np.copyto(view, result)
        outputs[node.name] = view

    final = graph.nodes[-1].name
    kept = {name: outputs[name].copy() for name in keep}
    kept[final] = outputs[final].copy()
    return ModelRun(
        graph_name=graph.name,
        output=kept[final],
        outputs=kept,
        memory=memory,
        plan_hits=cache_stats.hits - hits0,
        plan_misses=cache_stats.misses - misses0,
        seconds=time.perf_counter() - started,
    )
