"""End-to-end graph latency estimation and functional graph execution.

The *latency* executor walks a (quantized, fused) graph in topological order
and asks an *operator runner* for the latency of every node: UNIT's compiled
operators (``repro.core``) or one of the baseline libraries
(``repro.baselines``).  The sum is the model-inference latency reported in
the end-to-end figures; batch size is always 1 (Section V-C).

The *functional* executor (:func:`execute_graph`) runs the same graph
numerically: compute-intensive operators (convolutions, dense layers) are
expressed in the tensor DSL, lowered, and executed through the vectorized
execution engine (``repro.tir.execute``) — the repository's validation
oracle — while structural operators (pooling, concat, softmax, elementwise)
use direct numpy semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..hwsim.cost import CostBreakdown
from .ir import (
    ConcatNode,
    Conv2DNode,
    DenseNode,
    DepthwiseConv2DNode,
    ElementwiseNode,
    FlattenNode,
    GlobalPoolNode,
    Graph,
    GraphNode,
    InputNode,
    PoolNode,
    SoftmaxNode,
)

__all__ = ["GraphLatencyReport", "estimate_graph_latency", "execute_graph"]

# Fallback sustained MAC rate for operators no runner specialises (depthwise
# convolutions, pooling): a vectorised but non-tensorized loop.
_FALLBACK_MACS_PER_SECOND = 2.0e11
_FALLBACK_ELEMENTWISE_US = 4.0


@dataclass
class GraphLatencyReport:
    """Per-node and total latency of one model."""

    graph_name: str
    total: CostBreakdown
    per_node: Dict[str, CostBreakdown] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.total.seconds

    @property
    def total_milliseconds(self) -> float:
        return self.total.seconds * 1e3

    def slowest_nodes(self, k: int = 5) -> List[str]:
        ranked = sorted(self.per_node.items(), key=lambda kv: kv[1].seconds, reverse=True)
        return [name for name, _ in ranked[:k]]


def estimate_graph_latency(graph: Graph, runner) -> GraphLatencyReport:
    """Estimate the end-to-end inference latency of ``graph`` under ``runner``.

    ``runner`` must provide ``conv2d_latency(Conv2DParams)``,
    ``dense_latency(DenseParams)`` and ``elementwise_latency()``; it may
    optionally provide ``depthwise_conv2d_latency(node)`` and
    ``pool_latency(node, shape)`` for more faithful handling of those
    operators.
    """
    graph.infer_shapes()
    per_node: Dict[str, CostBreakdown] = {}
    total = CostBreakdown(seconds=0.0)
    for node in graph.nodes:
        cost = _node_latency(node, graph, runner)
        per_node[node.name] = cost
        total = total + cost
    return GraphLatencyReport(graph_name=graph.name, total=total, per_node=per_node)


def _node_latency(node: GraphNode, graph: Graph, runner) -> CostBreakdown:
    if isinstance(node, InputNode):
        return CostBreakdown(seconds=0.0)
    if isinstance(node, Conv2DNode):
        params = node.conv_params()
        cost = runner.conv2d_latency(params)
        if node.groups > 1:
            cost = cost.scaled(node.groups)
        return cost
    if isinstance(node, DenseNode):
        return runner.dense_latency(node.dense_params())
    if isinstance(node, DepthwiseConv2DNode):
        if hasattr(runner, "depthwise_conv2d_latency"):
            return runner.depthwise_conv2d_latency(node)
        seconds = node.macs / _FALLBACK_MACS_PER_SECOND + _FALLBACK_ELEMENTWISE_US * 1e-6
        return CostBreakdown(seconds=seconds, compute_seconds=seconds)
    if isinstance(node, (PoolNode, GlobalPoolNode)):
        if hasattr(runner, "pool_latency"):
            return runner.pool_latency(node, graph.output_shape(node.name))
        out = graph.output_shape(node.name)
        work = out.elements * (node.kernel**2 if isinstance(node, PoolNode) else 1)
        seconds = work / _FALLBACK_MACS_PER_SECOND + _FALLBACK_ELEMENTWISE_US * 1e-6
        return CostBreakdown(seconds=seconds, compute_seconds=seconds)
    if isinstance(node, (ElementwiseNode, ConcatNode, FlattenNode, SoftmaxNode)):
        return runner.elementwise_latency()
    raise TypeError(f"unknown graph node type {type(node).__name__}")


# ---------------------------------------------------------------------------
# Functional execution — the engine as the graph-level oracle
# ---------------------------------------------------------------------------


def execute_graph(
    graph: Graph,
    inputs: Dict[str, np.ndarray],
    weights: Optional[Dict[str, np.ndarray]] = None,
    rng: Optional[np.random.Generator] = None,
    engine: str = "vector",
) -> Dict[str, np.ndarray]:
    """Execute ``graph`` numerically in float32, CHW activations.

    ``inputs`` maps input-node names to ``(C, H, W)`` arrays.  ``weights``
    optionally supplies parameters per node (``(K, C, R, S)`` for
    convolutions, ``(C, R, S)`` for depthwise, ``(out, in)`` for dense);
    missing parameters are drawn deterministically from ``rng``.

    Convolutions and dense layers are lowered from the tensor DSL and run
    through ``repro.tir.execute`` with the selected engine (``"vector"`` is
    the default oracle, ``"scalar"`` the reference interpreter), so graph
    execution exercises exactly the code path that validates tensorized
    kernels.  Returns every node's output keyed by node name.
    """
    graph.infer_shapes()
    weights = dict(weights or {})
    rng = rng or np.random.default_rng(0)
    outputs: Dict[str, np.ndarray] = {}
    for node in graph.nodes:
        ins = [outputs[name] for name in node.inputs]
        out = _execute_node(node, ins, inputs, weights, rng, engine)
        for activation in node.fused_activations:
            out = _apply_elementwise(activation, [out])
        outputs[node.name] = np.ascontiguousarray(out, dtype=np.float32)
    return outputs


def _execute_node(node, ins, inputs, weights, rng, engine) -> np.ndarray:
    from ..dsl import compute, placeholder, reduce_axis, sum_reduce
    from ..tir import execute as tir_execute
    from ..tir import lower

    def dsl_run(out_tensor, bindings):
        func = lower(out_tensor)
        buffers = {}
        for param, array in bindings.items():
            buffers[param] = np.ascontiguousarray(array, dtype=np.float32)
        buffers[func.output] = np.zeros(
            func.output.shape, dtype=func.output.dtype.np_dtype
        )
        return tir_execute(func, buffers, engine=engine)

    if isinstance(node, InputNode):
        try:
            array = inputs[node.name]
        except KeyError as exc:
            raise KeyError(f"missing input array for node {node.name!r}") from exc
        shape = (node.shape.channels, node.shape.height, node.shape.width)
        if tuple(array.shape) != shape:
            raise ValueError(
                f"input {node.name!r} has shape {array.shape}, expected {shape}"
            )
        return array

    if isinstance(node, Conv2DNode):
        x = ins[0]
        c_in, _, _ = x.shape
        w = _param(
            weights, node.name, (node.out_channels, c_in // node.groups, node.kernel, node.kernel), rng
        )
        if node.padding:
            x = np.pad(x, ((0, 0), (node.padding,) * 2, (node.padding,) * 2))
        if node.groups == 1:
            return _conv2d_dsl(dsl_run, x, w, node.stride, node.name)
        group_c = c_in // node.groups
        group_k = node.out_channels // node.groups
        parts = [
            _conv2d_dsl(
                dsl_run,
                x[g * group_c : (g + 1) * group_c],
                w[g * group_k : (g + 1) * group_k],
                node.stride,
                f"{node.name}_g{g}",
            )
            for g in range(node.groups)
        ]
        return np.concatenate(parts, axis=0)

    if isinstance(node, DepthwiseConv2DNode):
        x = ins[0]
        c = x.shape[0]
        w = _param(weights, node.name, (c, node.kernel, node.kernel), rng)
        if node.padding:
            x = np.pad(x, ((0, 0), (node.padding,) * 2, (node.padding,) * 2))
        _, h, wd = x.shape
        oh = (h - node.kernel) // node.stride + 1
        ow = (wd - node.kernel) // node.stride + 1
        data = placeholder(x.shape, "float32", "data")
        wt = placeholder(w.shape, "float32", "weight")
        rr = reduce_axis(0, node.kernel, "r")
        rs = reduce_axis(0, node.kernel, "s")
        out = compute(
            (c, oh, ow),
            lambda cc, y, xx: sum_reduce(
                data[cc, y * node.stride + rr, xx * node.stride + rs] * wt[cc, rr, rs],
                [rr, rs],
            ),
            name=node.name,
        )
        return dsl_run(out, {data: x, wt: w})

    if isinstance(node, DenseNode):
        x = ins[0].reshape(-1)
        w = _param(weights, node.name, (node.out_features, x.size), rng)
        data = placeholder(x.shape, "float32", "data")
        wt = placeholder(w.shape, "float32", "weight")
        rk = reduce_axis(0, x.size, "rk")
        out = compute(
            (node.out_features,),
            lambda j: sum_reduce(data[rk] * wt[j, rk], rk),
            name=node.name,
        )
        return dsl_run(out, {data: x, wt: w}).reshape(node.out_features, 1, 1)

    if isinstance(node, PoolNode):
        x = ins[0]
        k, s = node.kernel, node.stride
        if node.padding:
            fill = -np.inf if node.kind == "max" else 0.0
            x = np.pad(
                x, ((0, 0), (node.padding,) * 2, (node.padding,) * 2),
                constant_values=fill,
            )
        _, h, w = x.shape
        oh = max((h - k) // s + 1, 1)
        ow = max((w - k) // s + 1, 1)
        acc = None
        for r in range(k):
            for c in range(k):
                window = x[:, r : r + oh * s : s, c : c + ow * s : s]
                if acc is None:
                    acc = window.astype(np.float32)
                elif node.kind == "max":
                    acc = np.maximum(acc, window)
                else:
                    acc = acc + window
        return acc if node.kind == "max" else acc / float(k * k)

    if isinstance(node, GlobalPoolNode):
        return ins[0].mean(axis=(1, 2), keepdims=True)

    if isinstance(node, ElementwiseNode):
        return _apply_elementwise(node.kind, ins)

    if isinstance(node, ConcatNode):
        return np.concatenate(ins, axis=0)

    if isinstance(node, FlattenNode):
        return ins[0].reshape(-1, 1, 1)

    if isinstance(node, SoftmaxNode):
        x = ins[0]
        e = np.exp(x - x.max(axis=0, keepdims=True))
        return e / e.sum(axis=0, keepdims=True)

    raise TypeError(f"cannot execute graph node type {type(node).__name__}")


def _conv2d_dsl(dsl_run, x, w, stride, name):
    from ..dsl import compute, placeholder, reduce_axis, sum_reduce

    c_in, h, wd = x.shape
    k, _, kernel, _ = w.shape
    oh = (h - kernel) // stride + 1
    ow = (wd - kernel) // stride + 1
    data = placeholder(x.shape, "float32", "data")
    wt = placeholder(w.shape, "float32", "weight")
    rc = reduce_axis(0, c_in, "rc")
    rr = reduce_axis(0, kernel, "r")
    rs = reduce_axis(0, kernel, "s")
    out = compute(
        (k, oh, ow),
        lambda kk, y, xx: sum_reduce(
            data[rc, y * stride + rr, xx * stride + rs] * wt[kk, rc, rr, rs],
            [rc, rr, rs],
        ),
        name=name,
    )
    return dsl_run(out, {data: x, wt: w})


def _param(weights: Dict[str, np.ndarray], name: str, shape, rng) -> np.ndarray:
    if name in weights:
        array = np.asarray(weights[name], dtype=np.float32)
        if tuple(array.shape) != tuple(shape):
            raise ValueError(
                f"parameter for {name!r} has shape {array.shape}, expected {tuple(shape)}"
            )
        return array
    array = (rng.standard_normal(size=shape) * 0.1).astype(np.float32)
    weights[name] = array
    return array


def _apply_elementwise(kind: str, ins) -> np.ndarray:
    if kind == "relu":
        return np.maximum(ins[0], 0.0)
    if kind == "add":
        total = ins[0]
        for other in ins[1:]:
            total = total + other
        return total
    if kind == "clip":
        return np.clip(ins[0], 0.0, 6.0)
    if kind == "sigmoid":
        return 1.0 / (1.0 + np.exp(-ins[0]))
    # batch_norm and friends are latency stand-ins with no parameters here;
    # they pass activations through unchanged.
    return ins[0]
