"""Graph-level quantization pass (Section V-C).

The evaluated CPU models are quantized: fp32 convolutions and dense layers
become uint8×int8 operators accumulating in int32, with quantize/dequantize
boundaries where non-quantizable operators require fp32 inputs.  On the GPU
the analogous transformation converts operators to fp16 storage with fp32
accumulation (mixed precision).

The pass rewrites operator dtypes and inserts explicit ``quantize`` /
``dequantize`` elementwise nodes so the executor charges their (small) cost,
mirroring the casting overhead discussion around Figure 1.
"""

from __future__ import annotations

from typing import List, Set

from .ir import (
    Conv2DNode,
    DenseNode,
    DepthwiseConv2DNode,
    ElementwiseNode,
    Graph,
    GraphNode,
    InputNode,
)

__all__ = ["quantize_graph", "QUANTIZABLE_TYPES"]

QUANTIZABLE_TYPES = (Conv2DNode, DenseNode, DepthwiseConv2DNode)


def quantize_graph(graph: Graph, target_dtype: str = "int8") -> Graph:
    """Return a quantized (or mixed-precision) copy of ``graph``.

    ``target_dtype`` is ``"int8"`` for the CPU flow (uint8 activations, int8
    weights, int32 accumulation) or ``"float16"`` for the GPU flow (fp16
    storage, fp32 accumulation).
    """
    if target_dtype not in ("int8", "float16"):
        raise ValueError("target_dtype must be 'int8' or 'float16'")
    graph.infer_shapes()
    new_nodes: List[GraphNode] = []
    renamed = {}

    def resolve(name: str) -> str:
        return renamed.get(name, name)

    for node in graph.nodes:
        inputs = [resolve(i) for i in node.inputs]
        if isinstance(node, InputNode):
            new_nodes.append(node)
            # Quantize the network input once.
            q = ElementwiseNode(
                name=f"{node.name}_quantize",
                inputs=[node.name],
                dtype=target_dtype,
                kind="quantize",
            )
            new_nodes.append(q)
            renamed[node.name] = q.name
            continue
        if isinstance(node, QUANTIZABLE_TYPES):
            clone = _clone_with(node, inputs=inputs, dtype=target_dtype)
            new_nodes.append(clone)
            renamed[node.name] = clone.name
            continue
        # Non-compute operators follow the dtype of their inputs; pooling,
        # elementwise and concat all operate fine on quantized data.
        clone = _clone_with(node, inputs=inputs, dtype=target_dtype)
        new_nodes.append(clone)
        renamed[node.name] = clone.name

    # Dequantize before the final classifier output (softmax needs fp32).
    last = new_nodes[-1]
    dq = ElementwiseNode(
        name="final_dequantize", inputs=[last.name], dtype="float32", kind="dequantize"
    )
    new_nodes.append(dq)
    return graph.rebuild(new_nodes)


def _clone_with(node: GraphNode, inputs: List[str], dtype: str) -> GraphNode:
    import copy

    clone = copy.copy(node)
    clone.inputs = list(inputs)
    clone.dtype = dtype
    clone.fused_activations = list(node.fused_activations)
    return clone
