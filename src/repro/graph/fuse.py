"""Operator-fusion pass.

Compiler pipelines (TVM, and UNIT built on it) fuse elementwise operators —
ReLU, batch-norm scaling, residual adds, quantize/requantize — into the
producing convolution or dense operator, eliminating their kernel launches and
extra memory round trips.  Library-backed frameworks such as MXNet+oneDNN keep
many of them as separate operators; that difference is part of the end-to-end
gap in Figure 8, so the pass is applied only to the compiler-backed flows.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .ir import (
    ConcatNode,
    Conv2DNode,
    DenseNode,
    DepthwiseConv2DNode,
    ElementwiseNode,
    Graph,
    GraphNode,
)

__all__ = ["fuse_elementwise", "FUSABLE_KINDS"]

FUSABLE_KINDS = {
    "relu",
    "relu6",
    "clip",
    "batch_norm",
    "bias_add",
    "add",
    "quantize",
    "requantize",
    "dequantize",
    "sigmoid",
    "swish",
}

_PRODUCER_TYPES = (Conv2DNode, DenseNode, DepthwiseConv2DNode)


def fuse_elementwise(graph: Graph) -> Graph:
    """Fuse elementwise consumers into their compute-intensive producers.

    An elementwise node is fused when every one of its inputs is either the
    producer itself or a node that appears earlier (e.g. the residual branch of
    an ``add``).  Fused nodes are removed from the graph and recorded in the
    producer's ``fused_activations`` list.
    """
    graph.infer_shapes()
    consumers: Dict[str, int] = {}
    for node in graph.nodes:
        for inp in node.inputs:
            consumers[inp] = consumers.get(inp, 0) + 1

    kept: List[GraphNode] = []
    renamed: Dict[str, str] = {}
    by_name: Dict[str, GraphNode] = {}

    def resolve(name: str) -> str:
        while name in renamed:
            name = renamed[name]
        return name

    for node in graph.nodes:
        import copy

        clone = copy.copy(node)
        clone.inputs = [resolve(i) for i in node.inputs]
        clone.fused_activations = list(node.fused_activations)
        if isinstance(node, ElementwiseNode) and node.kind in FUSABLE_KINDS and clone.inputs:
            producer_name = clone.inputs[0]
            producer = by_name.get(producer_name)
            if (
                isinstance(producer, _PRODUCER_TYPES)
                and consumers.get(node.inputs[0], 0) <= 1 + (node.kind == "add")
            ):
                producer.fused_activations.append(node.kind)
                renamed[node.name] = producer_name
                continue
        kept.append(clone)
        by_name[clone.name] = clone

    return graph.rebuild(kept)
