"""Deterministic fault injection for the tuning service and store.

The service's failure paths (socket resets, torn frames, daemon crashes,
partial shard appends, stale locks, full disks) are exactly the paths a
stress test cannot reach on demand — they depend on the kernel killing a
process at the right byte.  This module makes them *schedulable*: the
production modules call :func:`fire` at named **injection points**, and a
test arms a :class:`FaultPlan` that decides — deterministically, from a
seed — which of those calls misbehave and how.

Zero overhead when disabled
---------------------------

Every hook in ``protocol.py`` / ``server.py`` / ``store.py`` is a plain
call to :func:`fire`, whose first statement returns when no plan is armed.
The disabled cost is one global load and one list-truthiness test — no
locks, no dict lookups, no string formatting (contexts are passed as
keyword references, never rendered).

Injection points
----------------

==================  ==========================================================
``protocol.send``   before a frame hits the socket (context: ``sock``,
                    ``frame``, ``message``) — resets and torn frames
``protocol.recv``   before a frame is read (context: ``sock``) — resets and
                    delayed responses
``server.tune``     a daemon is about to lead a search (context: ``service``,
                    ``key``) — crash-mid-tune
``server.respond``  a daemon is about to answer (context: ``sock``,
                    ``response``) — delayed/withheld responses
``store.append``    a record line is about to be appended (context: ``path``,
                    ``handle``, ``line``) — partial appends (torn tails)
``store.lock``      a shard lock is about to be acquired (context: ``path``)
                    — contended/stale locks
``store.compact``   a shard is about to be rewritten (context: ``path``,
                    ``tmp``) — disk-full mid-compaction
``backend.compile`` a native kernel is about to be compiled (context:
                    ``func_name``, ``where`` — ``"host"`` or ``"sandbox"``)
                    — hung or crashing compilers
``backend.qualify`` the sandbox child is about to run the candidate kernel
                    (context: ``func_name``, ``where="sandbox"``) —
                    segfaulting/OOMing/hanging kernels
``worker.task``     a tuning worker is about to search a leased task
                    (context: ``worker``, ``index``, ``task``) — workers
                    SIGKILLed mid-lease
``worker.heartbeat`` a worker is about to stamp its liveness file (context:
                    ``worker``, ``path``) — frozen heartbeats
==================  ==========================================================

Usage::

    with FaultPlan(seed=7) as plan:
        plan.on("protocol.send", reset_connection, times=1)
        plan.on("protocol.recv", delay(0.2), when=plan.chance(0.25))
        ...exercise the service...
    assert plan.fired("protocol.send") == 1

Plans nest (LIFO); rules fire independently.  Everything a plan decides —
including ``chance`` predicates — draws from the plan's own seeded
:class:`random.Random`, so a chaos run is replayed exactly by its seed.
"""

from __future__ import annotations

import errno
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "POINTS",
    "InjectedFault",
    "Injection",
    "FaultPlan",
    "fire",
    "active",
    "reset_connection",
    "torn_frame",
    "delay",
    "crash_daemon",
    "partial_append",
    "disk_full",
    "contend_lock",
    "segfault",
    "hang",
    "oom",
]

POINTS = (
    "protocol.send",
    "protocol.recv",
    "server.tune",
    "server.respond",
    "store.append",
    "store.lock",
    "store.compact",
    "backend.compile",
    "backend.qualify",
    "worker.task",
    "worker.heartbeat",
)


class InjectedFault(RuntimeError):
    """Raised by canned actions that model a crash or an aborted operation.

    Distinct from any production exception type so a test can tell "the
    fault fired" from "the code under test broke".
    """


@dataclass
class Injection:
    """One firing of one rule: what fired, the how-many-th time, and the
    call-site context (sockets, paths, handles — by reference)."""

    point: str
    hits: int
    context: Dict[str, object]


@dataclass
class _Rule:
    point: str
    action: Callable[[Injection], None]
    times: Optional[int]  # firings allowed; None = unlimited
    after: int  # matches to skip before the first firing
    when: Optional[Callable[[Dict[str, object]], bool]]
    matches: int = 0
    fired: int = 0


# The armed plans, innermost last.  ``fire`` reads this without the lock —
# arming/disarming swaps the list object atomically (CPython reference
# assignment), and the disabled fast path must not pay for a lock.
_plans: List["FaultPlan"] = []
_plans_lock = threading.Lock()


def active() -> bool:
    """Whether any fault plan is currently armed."""
    return bool(_plans)


def fire(point: str, **context) -> None:
    """Production-side hook: give every armed plan a chance to misbehave.

    The no-plan fast path is a single truthiness test.  Actions run on the
    calling thread and communicate by raising (or by side effects on the
    context they were handed), so the fault surfaces exactly where the real
    failure would.
    """
    if not _plans:
        return
    for plan in reversed(_plans):
        plan._fire(point, context)


class FaultPlan:
    """A seeded set of fault rules, armed as a context manager.

    :meth:`on` registers a rule; while the plan is entered, every matching
    :func:`fire` call may trigger it.  ``times`` caps firings (default 1),
    ``after`` skips the first N matches (fail the *third* append, not the
    first), ``when`` is an extra predicate over the call context —
    :meth:`chance` builds a seeded-probability one.
    """

    def __init__(self, seed: Optional[int] = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.rules: List[_Rule] = []
        self.log: List[Injection] = []
        self._lock = threading.Lock()

    # -- configuration --------------------------------------------------------
    def on(
        self,
        point: str,
        action: Callable[[Injection], None],
        times: Optional[int] = 1,
        after: int = 0,
        when: Optional[Callable[[Dict[str, object]], bool]] = None,
    ) -> "FaultPlan":
        if point not in POINTS:
            raise ValueError(f"unknown injection point {point!r} (expected one of {POINTS})")
        if times is not None and times < 1:
            raise ValueError("times must be at least 1 (or None for unlimited)")
        if after < 0:
            raise ValueError("after must be non-negative")
        self.rules.append(_Rule(point, action, times, after, when))
        return self

    def chance(self, probability: float) -> Callable[[Dict[str, object]], bool]:
        """A ``when=`` predicate that fires with seeded probability.

        Draws from the plan's own RNG, so the whole chaos schedule is a
        pure function of the seed and the sequence of fire() calls.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        return lambda context: self.rng.random() < probability

    # -- accounting -----------------------------------------------------------
    def fired(self, point: Optional[str] = None) -> int:
        """Firings so far, optionally restricted to one point."""
        with self._lock:
            if point is None:
                return len(self.log)
            return sum(1 for injection in self.log if injection.point == point)

    # -- arming ---------------------------------------------------------------
    def __enter__(self) -> "FaultPlan":
        global _plans
        with _plans_lock:
            if self in _plans:
                raise RuntimeError("this plan is already armed")
            _plans = _plans + [self]
        return self

    def __exit__(self, *exc) -> None:
        global _plans
        with _plans_lock:
            _plans = [plan for plan in _plans if plan is not self]

    # -- firing ---------------------------------------------------------------
    def _fire(self, point: str, context: Dict[str, object]) -> None:
        # Decide under the lock (counters + RNG are shared across handler
        # threads), act outside it (actions sleep and raise).
        to_run: List[Tuple[_Rule, Injection]] = []
        with self._lock:
            for rule in self.rules:
                if rule.point != point:
                    continue
                if rule.when is not None and not rule.when(context):
                    continue
                rule.matches += 1
                if rule.matches <= rule.after:
                    continue
                if rule.times is not None and rule.fired >= rule.times:
                    continue
                rule.fired += 1
                injection = Injection(point, rule.fired, context)
                self.log.append(injection)
                to_run.append((rule, injection))
        for rule, injection in to_run:
            rule.action(injection)


# -- canned actions ------------------------------------------------------------

def reset_connection(injection: Injection) -> None:
    """The peer vanished: surface ``ECONNRESET`` at the call site."""
    raise ConnectionResetError(errno.ECONNRESET, "injected connection reset")


def torn_frame(fraction: float = 0.5) -> Callable[[Injection], None]:
    """Send a prefix of the frame, then die (``protocol.send`` only).

    The receiving peer observes a mid-frame EOF — the exact signature
    :func:`repro.service.protocol.recv_message` must classify as a
    :class:`~repro.service.protocol.ProtocolError`, never a clean close.
    """

    def action(injection: Injection) -> None:
        sock = injection.context["sock"]
        frame = injection.context["frame"]
        cut = max(1, min(len(frame) - 1, int(len(frame) * fraction)))
        sock.sendall(frame[:cut])
        raise ConnectionResetError(errno.ECONNRESET, "injected crash after torn frame")

    return action


def delay(seconds: float) -> Callable[[Injection], None]:
    """Stall the operation (drive client timeouts without a slow server)."""

    def action(injection: Injection) -> None:
        time.sleep(seconds)

    return action


def crash_daemon(injection: Injection) -> None:
    """SIGKILL-in-process for ``server.tune``: abruptly stop the service
    (no flush, no drain, connections closed) and abort the leader's search."""
    service = injection.context["service"]
    service.kill()
    raise InjectedFault("injected daemon crash mid-tune")


def partial_append(fraction: float = 0.5) -> Callable[[Injection], None]:
    """Write a prefix of the record line, fsync it, then die
    (``store.append`` only) — manufactures the torn tail the store's
    readers and ``fsck`` must tolerate."""

    def action(injection: Injection) -> None:
        handle = injection.context["handle"]
        line = injection.context["line"]
        body = line.rstrip("\n")
        cut = max(1, min(len(body) - 1, int(len(body) * fraction)))
        # Preserve any healing newline prefix the writer put in front.
        prefix = line[: len(line) - len(line.lstrip("\n"))]
        handle.write(prefix + body[:cut])
        handle.flush()
        os.fsync(handle.fileno())
        raise InjectedFault("injected crash mid-append")

    return action


def disk_full(injection: Injection) -> None:
    """``ENOSPC`` at the call site (``store.compact``)."""
    raise OSError(errno.ENOSPC, "injected: no space left on device")


def contend_lock(hold_s: float = 0.05) -> Callable[[Injection], None]:
    """Grab the shard lock first and hold it for ``hold_s`` from a
    background thread (``store.lock``), so the production acquire observes
    a contended/stale holder and must wait it out on its backoff schedule.
    Requires ``fcntl`` (POSIX) — tests should skip where it is absent."""

    def action(injection: Injection) -> None:
        import fcntl

        path = injection.context["path"]
        fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
        fcntl.flock(fd, fcntl.LOCK_EX)

        def release() -> None:
            time.sleep(hold_s)
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

        threading.Thread(target=release, name="fault-lock-holder", daemon=True).start()

    return action


def segfault(injection: Injection) -> None:
    """Kill the calling process with a real SIGSEGV — no Python unwinding,
    no cleanup, exactly what a miscompiled kernel does.  Arm this only at
    points that run inside a disposable process (``backend.qualify`` in the
    sandbox child, ``worker.task`` in a tuning worker): fired in the host it
    kills the host, which is the failure mode the sandbox exists to absorb."""
    import signal

    os.kill(os.getpid(), signal.SIGSEGV)


def hang(seconds: float = 3600.0) -> Callable[[Injection], None]:
    """Stop making progress (an infinite loop in a kernel, a wedged search).

    Distinct from :func:`delay` in intent: the duration is chosen to outlast
    any watchdog under test, so the *watchdog* ends the wait (wall-clock
    timeout in the sandbox, heartbeat/task timeout in the supervisor), never
    this sleep."""

    def action(injection: Injection) -> None:
        time.sleep(seconds)

    return action


def oom(limit_mb: int = 512) -> Callable[[Injection], None]:
    """Allocate until the address-space limit bites, then raise MemoryError.

    Under a sandbox ``RLIMIT_AS`` the allocations fail much earlier than
    ``limit_mb``; the cap just keeps the action bounded when no rlimit is in
    force (a test running in the host).  Either way the call site observes a
    process drowning in allocations."""

    def action(injection: Injection) -> None:
        hoard: List[bytearray] = []
        chunk = 8 << 20
        for _ in range(max(1, (limit_mb << 20) // chunk)):
            hoard.append(bytearray(chunk))
        raise MemoryError(f"injected allocation storm reached {limit_mb} MiB cap")

    return action
