"""Test-support machinery that ships with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection registry
the service/store stack is instrumented with; it lives in ``src`` (not
``tests``) because the injection *points* are production code — the hooks
compile to a single list-truthiness check when no plan is armed.
"""

from . import faults

__all__ = ["faults"]
