"""Machine descriptions of the three evaluation platforms (Section V-A).

These are analytical stand-ins for the physical machines the paper uses:

* **Cascade Lake** — AWS c5.12xlarge, 24-core Intel Xeon Platinum 8275CL
  @ 3.0 GHz, AVX-512 with VNNI.
* **Graviton2** — AWS m6g.8xlarge, 32-core ARM Neoverse-based CPU @ 2.3 GHz
  with the NEON DOT extension (the paper calls it a Cortex-A72-class core).
* **V100** — AWS p3.2xlarge, Nvidia Tesla V100-SXM2 with 80 SMs and Tensor
  Cores.

Peak numbers are taken from public specifications; the cost models in
``repro.hwsim.cpu`` / ``repro.hwsim.gpu`` apply efficiency factors derived
from the schedule structure (parallelism, unrolling, data reuse, residue
guards), which is where the paper's performance effects come from.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CpuSpec", "GpuSpec", "CASCADE_LAKE", "GRAVITON2", "V100", "machine_by_name"]


@dataclass(frozen=True)
class CpuSpec:
    """An analytical CPU description."""

    name: str
    cores: int
    frequency_ghz: float
    # Vector/tensor execution resources (per core).
    vector_bytes: int  # SIMD register width in bytes (64 = AVX-512, 16 = NEON)
    fma_ports: int  # number of vector FMA/dot-product ports
    # Memory hierarchy.
    l1_kb: int
    l2_kb: int
    llc_mb: float
    dram_gbps: float
    l2_bytes_per_cycle: float  # per-core sustained L2 bandwidth
    # Software overheads.
    thread_spawn_us: float = 3.0  # cost of dispatching a parallel region
    loop_overhead_cycles: float = 2.0  # per iteration of a non-unrolled loop
    branch_penalty_cycles: float = 9.0  # mispredicted/guard branch cost
    icache_instruction_budget: int = 1500  # unrolled body size before I$ misses
    load_ports: int = 2  # vector load issue ports (bounds MACs needing 2 loads)
    vector_registers: int = 32  # architectural vector registers (zmm / v regs)

    @property
    def cycle_time_s(self) -> float:
        return 1.0e-9 / self.frequency_ghz

    def peak_int8_tops(self, macs_per_instr: int, throughput: float) -> float:
        """Peak tensorized MAC throughput of the whole chip, in tera-MACs/s."""
        per_core = macs_per_instr * throughput * self.frequency_ghz * 1e9
        return per_core * self.cores / 1e12


@dataclass(frozen=True)
class GpuSpec:
    """An analytical GPU description."""

    name: str
    sms: int
    frequency_ghz: float
    tensor_cores_per_sm: int
    # Peak throughputs (whole chip).
    tensor_fp16_tflops: float  # with Tensor Cores (FMA counted as 2 flops)
    fp32_tflops: float
    fp16_simd_tflops: float  # fp16 math *without* Tensor Cores
    # Memory.
    dram_gbps: float
    l2_mb: float
    shared_kb_per_sm: int
    registers_per_sm: int
    max_threads_per_sm: int
    kernel_launch_us: float = 2.0
    sync_overhead_us: float = 1.0

    @property
    def cycle_time_s(self) -> float:
        return 1.0e-9 / self.frequency_ghz


CASCADE_LAKE = CpuSpec(
    name="Intel Xeon Platinum 8275CL (Cascade Lake, c5.12xlarge)",
    cores=24,
    frequency_ghz=3.0,
    vector_bytes=64,
    fma_ports=2,
    l1_kb=32,
    l2_kb=1024,
    llc_mb=35.75,
    dram_gbps=140.0,
    l2_bytes_per_cycle=64.0,
)

GRAVITON2 = CpuSpec(
    name="AWS Graviton2 (m6g.8xlarge)",
    cores=32,
    frequency_ghz=2.3,
    vector_bytes=16,
    fma_ports=2,
    l1_kb=64,
    l2_kb=1024,
    llc_mb=32.0,
    dram_gbps=190.0,
    l2_bytes_per_cycle=32.0,
)

V100 = GpuSpec(
    name="Nvidia Tesla V100-SXM2 (p3.2xlarge)",
    sms=80,
    frequency_ghz=1.53,
    tensor_cores_per_sm=8,
    tensor_fp16_tflops=112.0,
    fp32_tflops=15.7,
    fp16_simd_tflops=31.4,
    dram_gbps=900.0,
    l2_mb=6.0,
    shared_kb_per_sm=96,
    registers_per_sm=65536,
    max_threads_per_sm=2048,
)

_MACHINES = {
    "cascade-lake": CASCADE_LAKE,
    "graviton2": GRAVITON2,
    "v100": V100,
}


def machine_by_name(name: str):
    """Look up a machine description by its short name, or — so identifiers
    recovered from persisted tuning keys resolve too — its descriptive
    ``spec.name``."""
    key = name.lower()
    if key in _MACHINES:
        return _MACHINES[key]
    for spec in _MACHINES.values():
        if spec.name == name:
            return spec
    raise KeyError(f"unknown machine {name!r}; known: {sorted(_MACHINES)}")
