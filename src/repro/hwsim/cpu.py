"""Analytical CPU performance model (the stand-in for Cascade Lake / Graviton2).

The model mirrors the CPU scheduling strategy of Section III-C / Figure 7: a
fused-and-parallelised band of outer data-parallel loops, a serial band, the
reduction loops, and an unrolled band of data-parallel loops whose independent
accumulator chains hide the tensorized instruction's result latency (the RAW
hazard the paper discusses).  Its inputs are the layer shape, the tuning
configuration (the same :class:`CpuTuningConfig` the Rewriter uses), and the
instruction's performance characteristics; its output is a latency estimate
with a breakdown into compute, memory and overhead components.

Mechanisms modelled (all taken from effects the paper names):

* instruction-level parallelism limited by ``unroll / latency`` accumulator
  chains versus the issue-port ceiling;
* ``likely`` residue guards for output widths that cannot be tiled perfectly
  (layers 1 and 4 of Table I);
* multi-core scaling with load balance and a parallel-region launch overhead;
* loop-control overhead amortised over the unrolled body;
* instruction-cache pressure for very large unrolled bodies;
* a bandwidth bound from streaming the activations, weights and outputs;
* extra instruction overhead for executing mixed precision *without* a
  tensorized instruction (the casting overhead of Figure 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..isa.intrinsic import TensorIntrinsic
from ..rewriter.cpu_tuner import CpuTuningConfig
from ..workloads.conv2d import Conv2DParams
from ..workloads.conv3d import Conv3DParams
from ..workloads.dense import DenseParams
from .cost import CostBreakdown
from .machine import CpuSpec

__all__ = ["CpuKernelModel", "UnrollPlan", "plan_unroll", "plan_parallel"]


@dataclass
class UnrollPlan:
    """How the innermost data-parallel band is unrolled."""

    factor: int
    has_residue_guard: bool
    wasted_fraction: float  # extra iterations introduced by an imperfect tile


@dataclass
class ParallelPlan:
    """How the outer data-parallel band is fused and distributed to threads."""

    iterations: int
    threads: int
    balance: float
    has_residue_guard: bool


def _largest_divisor_at_most(n: int, bound: int) -> int:
    bound = max(1, min(n, bound))
    for d in range(bound, 0, -1):
        if n % d == 0:
            return d
    return 1


def plan_unroll(dp_extents: Sequence[int], unroll_limit: int) -> UnrollPlan:
    """Mirror of the Rewriter's unroll-band selection.

    ``dp_extents`` are the data-parallel loop extents from outermost to
    innermost (excluding the tensorized lanes).  The band is grown from the
    innermost loop; a loop that does not fit the remaining budget is tiled —
    perfectly when a good divisor exists, imperfectly (with a residue guard)
    otherwise.
    """
    if unroll_limit <= 1:
        return UnrollPlan(factor=1, has_residue_guard=False, wasted_fraction=0.0)
    factor = 1
    residue = False
    waste = 0.0
    for extent in reversed(list(dp_extents)):
        if factor * extent <= unroll_limit:
            factor *= extent
            continue
        budget = unroll_limit // factor
        if budget <= 1:
            break
        divisor = _largest_divisor_at_most(extent, budget)
        if divisor <= max(1, budget // 2) and extent > budget:
            # Imperfect split: unroll by the full budget, guard the residue.
            tiles = math.ceil(extent / budget)
            waste = (tiles * budget) / extent - 1.0
            factor *= budget
            residue = True
        elif divisor > 1:
            factor *= divisor
        break
    return UnrollPlan(factor=factor, has_residue_guard=residue, wasted_fraction=waste)


def plan_parallel(
    dp_extents: Sequence[int],
    parallel_extent: int,
    cores: int,
    enable: bool = True,
) -> ParallelPlan:
    """Mirror of the Rewriter's fuse-and-parallelise band selection."""
    if not enable:
        return ParallelPlan(iterations=1, threads=1, balance=1.0, has_residue_guard=False)
    iterations = 1
    residue = False
    for extent in dp_extents:
        if iterations == 1 or iterations * extent <= parallel_extent:
            iterations *= extent
            continue
        # Breaking point inside this loop: tile it to approach the target.
        budget = max(1, parallel_extent // iterations)
        divisor = _largest_divisor_at_most(extent, budget)
        if divisor > 1:
            iterations *= divisor
        elif budget > 1 and extent > budget:
            iterations *= budget
            residue = True
        break
    threads = max(1, min(cores, iterations))
    chunks = math.ceil(iterations / threads)
    balance = iterations / (chunks * threads)
    return ParallelPlan(
        iterations=iterations, threads=threads, balance=balance, has_residue_guard=residue
    )


class CpuKernelModel:
    """Latency model of tensorized (and plain-SIMD) kernels on a CPU."""

    def __init__(
        self,
        machine: CpuSpec,
        intrin: TensorIntrinsic,
        instruction_overhead_factor: float = 1.0,
        per_call_overhead_us: float = 1.0,
    ) -> None:
        """``instruction_overhead_factor`` > 1 models code that needs extra
        instructions around each MAC vector op (e.g. widening int8 to int32
        when no dot-product instruction exists, or fp16→fp32 casts on CPUs
        without native fp16 arithmetic)."""
        self.machine = machine
        self.intrin = intrin
        self.instruction_overhead_factor = instruction_overhead_factor
        self.per_call_overhead_us = per_call_overhead_us

    # -- generic engine ------------------------------------------------------
    def loop_nest_latency(
        self,
        dp_extents: Sequence[int],
        reduce_iterations: int,
        config: CpuTuningConfig,
        bytes_read: float,
        bytes_written: float,
        lanes_used_fraction: float = 1.0,
    ) -> CostBreakdown:
        """Latency of a tensorized loop nest.

        ``dp_extents`` are the non-tensorized data-parallel loop extents
        (outermost first); ``reduce_iterations`` the product of the
        non-tensorized reduction extents.  One tensorized instruction executes
        per point of that iteration space.
        """
        machine = self.machine
        perf = self.intrin.perf

        instructions = float(reduce_iterations)
        for extent in dp_extents:
            instructions *= extent
        instructions *= self.instruction_overhead_factor

        unroll = plan_unroll(dp_extents, config.unroll_limit if config.enable_unroll else 1)
        parallel = plan_parallel(
            dp_extents,
            config.parallel_extent,
            machine.cores,
            enable=config.enable_parallel,
        )

        # Instruction-level parallelism: independent accumulator chains from
        # the unrolled data-parallel band hide the instruction latency.  The
        # sustainable rate is also bounded by the load ports: each tensorized
        # MAC needs (roughly) two fresh vector operands from memory.
        issue_ceiling = perf.issue_ports * perf.throughput_per_cycle
        load_ceiling = machine.load_ports / 2.0
        dependence_ipc = max(unroll.factor, 1) / perf.latency_cycles
        ipc = min(issue_ceiling, load_ceiling, dependence_ipc)

        cycles_per_instruction = 1.0 / ipc
        # Register pressure: every unrolled accumulator needs its own vector
        # register plus an operand register; once roughly three quarters of
        # the architectural register file is claimed the compiler starts
        # spilling between instructions.
        registers_needed = 2 * unroll.factor + 4
        register_budget = machine.vector_registers * 0.75
        if registers_needed > register_budget:
            cycles_per_instruction *= 1.0 + 1.0 * (registers_needed / register_budget - 1.0)
        # Loop-control overhead of the innermost non-unrolled loop, amortised
        # over the unrolled body.
        cycles_per_instruction += machine.loop_overhead_cycles / max(unroll.factor, 1)
        if unroll.has_residue_guard:
            # The ``likely`` guard costs a predictable branch per unrolled body
            # and wastes the guarded-off fraction of the last tile.
            cycles_per_instruction += 0.5 * machine.branch_penalty_cycles / max(unroll.factor, 1)
            cycles_per_instruction *= 1.0 + 0.35 * unroll.wasted_fraction
        if parallel.has_residue_guard:
            cycles_per_instruction *= 1.10
        # Instruction-cache pressure for extreme unrolling (loads + MACs).
        body_instructions = unroll.factor * 3
        if body_instructions > machine.icache_instruction_budget:
            cycles_per_instruction *= 1.0 + 0.25 * (
                body_instructions / machine.icache_instruction_budget - 1.0
            )

        effective_threads = max(parallel.threads * parallel.balance, 1.0)
        compute_seconds = (
            instructions * cycles_per_instruction * machine.cycle_time_s / effective_threads
        )
        # Padding of the lane dimension wastes a fraction of each instruction.
        if lanes_used_fraction < 1.0:
            compute_seconds /= max(lanes_used_fraction, 1e-3)

        total_bytes = float(bytes_read + bytes_written)
        footprint_mb = total_bytes / 1e6
        if footprint_mb <= machine.llc_mb:
            bandwidth_gbps = min(
                machine.dram_gbps * 3.0,
                machine.l2_bytes_per_cycle
                * machine.frequency_ghz
                * max(parallel.threads, 1),
            )
        else:
            bandwidth_gbps = machine.dram_gbps
        memory_seconds = total_bytes / (bandwidth_gbps * 1e9)

        overhead_seconds = self.per_call_overhead_us * 1e-6
        if parallel.threads > 1:
            overhead_seconds += machine.thread_spawn_us * 1e-6

        seconds = max(compute_seconds, memory_seconds) + overhead_seconds
        return CostBreakdown(
            seconds=seconds,
            compute_seconds=compute_seconds,
            memory_seconds=memory_seconds,
            overhead_seconds=overhead_seconds,
            detail={
                "instructions": instructions,
                "ipc": ipc,
                "unroll_factor": float(unroll.factor),
                "residue_guard": float(unroll.has_residue_guard),
                "threads": float(parallel.threads),
                "parallel_iterations": float(parallel.iterations),
                "cycles_per_instruction": cycles_per_instruction,
            },
        )

    # -- operator-specific wrappers -------------------------------------------
    def conv2d_latency(
        self, params: Conv2DParams, config: CpuTuningConfig
    ) -> CostBreakdown:
        """Latency of a blocked (NCHW[x]c) 2-D convolution."""
        lanes = self.intrin.output_lanes
        red = self.intrin.reduction_width
        k_outer = math.ceil(params.out_channels / lanes)
        c_outer = math.ceil(params.in_channels / red)
        dp_extents = [k_outer, params.out_height, params.out_width]
        reduce_iterations = c_outer * params.kernel * params.kernel
        lanes_used = params.out_channels / (k_outer * lanes)

        in_bytes = (
            (params.in_height + 2 * params.padding)
            * (params.in_width + 2 * params.padding)
            * c_outer
            * red
        )
        weight_bytes = k_outer * lanes * c_outer * red * params.kernel * params.kernel
        out_bytes = params.out_height * params.out_width * k_outer * lanes * 4
        return self.loop_nest_latency(
            dp_extents,
            reduce_iterations,
            config,
            bytes_read=in_bytes + weight_bytes,
            bytes_written=out_bytes,
            lanes_used_fraction=lanes_used,
        )

    def conv3d_latency(
        self, params: Conv3DParams, config: CpuTuningConfig
    ) -> CostBreakdown:
        """Latency of a blocked 3-D convolution (the Section VI-C study)."""
        lanes = self.intrin.output_lanes
        red = self.intrin.reduction_width
        k_outer = math.ceil(params.out_channels / lanes)
        c_outer = math.ceil(params.in_channels / red)
        dp_extents = [k_outer, params.out_depth, params.out_height, params.out_width]
        reduce_iterations = c_outer * params.kernel**3
        lanes_used = params.out_channels / (k_outer * lanes)

        in_bytes = params.in_depth * params.in_height * params.in_width * c_outer * red
        weight_bytes = k_outer * lanes * c_outer * red * params.kernel**3
        out_bytes = params.out_depth * params.out_height * params.out_width * k_outer * lanes * 4
        return self.loop_nest_latency(
            dp_extents,
            reduce_iterations,
            config,
            bytes_read=in_bytes + weight_bytes,
            bytes_written=out_bytes,
            lanes_used_fraction=lanes_used,
        )

    def dense_latency(self, params: DenseParams, config: CpuTuningConfig) -> CostBreakdown:
        """Latency of a quantized dense (fully-connected) layer."""
        lanes = self.intrin.output_lanes
        red = self.intrin.reduction_width
        n_outer = math.ceil(params.out_features / lanes)
        k_outer = math.ceil(params.in_features / red)
        dp_extents = [params.batch, n_outer]
        reduce_iterations = k_outer
        lanes_used = params.out_features / (n_outer * lanes)

        in_bytes = params.batch * k_outer * red
        weight_bytes = n_outer * lanes * k_outer * red
        out_bytes = params.batch * n_outer * lanes * 4
        return self.loop_nest_latency(
            dp_extents,
            reduce_iterations,
            config,
            bytes_read=in_bytes + weight_bytes,
            bytes_written=out_bytes,
            lanes_used_fraction=lanes_used,
        )
