"""``repro.hwsim`` — analytical machine models of the evaluation platforms.

These stand in for the physical Cascade Lake, Graviton2 and V100 machines of
Section V-A: the interpreter (``repro.tir``) provides functional correctness,
and these models provide latency estimates driven by the same schedule
structure (parallelism, unrolling, reuse, residue guards) the paper's tuner
manipulates.
"""

from .cost import CostBreakdown, RATIO_DETAIL_KEYS, geometric_mean
from .cpu import CpuKernelModel, ParallelPlan, UnrollPlan, plan_parallel, plan_unroll
from .gpu import GpuKernelModel
from .machine import CASCADE_LAKE, GRAVITON2, V100, CpuSpec, GpuSpec, machine_by_name

__all__ = [
    "CostBreakdown",
    "RATIO_DETAIL_KEYS",
    "geometric_mean",
    "CpuKernelModel",
    "UnrollPlan",
    "ParallelPlan",
    "plan_unroll",
    "plan_parallel",
    "GpuKernelModel",
    "CpuSpec",
    "GpuSpec",
    "CASCADE_LAKE",
    "GRAVITON2",
    "V100",
    "machine_by_name",
]
