"""Common cost-model datatypes shared by the CPU and GPU machine models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["CostBreakdown", "geometric_mean"]


@dataclass
class CostBreakdown:
    """The estimated latency of one operator on one machine.

    ``seconds`` is the headline number; the other fields expose the model's
    intermediate quantities so ablations and tests can reason about *why* a
    schedule is fast or slow.
    """

    seconds: float
    compute_seconds: float = 0.0
    memory_seconds: float = 0.0
    overhead_seconds: float = 0.0
    detail: Dict[str, float] = field(default_factory=dict)

    @property
    def microseconds(self) -> float:
        return self.seconds * 1e6

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3

    def scaled(self, factor: float) -> "CostBreakdown":
        return CostBreakdown(
            seconds=self.seconds * factor,
            compute_seconds=self.compute_seconds * factor,
            memory_seconds=self.memory_seconds * factor,
            overhead_seconds=self.overhead_seconds * factor,
            detail=dict(self.detail),
        )

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        # detail keys merge by summation, which is meaningful for counter-like
        # entries (macs, instructions, traffic bytes); ratio-like entries
        # (ipc, efficiency) are only interpretable on leaf-level breakdowns.
        detail = dict(self.detail)
        for key, value in other.detail.items():
            detail[key] = detail.get(key, 0.0) + value
        return CostBreakdown(
            seconds=self.seconds + other.seconds,
            compute_seconds=self.compute_seconds + other.compute_seconds,
            memory_seconds=self.memory_seconds + other.memory_seconds,
            overhead_seconds=self.overhead_seconds + other.overhead_seconds,
            detail=detail,
        )


def geometric_mean(values) -> float:
    """Geometric mean, used for the "geomean" bars of the end-to-end figures."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= float(v)
    return product ** (1.0 / len(values))
