"""Common cost-model datatypes shared by the CPU and GPU machine models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["CostBreakdown", "RATIO_DETAIL_KEYS", "geometric_mean"]

# ``detail`` entries that are ratios/rates rather than counters: they do not
# scale with the amount of work and are preserved as-is by ``scaled``.
# Counter-like entries (macs, instructions, traffic bytes, launches) scale
# with the factor, mirroring how ``__add__`` merges them by summation.
RATIO_DETAIL_KEYS = frozenset(
    {"ipc", "efficiency", "utilization", "occupancy", "hit_rate"}
)


@dataclass
class CostBreakdown:
    """The estimated latency of one operator on one machine.

    ``seconds`` is the headline number; the other fields expose the model's
    intermediate quantities so ablations and tests can reason about *why* a
    schedule is fast or slow.
    """

    seconds: float
    compute_seconds: float = 0.0
    memory_seconds: float = 0.0
    overhead_seconds: float = 0.0
    detail: Dict[str, float] = field(default_factory=dict)

    @property
    def microseconds(self) -> float:
        return self.seconds * 1e6

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3

    def scaled(self, factor: float) -> "CostBreakdown":
        """This cost repeated ``factor`` times (e.g. grouped convolutions).

        Counter-like ``detail`` entries scale with the factor so that
        ``cost.scaled(n)`` and ``cost + ... + cost`` (n times) agree; ratio
        entries (:data:`RATIO_DETAIL_KEYS`) are work-independent and are
        preserved unchanged.
        """
        return CostBreakdown(
            seconds=self.seconds * factor,
            compute_seconds=self.compute_seconds * factor,
            memory_seconds=self.memory_seconds * factor,
            overhead_seconds=self.overhead_seconds * factor,
            detail={
                key: value if key in RATIO_DETAIL_KEYS else value * factor
                for key, value in self.detail.items()
            },
        )

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        # Counter-like detail entries (macs, instructions, traffic bytes)
        # merge by summation, mirroring ``scaled``.  Ratio entries
        # (:data:`RATIO_DETAIL_KEYS`) are only interpretable on leaf-level
        # breakdowns, so the left operand's value is kept rather than
        # producing a meaningless sum.
        detail = dict(self.detail)
        for key, value in other.detail.items():
            if key in RATIO_DETAIL_KEYS:
                detail.setdefault(key, value)
            else:
                detail[key] = detail.get(key, 0.0) + value
        return CostBreakdown(
            seconds=self.seconds + other.seconds,
            compute_seconds=self.compute_seconds + other.compute_seconds,
            memory_seconds=self.memory_seconds + other.memory_seconds,
            overhead_seconds=self.overhead_seconds + other.overhead_seconds,
            detail=detail,
        )


def geometric_mean(values) -> float:
    """Geometric mean, used for the "geomean" bars of the end-to-end figures."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= float(v)
    return product ** (1.0 / len(values))
