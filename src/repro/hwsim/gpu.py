"""Analytical GPU performance model (the stand-in for the V100).

The model follows the GPU strategy of Section III-C / Figure 6: convolutions
are executed as implicit GEMMs whose 16×16×16 tiles map onto Tensor Core WMMA
operations; each thread block accumulates a ``p × p`` window of tiles so that
buffered sub-matrices are reused ``p`` times and the accumulation dependence
is hidden by ``p²`` independent accumulators.  The tuner's three optimisations
(generic parallelism, dimension fusion, split-K reduction parallelisation)
each map onto an explicit term of the model.

Mechanisms modelled:

* Tensor Core throughput ceiling per SM and the accumulation-dependence limit
  (``p²`` chains vs. WMMA latency);
* block-level occupancy / wave quantisation across the 80 SMs;
* DRAM traffic as a function of the reuse window ``p`` (Figure 6's point) and
  the L2 cache;
* padding waste for small spatial dimensions, removed by FuseDim at the cost
  of a data-rearrangement overhead;
* extra parallelism from SplitK, at the cost of synchronisation, partial-sum
  traffic and register pressure;
* register-file capacity limiting ``p`` (the paper observes p > 2 overflows);
* reduced locality for strided convolutions (the reason layers 1 and 15 of
  Table I stay below cuDNN).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..isa.intrinsic import TensorIntrinsic
from ..rewriter.gpu_tuner import GpuTuningConfig
from ..workloads.conv2d import Conv2DParams
from .cost import CostBreakdown
from .machine import GpuSpec

__all__ = ["GpuKernelModel"]

_WMMA_TILE = 16
_WMMA_FLOPS = 2 * _WMMA_TILE * _WMMA_TILE * _WMMA_TILE  # FMA = 2 flops
_WMMA_LATENCY_CYCLES = 32.0
_REGISTERS_PER_ACCUM_TILE = 256  # 16x16 fp32 accumulator per warp
# Per reduction step each block stages its operand tiles through shared memory
# and synchronises: this fixed cost is what the SplitK optimisation amortises
# across thread blocks.
_KSTEP_OVERHEAD_CYCLES = 96.0
# Keep at least this many k-tiles per split segment (splitting finer than the
# staging granularity only adds synchronisation).
_MIN_KTILES_PER_SEGMENT = 4


class GpuKernelModel:
    """Latency model of Tensor Core (and plain fp16/fp32) kernels on a GPU."""

    def __init__(
        self,
        machine: GpuSpec,
        intrin: Optional[TensorIntrinsic] = None,
        use_tensor_core: bool = True,
    ) -> None:
        self.machine = machine
        self.intrin = intrin
        self.use_tensor_core = use_tensor_core

    # -- core GEMM engine ------------------------------------------------------
    def gemm_latency(
        self,
        m: int,
        n: int,
        k: int,
        config: GpuTuningConfig,
        stride: int = 1,
        spatial: Optional[Tuple[int, int]] = None,
        element_bytes: int = 2,
    ) -> CostBreakdown:
        """Latency of ``C[m, n] += A[m, k] · B[k, n]`` on Tensor Cores.

        ``spatial`` carries the (OH, OW) pair of the originating convolution so
        the FuseDim padding effect can be modelled; ``stride`` carries its
        spatial stride (strided implicit-GEMM gathers lose locality).
        """
        machine = self.machine
        p = max(1, config.outer_product_p)

        # ---- padding of the M dimension (FuseDim) ----------------------------
        if spatial is not None:
            oh, ow = spatial
            if config.fuse_spatial:
                m_eff = _round_up(oh * ow, _WMMA_TILE)
                rearrange_overhead = 0.05
            else:
                # Without fusion every output row is padded separately.
                m_eff = oh * _round_up(ow, _WMMA_TILE)
                rearrange_overhead = 0.0
        else:
            m_eff = _round_up(m, _WMMA_TILE)
            rearrange_overhead = 0.0
        n_eff = _round_up(n, _WMMA_TILE)
        k_eff = _round_up(k, _WMMA_TILE)

        # ---- tile and block decomposition -------------------------------------
        block_tile = _WMMA_TILE * p
        blocks_m = math.ceil(m_eff / block_tile)
        blocks_n = math.ceil(n_eff / block_tile)
        k_tiles = max(1, k_eff // _WMMA_TILE)
        split = max(1, config.split_k)
        split = min(split, max(1, k_tiles // _MIN_KTILES_PER_SEGMENT))
        blocks = blocks_m * blocks_n * split

        ksteps_per_block = math.ceil(k_tiles / split)
        wmma_per_block = p * p * ksteps_per_block
        total_wmma = blocks * wmma_per_block

        # ---- compute rate ------------------------------------------------------
        per_sm_flops = machine.tensor_fp16_tflops * 1e12 / machine.sms
        peak_wmma_per_cycle = per_sm_flops / _WMMA_FLOPS / (machine.frequency_ghz * 1e9)
        dependence_rate = (p * p) / _WMMA_LATENCY_CYCLES
        rate = min(peak_wmma_per_cycle, dependence_rate)

        # Register pressure: the p×p fp32 accumulators plus the double-buffered
        # operand tiles; beyond the register file the compiler spills.
        regs_needed = (p * p) * _REGISTERS_PER_ACCUM_TILE * 8  # 8 warps per block
        regs_needed += 2 * p * _REGISTERS_PER_ACCUM_TILE * 4
        if regs_needed > machine.registers_per_sm:
            # Spilling accumulators to local memory is catastrophic; the
            # penalty grows quadratically with the overflow.
            rate *= (machine.registers_per_sm / regs_needed) ** 2

        if stride > 1:
            # Strided gathers break coalescing of the implicit-GEMM operand and
            # thrash the staging buffers.
            rate *= 0.45

        # ---- occupancy ---------------------------------------------------------
        waves = math.ceil(blocks / machine.sms)
        balance = blocks / (waves * machine.sms)

        # Each block pays a fixed staging + synchronisation cost per reduction
        # step; the serial length of one block bounds latency even when the
        # grid underfills the machine (what SplitK fixes for deep channels).
        cycles_per_block = wmma_per_block / rate + ksteps_per_block * _KSTEP_OVERHEAD_CYCLES
        throughput_cycles = (
            total_wmma / rate + blocks * ksteps_per_block * _KSTEP_OVERHEAD_CYCLES
        ) / (machine.sms * balance)
        cycles = max(cycles_per_block, throughput_cycles)
        compute_seconds = cycles * machine.cycle_time_s
        compute_seconds *= 1.0 + rearrange_overhead

        # ---- memory traffic ----------------------------------------------------
        a_bytes_per_block = block_tile * (k_eff / split) * element_bytes
        b_bytes_per_block = (k_eff / split) * block_tile * element_bytes
        c_bytes_per_block = block_tile * block_tile * 4
        traffic = blocks * (a_bytes_per_block + b_bytes_per_block) + blocks_m * blocks_n * c_bytes_per_block
        unique = (m_eff * k_eff + k_eff * n_eff) * element_bytes + m_eff * n_eff * 4
        if unique < machine.l2_mb * 1e6:
            traffic = unique + 0.3 * (traffic - unique)
        if stride > 1:
            traffic *= 1.0 + 1.0 * (stride - 1)
        memory_seconds = traffic / (machine.dram_gbps * 1e9)
        if split > 1:
            # Grid-level split-K: partial sums are exchanged through the L2
            # cache and reduced by a lightweight epilogue.
            partial_bytes = blocks * block_tile * block_tile * 4
            compute_seconds += partial_bytes / (machine.dram_gbps * 2.5 * 1e9)

        # ---- overheads ---------------------------------------------------------
        overhead_seconds = machine.kernel_launch_us * 1e-6
        if split > 1:
            overhead_seconds += machine.sync_overhead_us * 1e-6
            overhead_seconds += waves * 0.2e-6

        seconds = max(compute_seconds, memory_seconds) + overhead_seconds
        return CostBreakdown(
            seconds=seconds,
            compute_seconds=compute_seconds,
            memory_seconds=memory_seconds,
            overhead_seconds=overhead_seconds,
            detail={
                "blocks": float(blocks),
                "waves": float(waves),
                "balance": balance,
                "total_wmma": float(total_wmma),
                "rate_wmma_per_cycle": rate,
                "traffic_bytes": traffic,
                "m_eff": float(m_eff),
            },
        )

    # -- non-Tensor-Core vector paths (Figure 1 and cuDNN fp32) ----------------
    def simd_gemm_latency(
        self,
        m: int,
        n: int,
        k: int,
        dtype: str = "float32",
        cast_overhead: float = 0.0,
        efficiency: float = 0.55,
    ) -> CostBreakdown:
        """GEMM on the ordinary CUDA cores (fp32, or fp16 without Tensor Cores).

        ``cast_overhead`` is the fractional extra work spent converting between
        fp16 storage and fp32 math when no mixed-precision instruction exists —
        the effect responsible for the slowdowns in Figure 1.
        """
        machine = self.machine
        flops = 2.0 * m * n * k
        if dtype == "float32":
            peak = machine.fp32_tflops * 1e12
            element_bytes = 4
        else:
            peak = machine.fp16_simd_tflops * 1e12
            element_bytes = 2
        compute_seconds = flops * (1.0 + cast_overhead) / (peak * efficiency)
        traffic = (m * k + k * n) * element_bytes + m * n * 4
        memory_seconds = traffic / (machine.dram_gbps * 1e9)
        overhead = machine.kernel_launch_us * 1e-6
        return CostBreakdown(
            seconds=max(compute_seconds, memory_seconds) + overhead,
            compute_seconds=compute_seconds,
            memory_seconds=memory_seconds,
            overhead_seconds=overhead,
        )

    # -- convolution wrapper -----------------------------------------------------
    def conv2d_latency(self, params: Conv2DParams, config: GpuTuningConfig) -> CostBreakdown:
        """Implicit-GEMM convolution latency on Tensor Cores."""
        m = params.out_height * params.out_width
        n = params.out_channels
        k = params.in_channels * params.kernel * params.kernel
        return self.gemm_latency(
            m,
            n,
            k,
            config,
            stride=params.stride,
            spatial=(params.out_height, params.out_width),
        )


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple
