"""Lowering: ComputeOp + Schedule → tensor IR (a :class:`PrimFunc`).

The lowering emits the canonical loop nest dictated by the schedule's leaf
order, decomposes reductions into an init nest plus an update nest, inserts
``likely`` guards for imperfect splits, and carries loop annotations
(parallel / unroll / vectorize / thread bindings / tensorize pragmas) onto the
emitted :class:`~repro.tir.stmt.For` nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..dsl.axis import IterAxis
from ..dsl.compute import ComputeOp
from ..dsl.expr import (
    Add,
    Compare,
    Const,
    Expr,
    Max,
    Min,
    Reduce,
    TensorLoad,
    Var,
    free_vars,
    simplify,
    substitute,
)
from ..dsl.tensor import Tensor
from ..schedule.schedule import Annotation, LoopVar, Schedule, Stage, create_schedule
from .stmt import AttrStmt, For, ForKind, IfThenElse, SeqStmt, Stmt, Store, seq

__all__ = ["PrimFunc", "lower", "decompose_reduction"]


class PrimFunc:
    """A lowered tensor-IR function: parameters (buffers) plus a body."""

    def __init__(self, name: str, params: Sequence[Tensor], body: Stmt, op: ComputeOp) -> None:
        self.name = name
        self.params = list(params)
        self.body = body
        self.op = op

    @property
    def inputs(self) -> List[Tensor]:
        return self.params[:-1]

    @property
    def output(self) -> Tensor:
        return self.params[-1]

    def __repr__(self) -> str:
        from .printer import func_to_str

        return func_to_str(self)


_ANNOTATION_TO_KIND = {
    Annotation.SERIAL: ForKind.SERIAL,
    Annotation.PARALLEL: ForKind.PARALLEL,
    Annotation.UNROLL: ForKind.UNROLL,
    Annotation.VECTORIZE: ForKind.VECTORIZE,
    Annotation.TENSORIZE: ForKind.TENSORIZE,
    Annotation.BLOCK_X: ForKind.THREAD_BINDING,
    Annotation.BLOCK_Y: ForKind.THREAD_BINDING,
    Annotation.THREAD_X: ForKind.THREAD_BINDING,
    Annotation.THREAD_Y: ForKind.THREAD_BINDING,
}


def decompose_reduction(op: ComputeOp) -> Tuple[Optional[Expr], Expr]:
    """Split an operation body into ``(init_expr, update_expr)``.

    ``init_expr`` is the value stored before accumulation begins (``None`` for
    accumulate/update operations whose output already holds the running sum,
    such as the Tensor Core ``+=`` form).  ``update_expr`` is the value stored
    at every point of the full (data-parallel × reduction) iteration space and
    references the output tensor as its accumulator.

    Operations without any reduction return ``(None, body)`` unchanged.
    """
    body = op.body
    out = op.output
    acc = TensorLoad(out, [ax.var for ax in op.axes])

    reduce_node, rest = _find_reduce(body)
    if reduce_node is None:
        if op.accumulate:
            # Pure update without an explicit Reduce: out += body.
            return None, Add(acc, body)
        return None, body

    combiner = reduce_node.combiner
    source = reduce_node.source
    if combiner == "sum":
        update = Add(acc, source)
        identity: Expr = Const(0, out.dtype)
    elif combiner == "max":
        update = Max(acc, source)
        identity = Const(out.dtype.min_value, out.dtype)
    else:  # min
        update = Min(acc, source)
        identity = Const(out.dtype.max_value, out.dtype)

    if op.accumulate:
        init: Optional[Expr] = None
    elif rest is not None:
        init = rest
    else:
        init = identity
    return init, update


def _find_reduce(body: Expr) -> Tuple[Optional[Reduce], Optional[Expr]]:
    """Locate the top-level Reduce and the non-reduced remainder (if any).

    Supports the two shapes used throughout the paper: ``Reduce(...)`` and
    ``rest + Reduce(...)`` (the VNNI/DOT "c[i] + sum(...)" form).
    """
    if isinstance(body, Reduce):
        return body, None
    if isinstance(body, Add):
        if isinstance(body.b, Reduce) and not _contains_reduce(body.a):
            return body.b, body.a
        if isinstance(body.a, Reduce) and not _contains_reduce(body.b):
            return body.a, body.b
    if _contains_reduce(body):
        raise ValueError(
            "unsupported reduction structure: the Reduce node must be the body "
            "or one operand of a top-level addition"
        )
    return None, None


def _contains_reduce(expr: Expr) -> bool:
    from ..dsl.expr import post_order

    return any(isinstance(n, Reduce) for n in post_order(expr))


def lower(sched_or_op, name: Optional[str] = None) -> PrimFunc:
    """Lower a schedule (or an unscheduled operation) to tensor IR."""
    if isinstance(sched_or_op, Schedule):
        schedule = sched_or_op
        stage = schedule.stage
    else:
        op = getattr(sched_or_op, "op", sched_or_op)
        schedule = create_schedule(op)
        stage = schedule.stage
    op = stage.op
    func_name = name or op.name
    stage.verify()

    index_map = stage.index_expressions()
    guards = stage.guards()
    init_expr, update_expr = decompose_reduction(op)

    out_indices = [simplify(substitute(ax.var, index_map)) for ax in op.axes]
    update_value = simplify(substitute(update_expr, index_map))
    update_store: Stmt = Store(op.output, out_indices, update_value)
    update_store = _wrap_guards(update_store, guards, set())

    main_nest = _build_nest(stage, stage.leaf_vars, update_store)

    body: Stmt
    if init_expr is not None and op.has_reduction:
        dp_leaves = stage.data_parallel_leaves()
        dp_vars = {l.var for l in dp_leaves}
        init_value = simplify(substitute(init_expr, index_map))
        init_indices = [simplify(substitute(ax.var, index_map)) for ax in op.axes]
        init_store: Stmt = Store(op.output, init_indices, init_value)
        init_store = _wrap_guards(init_store, guards, dp_vars, restrict=True)
        init_nest = _build_nest(stage, dp_leaves, init_store, annotate=False)
        body = seq(init_nest, main_nest)
    else:
        body = main_nest

    params = list(op.input_tensors) + [op.output]
    return PrimFunc(func_name, params, body, op)


def _wrap_guards(
    stmt: Stmt,
    guards: List[Tuple[Expr, int]],
    allowed_vars: set,
    restrict: bool = False,
) -> Stmt:
    """Wrap ``stmt`` in ``likely`` guards produced by imperfect splits.

    When ``restrict`` is set, only guards whose free variables all belong to
    ``allowed_vars`` are emitted (used for the init nest, which only iterates
    the data-parallel leaves).
    """
    for expr, bound in reversed(guards):
        if restrict:
            vars_in_guard = set(free_vars(expr))
            if not vars_in_guard.issubset(allowed_vars):
                continue
        cond = Compare("<", expr, Const(bound, expr.dtype))
        stmt = IfThenElse(cond, stmt, likely=True)
    return stmt


def _build_nest(
    stage: Stage,
    loops: Sequence[LoopVar],
    innermost: Stmt,
    annotate: bool = True,
) -> Stmt:
    """Emit nested For statements for ``loops`` (outermost first)."""
    stmt = innermost
    for loop in reversed(list(loops)):
        kind = _ANNOTATION_TO_KIND[loop.annotation] if annotate else ForKind.SERIAL
        thread_tag = loop.annotation.value if loop.annotation.is_gpu_binding else None
        pragmas = dict(loop.pragmas) if annotate else {}
        stmt = For(loop.var, loop.extent, stmt, kind, thread_tag, pragmas)
        if annotate and "tensorize" in pragmas:
            stmt = AttrStmt("pragma_tensorize", pragmas["tensorize"], stmt)
    return stmt
