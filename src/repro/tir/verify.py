"""Structural verification of tensor-IR programs — thin alias.

The pass now lives in :mod:`repro.analysis.structure`, folded into the
static verification tier alongside the bounds/overlap/dtype passes (and
extended with vector-lane and intrinsic-region-read checks).  This module
keeps the historical ``repro.tir.verify`` entry point stable.
"""

from __future__ import annotations

from ..analysis.structure import VerificationError, verify_structure as verify

__all__ = ["VerificationError", "verify"]
