"""Structural verification of tensor-IR programs.

Checks the invariants the paper relies on (Section II-C.3): canonical loops,
no variable shadowing, all loads/stores referring to buffers that are either
parameters or allocated in scope, and every tensorize pragma wrapping a
perfectly nested loop region.
"""

from __future__ import annotations

from typing import List, Set

from ..dsl import expr as E
from ..dsl.tensor import Tensor
from .lower import PrimFunc
from .stmt import (
    Allocate,
    AttrStmt,
    Evaluate,
    For,
    IfThenElse,
    IntrinsicCall,
    SeqStmt,
    Stmt,
    Store,
)

__all__ = ["VerificationError", "verify"]


class VerificationError(Exception):
    """Raised when a tensor-IR program violates a structural invariant."""


def verify(func: PrimFunc) -> None:
    """Verify ``func``; raises :class:`VerificationError` on the first violation."""
    visible: Set[Tensor] = set(func.params)
    bound_vars: Set[E.Var] = set()
    _check(func.body, visible, bound_vars)


def _check(stmt: Stmt, visible: Set[Tensor], bound: Set[E.Var]) -> None:
    if isinstance(stmt, For):
        if stmt.var in bound:
            raise VerificationError(f"loop variable {stmt.var.name!r} is shadowed")
        if stmt.extent <= 0:
            raise VerificationError("loop extent must be positive")
        _check(stmt.body, visible, bound | {stmt.var})
    elif isinstance(stmt, SeqStmt):
        for s in stmt.stmts:
            _check(s, visible, bound)
    elif isinstance(stmt, IfThenElse):
        _check_expr(stmt.condition, visible, bound)
        _check(stmt.then_case, visible, bound)
        if stmt.else_case is not None:
            _check(stmt.else_case, visible, bound)
    elif isinstance(stmt, AttrStmt):
        _check(stmt.body, visible, bound)
    elif isinstance(stmt, Allocate):
        _check(stmt.body, visible | {stmt.tensor}, bound)
    elif isinstance(stmt, Store):
        if stmt.tensor not in visible:
            raise VerificationError(f"store into unknown buffer {stmt.tensor.name!r}")
        for idx in stmt.indices:
            _check_expr(idx, visible, bound)
        _check_expr(stmt.value, visible, bound)
    elif isinstance(stmt, Evaluate):
        _check_expr(stmt.expr, visible, bound)
    elif isinstance(stmt, IntrinsicCall):
        for binding in list(stmt.inputs) + [stmt.output]:
            if binding.program_tensor not in visible:
                raise VerificationError(
                    f"intrinsic operand uses unknown buffer "
                    f"{binding.program_tensor.name!r}"
                )
            intrin_axis_vars = {ax.var for ax in stmt.axes}
            for idx in binding.program_indices:
                for var in E.free_vars(idx):
                    if var not in bound and var not in intrin_axis_vars:
                        raise VerificationError(
                            f"intrinsic operand index uses unbound variable {var.name!r}"
                        )
    else:
        raise VerificationError(f"unknown statement type {type(stmt).__name__}")


def _check_expr(expr: E.Expr, visible: Set[Tensor], bound: Set[E.Var]) -> None:
    if isinstance(expr, E.Var):
        if expr not in bound:
            raise VerificationError(f"use of unbound variable {expr.name!r}")
        return
    if isinstance(expr, E.Reduce):
        # Reduce axes bind their own variables inside the source.
        _check_expr(expr.source, visible, bound | {ax.var for ax in expr.axes})
        return
    if isinstance(expr, E.TensorLoad):
        if expr.tensor not in visible:
            raise VerificationError(f"load from unknown buffer {expr.tensor.name!r}")
    for child in expr.children:
        _check_expr(child, visible, bound)
