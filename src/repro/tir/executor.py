"""The unified execution facade: one front door for every way to run IR.

Execution used to be reachable through five uncoordinated entrypoints
(``Interpreter.run``, ``tir.engine.execute``, ``vector_run``, ``plan.run``,
``graph.run_model``), each with its own ``validate=``/``strict=`` spelling.
:class:`Executor` replaces them:

    executor = repro.tir.Executor(tier="native")
    out = executor.run(func, buffers)
    run = executor.run_model(graph, inputs)

``tier`` selects the :mod:`~repro.tir.backend` registry entry — or ``"auto"``
(the default), which means the native tier when a toolchain is available and
the vectorized tier otherwise.  ``validation`` is a
:class:`ValidationPolicy`: ``OFF`` trusts the engine, ``SPOT`` checks each
distinct plan once against the scalar interpreter, ``FULL`` checks every run.
The old entrypoints survive as thin shims that emit one
:class:`DeprecationWarning` per process and delegate here.
"""

from __future__ import annotations

import threading
import warnings
from enum import Enum
from typing import Dict, Optional, Set, Union

import numpy as np

from ..dsl.tensor import Tensor
from .engine import EngineStats
from .interpreter import Interpreter
from .lower import PrimFunc

__all__ = [
    "Executor",
    "ValidationPolicy",
    "ValidationError",
    "reset_deprecation_warnings",
]


# -- warn-once plumbing (shared by every deprecation shim in this PR) --------

_WARNED: Set[str] = set()
_WARNED_LOCK = threading.Lock()


def warn_once(key: str, message: str) -> None:
    """Emit ``DeprecationWarning`` for ``key`` once per process."""
    with _WARNED_LOCK:
        if key in _WARNED:
            return
        _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def reset_deprecation_warnings() -> None:
    """Forget which deprecation warnings fired (test hook)."""
    with _WARNED_LOCK:
        _WARNED.clear()


# -- validation policy -------------------------------------------------------


class ValidationPolicy(Enum):
    """How much result checking an executor (or tuning session) performs.

    ``OFF``
        Trust the engine; no checks.
    ``SPOT``
        Check once per distinct plan (executors: against the scalar
        interpreter on first sight of a function; tuning: winner-only
        oracle validation).
    ``FULL``
        Check every run (executors) / every candidate (tuning).
    """

    OFF = "off"
    SPOT = "spot"
    FULL = "full"

    @classmethod
    def coerce(
        cls,
        value: Union[None, bool, str, "ValidationPolicy"],
        *,
        default: "ValidationPolicy",
        bool_true: "ValidationPolicy",
        owner: str,
    ) -> "ValidationPolicy":
        """Normalise legacy spellings to a policy.

        ``None`` → ``default``; booleans (the deprecated convention) warn
        once and map ``True`` → ``bool_true``, ``False`` → ``OFF``; strings
        are enum values.
        """
        if value is None:
            return default
        if isinstance(value, cls):
            return value
        if isinstance(value, bool):
            warn_once(
                f"{owner}:validate-bool",
                f"{owner}: boolean validate= is deprecated; pass "
                f"validation=ValidationPolicy.{bool_true.name if value else 'OFF'} "
                f"(or the strings 'off'/'spot'/'full')",
            )
            return bool_true if value else cls.OFF
        if isinstance(value, str):
            return cls(value.lower())
        raise TypeError(f"cannot interpret {value!r} as a ValidationPolicy")


class ValidationError(AssertionError):
    """An executor validation check found a result mismatch."""


# -- the facade --------------------------------------------------------------

_ENGINE_TO_TIER = {
    "scalar": "interpreter",
    "vector": "vectorized",
    "native": "native",
}


def tier_for_engine(engine: str) -> str:
    """Map a legacy ``engine=`` string to a tier name."""
    try:
        return _ENGINE_TO_TIER[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r} (expected 'scalar', 'vector', or 'native')"
        ) from None


class Executor:
    """Unified execution over the tiered backend registry.

    Parameters
    ----------
    tier:
        ``"auto"`` (native when a toolchain exists, else vectorized),
        ``"interpreter"``, ``"vectorized"``, or ``"native"``.
    validation:
        A :class:`ValidationPolicy` (or its string value).  ``SPOT`` checks
        each distinct function once against the scalar interpreter; ``FULL``
        checks every run.
    strict:
        Vectorized/native tiers raise instead of falling back to the
        interpreter on unvectorizable nests.
    promote_after:
        Warm runs before native promotion (defaults to the process-wide
        setting, see :func:`repro.tir.backend.default_promote_after`).
    validate:
        Deprecated boolean spelling of ``validation`` (True → ``FULL``).
    """

    def __init__(
        self,
        tier: str = "auto",
        validation: Union[None, str, ValidationPolicy] = None,
        strict: bool = False,
        promote_after: Optional[int] = None,
        validate: Optional[bool] = None,
    ) -> None:
        if validate is not None:
            if validation is not None:
                raise TypeError("pass either validation= or the deprecated validate=")
            validation = ValidationPolicy.coerce(
                validate,
                default=ValidationPolicy.OFF,
                bool_true=ValidationPolicy.FULL,
                owner="Executor",
            )
        self.validation = ValidationPolicy.coerce(
            validation,
            default=ValidationPolicy.OFF,
            bool_true=ValidationPolicy.FULL,
            owner="Executor",
        )
        self.strict = strict
        self.promote_after = promote_after
        self.stats = EngineStats()
        self.tier = self._resolve_tier(tier)
        self._spot_checked: Set[int] = set()

    @staticmethod
    def _resolve_tier(tier: str) -> str:
        from . import backend as _backend

        if tier == "auto":
            kind, _ = _backend.native_toolchain()
            return "native" if kind else "vectorized"
        if tier in _backend.available_backends():
            return tier
        raise ValueError(
            f"unknown tier {tier!r} (expected 'auto' or one of "
            f"{_backend.available_backends()})"
        )

    # -- single functions ---------------------------------------------------
    def run(
        self,
        func: PrimFunc,
        buffers: Dict[Tensor, np.ndarray],
        stats: Optional[EngineStats] = None,
    ) -> np.ndarray:
        """Execute ``func`` over ``buffers``; same contract as
        ``Interpreter.run`` (the output buffer is mutated in place)."""
        from . import backend as _backend

        check = self.validation is ValidationPolicy.FULL
        if self.validation is ValidationPolicy.SPOT:
            from .plan import func_signature, func_structural_hash

            key = (func_structural_hash(func), func_signature(func))
            if key not in self._spot_checked:
                self._spot_checked.add(key)
                check = True
        reference: Optional[np.ndarray] = None
        if check:
            reference = Interpreter(func).run(
                {t: np.array(a, copy=True) for t, a in buffers.items()}
            )
        result = _backend.get_backend(self.tier).run(
            func,
            buffers,
            stats=stats if stats is not None else self.stats,
            strict=self.strict,
            promote_after=self.promote_after,
        )
        if reference is not None and not np.array_equal(reference, result):
            raise ValidationError(
                f"{self.tier} tier result for {func.name!r} differs from the "
                f"scalar interpreter"
            )
        return result

    # -- whole models -------------------------------------------------------
    def run_model(self, model, inputs, weights=None, rng=None, keep=()):
        """Execute a graph (or compiled model) through this executor.

        Accepts a :class:`~repro.graph.ir.Graph` or anything with a
        ``.graph`` attribute (e.g. ``CompiledModel``).  Returns the
        :class:`~repro.graph.executor.ModelRun`.
        """
        from ..graph.executor import run_model as _run_model

        graph = getattr(model, "graph", model)
        return _run_model(
            graph, inputs, weights=weights, rng=rng, keep=keep, executor=self
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Executor(tier={self.tier!r}, validation={self.validation.value!r}, "
            f"strict={self.strict})"
        )
