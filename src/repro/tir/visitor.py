"""Visitors and mutators over tensor-IR statements.

These are the traversal workhorses used by the verifier, the tensorize
replacement pass, the codegen and the cost models.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from ..dsl.expr import Expr
from .stmt import (
    Allocate,
    AttrStmt,
    Evaluate,
    For,
    IfThenElse,
    IntrinsicCall,
    SeqStmt,
    Stmt,
    Store,
)

__all__ = ["StmtVisitor", "StmtMutator", "walk", "collect", "count_nodes"]


class StmtVisitor:
    """Read-only traversal; override ``visit_<node>`` methods as needed."""

    def visit(self, stmt: Stmt) -> None:
        method = getattr(self, f"visit_{type(stmt).__name__.lower()}", None)
        if method is not None:
            method(stmt)
        else:
            self.generic_visit(stmt)

    def generic_visit(self, stmt: Stmt) -> None:
        for child in _children(stmt):
            self.visit(child)

    # Default handlers just recurse; subclasses may override selectively.
    def visit_for(self, stmt: For) -> None:
        self.generic_visit(stmt)

    def visit_store(self, stmt: Store) -> None:
        self.generic_visit(stmt)

    def visit_seqstmt(self, stmt: SeqStmt) -> None:
        self.generic_visit(stmt)

    def visit_ifthenelse(self, stmt: IfThenElse) -> None:
        self.generic_visit(stmt)

    def visit_attrstmt(self, stmt: AttrStmt) -> None:
        self.generic_visit(stmt)

    def visit_allocate(self, stmt: Allocate) -> None:
        self.generic_visit(stmt)

    def visit_evaluate(self, stmt: Evaluate) -> None:
        self.generic_visit(stmt)

    def visit_intrinsiccall(self, stmt: IntrinsicCall) -> None:
        self.generic_visit(stmt)


class StmtMutator:
    """Rebuild a statement tree; override ``mutate_<node>`` to transform."""

    def mutate(self, stmt: Stmt) -> Stmt:
        method = getattr(self, f"mutate_{type(stmt).__name__.lower()}", None)
        if method is not None:
            return method(stmt)
        return self.generic_mutate(stmt)

    def generic_mutate(self, stmt: Stmt) -> Stmt:
        if isinstance(stmt, For):
            body = self.mutate(stmt.body)
            if body is stmt.body:
                return stmt
            return For(stmt.var, stmt.extent, body, stmt.kind, stmt.thread_tag, stmt.pragmas)
        if isinstance(stmt, SeqStmt):
            new = [self.mutate(s) for s in stmt.stmts]
            if all(a is b for a, b in zip(new, stmt.stmts)):
                return stmt
            return SeqStmt(new)
        if isinstance(stmt, IfThenElse):
            then_case = self.mutate(stmt.then_case)
            else_case = self.mutate(stmt.else_case) if stmt.else_case is not None else None
            if then_case is stmt.then_case and else_case is stmt.else_case:
                return stmt
            return IfThenElse(stmt.condition, then_case, else_case, stmt.likely)
        if isinstance(stmt, AttrStmt):
            body = self.mutate(stmt.body)
            if body is stmt.body:
                return stmt
            return AttrStmt(stmt.key, stmt.value, body)
        if isinstance(stmt, Allocate):
            body = self.mutate(stmt.body)
            if body is stmt.body:
                return stmt
            return Allocate(stmt.tensor, body, stmt.scope)
        # Leaves: Store, Evaluate, IntrinsicCall
        return stmt

    # Named hooks for symmetry with the visitor.
    def mutate_for(self, stmt: For) -> Stmt:
        return self.generic_mutate(stmt)

    def mutate_seqstmt(self, stmt: SeqStmt) -> Stmt:
        return self.generic_mutate(stmt)

    def mutate_attrstmt(self, stmt: AttrStmt) -> Stmt:
        return self.generic_mutate(stmt)


def _children(stmt: Stmt) -> List[Stmt]:
    if isinstance(stmt, For):
        return [stmt.body]
    if isinstance(stmt, SeqStmt):
        return list(stmt.stmts)
    if isinstance(stmt, IfThenElse):
        out = [stmt.then_case]
        if stmt.else_case is not None:
            out.append(stmt.else_case)
        return out
    if isinstance(stmt, (AttrStmt, Allocate)):
        return [stmt.body]
    return []


def walk(stmt: Stmt) -> Iterator[Stmt]:
    """Yield every statement node in pre-order."""
    yield stmt
    for child in _children(stmt):
        yield from walk(child)


def collect(stmt: Stmt, predicate: Callable[[Stmt], bool]) -> List[Stmt]:
    """All nodes satisfying ``predicate``, in pre-order."""
    return [s for s in walk(stmt) if predicate(s)]


def count_nodes(stmt: Stmt, node_type: Optional[type] = None) -> int:
    """Number of nodes (optionally of a specific type) in the tree."""
    if node_type is None:
        return sum(1 for _ in walk(stmt))
    return sum(1 for s in walk(stmt) if isinstance(s, node_type))
