"""Crash-isolated qualification of native kernels.

PR 8's native tier compiles a lowered PrimFunc and ``CDLL``-loads the result
straight into the host process.  That is fine once the kernel is known good —
but the *first* execution of a freshly compiled kernel is exactly the moment
a miscompile shows itself, and a segfault there kills the tuning worker or
the serving daemon outright.  This module moves that first contact into a
**disposable subprocess**:

* the host generates the low-level source (pure Python — it cannot crash the
  process) and forks a child;
* the child applies ``RLIMIT_AS``/``RLIMIT_CPU``, compiles the source with
  the same toolchain the host would use, runs the kernel once over pickled
  copies of the caller's real buffers, compares the output bit-for-bit
  against the vectorized tier's result, and ships a verdict dict back over a
  pipe;
* the host watches the pipe under a wall-clock watchdog; a child that
  segfaults, is OOM-killed, or hangs becomes a *classified verdict*
  (``segfault`` / ``oom`` / ``hang``) instead of a dead host.

Only after a ``qualified`` verdict does :func:`repro.tir.backend._try_promote`
load the kernel in-process.  The child is a fresh interpreter state with
nothing to corrupt and nothing to leak: whatever the candidate kernel does —
scribble over the heap, exhaust memory, spin forever — dies with it.

Knobs (environment):

* ``REPRO_DISABLE_SANDBOX`` — skip qualification and trust the in-process
  spot check alone (the pre-PR-9 behaviour);
* ``REPRO_SANDBOX_TIMEOUT`` — wall-clock seconds the child may take end to
  end (default 120);
* ``REPRO_SANDBOX_MEMORY_MB`` — ``RLIMIT_AS`` headroom for the child beyond
  the forked interpreter's existing address space (default 4096).
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import signal
import subprocess
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..testing import faults

__all__ = [
    "SandboxVerdict",
    "default_memory_mb",
    "default_timeout_s",
    "qualify",
    "sandbox_enabled",
]

_DEFAULT_TIMEOUT_S = 120.0
_DEFAULT_MEMORY_MB = 4096


def sandbox_enabled() -> bool:
    """Whether promotion runs the sandboxed qualification step."""
    return not os.environ.get("REPRO_DISABLE_SANDBOX")


def _env_number(name: str, fallback: float) -> float:
    raw = os.environ.get(name)
    if raw is None:
        return fallback
    try:
        value = float(raw)
    except ValueError:
        return fallback
    return value if value > 0 else fallback


def default_timeout_s() -> float:
    """Wall-clock budget for one qualification child."""
    return _env_number("REPRO_SANDBOX_TIMEOUT", _DEFAULT_TIMEOUT_S)


def default_memory_mb() -> int:
    """``RLIMIT_AS`` headroom for one qualification child."""
    return int(_env_number("REPRO_SANDBOX_MEMORY_MB", _DEFAULT_MEMORY_MB))


@dataclass(frozen=True)
class SandboxVerdict:
    """The outcome of qualifying one candidate kernel.

    ``outcome`` is one of ``qualified`` (safe to load in-process),
    ``mismatch`` (ran, but not bit-identical), ``compile_error``,
    ``segfault``, ``oom``, ``hang``, ``crash`` (died some other way),
    ``error`` (sandbox infrastructure failed), or ``unavailable`` (no
    toolchain / platform cannot sandbox).  Only ``qualified`` has
    ``ok=True``; every other outcome is a demotion reason.
    """

    ok: bool
    outcome: str
    reason: str
    elapsed_s: float = 0.0
    exitcode: Optional[int] = None

    def describe(self) -> str:
        return f"{self.outcome}: {self.reason}"


# ---------------------------------------------------------------------------
# Child side
# ---------------------------------------------------------------------------


class _SandboxCompileError(RuntimeError):
    pass


def _mapped_address_space_bytes() -> int:
    """The child's current virtual size (0 where /proc is unavailable)."""
    try:
        with open("/proc/self/statm", "r") as handle:
            pages = int(handle.read().split()[0])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError, AttributeError):
        return 0


def _apply_rlimits(memory_mb: int, cpu_s: float) -> None:
    """Best-effort resource caps; unsupported platforms simply skip them.

    ``memory_mb`` is *headroom*: the cap is the forked interpreter's current
    address space plus ``memory_mb``.  A fork inherits the host's whole
    mapping (under a fat pytest parent that alone can exceed any sensible
    absolute cap), so an absolute ``RLIMIT_AS`` would starve compilation and
    ``CDLL`` before the candidate kernel ever ran — the limit must bound
    what the *kernel* may allocate, not what the host already had.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return
    if memory_mb:
        ceiling = _mapped_address_space_bytes() + (int(memory_mb) << 20)
        try:
            resource.setrlimit(resource.RLIMIT_AS, (ceiling, ceiling))
        except (ValueError, OSError):  # pragma: no cover - platform quirks
            pass
    if cpu_s:
        seconds = max(1, int(cpu_s))
        try:
            resource.setrlimit(resource.RLIMIT_CPU, (seconds, seconds + 1))
        except (ValueError, OSError):  # pragma: no cover - platform quirks
            pass


def _materialise(payload: Dict[str, object]):
    """Compile the shipped source inside the child; returns a callable."""
    faults.fire("backend.compile", func_name=payload["func_name"], where="sandbox")
    if payload["kind"] == "numba":
        import numba  # type: ignore

        namespace: Dict[str, object] = {}
        code = compile(payload["source"], f"<sandbox:{payload['func_name']}>", "exec")
        exec(code, namespace)
        return numba.njit(cache=False)(namespace[payload["entry"]])
    import ctypes

    workdir = str(payload["workdir"])
    c_path = os.path.join(workdir, f"{payload['func_name']}.c")
    so_path = os.path.join(workdir, f"{payload['func_name']}.so")
    with open(c_path, "w") as handle:
        handle.write(str(payload["source"]))
    proc = subprocess.run(
        [str(payload["compiler"]), *payload["cc_flags"], "-o", so_path, c_path],
        capture_output=True,
        text=True,
        timeout=float(payload["compile_timeout_s"]),
    )
    if proc.returncode != 0:
        raise _SandboxCompileError(
            f"C compilation of {payload['func_name']!r} failed:\n{proc.stderr.strip()}"
        )
    library = ctypes.CDLL(so_path)
    entry = getattr(library, payload["entry"])
    entry.restype = None
    entry._library = library  # keep the handle alive alongside the callable
    return entry


def _invoke(kind: str, entry, arrays: List[np.ndarray]) -> None:
    if kind == "cc":
        import ctypes

        entry(*[array.ctypes.data_as(ctypes.c_void_p) for array in arrays])
    else:
        entry(*arrays)


def _sandbox_child(conn, payload: Dict[str, object]) -> None:
    """Entry point of the disposable process (module-level: spawn-picklable).

    Sends exactly one verdict dict, or dies trying — the parent classifies
    a silent death from the exit code.
    """
    started = time.perf_counter()

    def send(ok: bool, outcome: str, reason: str) -> None:
        try:
            conn.send(
                {
                    "ok": ok,
                    "outcome": outcome,
                    "reason": reason,
                    "elapsed_s": time.perf_counter() - started,
                }
            )
        except (BrokenPipeError, OSError):  # parent gave up already
            pass

    try:
        _apply_rlimits(int(payload["memory_mb"]), float(payload["cpu_s"]))
        arrays: List[np.ndarray] = list(payload["arrays"])
        expected: np.ndarray = payload["expected"]
        try:
            entry = _materialise(payload)
        except subprocess.TimeoutExpired:
            send(False, "hang", f"C compiler exceeded {payload['compile_timeout_s']}s in the sandbox")
            return
        except _SandboxCompileError as exc:
            send(False, "compile_error", str(exc))
            return
        faults.fire("backend.qualify", func_name=payload["func_name"], where="sandbox")
        _invoke(str(payload["kind"]), entry, arrays)
        if np.array_equal(arrays[-1], expected):
            send(True, "qualified", "bit-identical to the vectorized tier")
        else:
            send(False, "mismatch", "kernel output is not bit-identical to the vectorized tier")
    except MemoryError:
        send(False, "oom", f"kernel exhausted the sandbox memory limit ({payload['memory_mb']} MiB)")
    except BaseException as exc:  # noqa: BLE001 - the child must always report
        send(False, "crash", f"sandbox raised {type(exc).__name__}: {exc}")
    finally:
        try:
            conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Host side
# ---------------------------------------------------------------------------

_FATAL_SIGNALS = {
    getattr(signal, name): name
    for name in ("SIGSEGV", "SIGBUS", "SIGILL", "SIGFPE")
    if hasattr(signal, name)
}


def _classify_exit(exitcode: Optional[int], elapsed: float) -> SandboxVerdict:
    """Turn a child's silent death into a named demotion reason."""
    if exitcode is None:
        return SandboxVerdict(False, "hang", "sandbox child never exited", elapsed, exitcode)
    if exitcode >= 0:
        return SandboxVerdict(
            False,
            "crash",
            f"sandbox exited with status {exitcode} before returning a verdict",
            elapsed,
            exitcode,
        )
    signum = -exitcode
    try:
        signame = signal.Signals(signum).name
    except ValueError:  # pragma: no cover - exotic signal numbers
        signame = f"signal {signum}"
    if signum in _FATAL_SIGNALS:
        return SandboxVerdict(
            False, "segfault", f"sandbox killed by {signame} while qualifying the kernel",
            elapsed, exitcode,
        )
    if signum == signal.SIGKILL:
        return SandboxVerdict(
            False, "oom", "sandbox killed by SIGKILL (OOM killer or resource limit)",
            elapsed, exitcode,
        )
    if hasattr(signal, "SIGXCPU") and signum == signal.SIGXCPU:
        return SandboxVerdict(
            False, "hang", "sandbox exceeded its RLIMIT_CPU budget", elapsed, exitcode
        )
    return SandboxVerdict(
        False, "crash", f"sandbox killed by {signame}", elapsed, exitcode
    )


def qualify(
    func,
    arrays: Sequence[np.ndarray],
    expected: np.ndarray,
    *,
    timeout_s: Optional[float] = None,
    memory_mb: Optional[int] = None,
    compile_timeout_s: Optional[float] = None,
) -> SandboxVerdict:
    """Compile + bit-check ``func`` in a disposable subprocess.

    ``arrays`` are the kernel's buffers in parameter order (inputs plus the
    pre-run output buffer); ``expected`` is the vectorized tier's result for
    the same inputs.  Never raises for anything the candidate kernel does —
    every failure mode comes back as a :class:`SandboxVerdict`.
    """
    from ..codegen import lowlevel  # lazy: codegen imports repro.tir
    from .backend import _CC_FLAGS, _compile_timeout_s, native_toolchain

    kind, toolchain = native_toolchain()
    if kind is None:
        return SandboxVerdict(False, "unavailable", str(toolchain))
    try:
        if kind == "numba":
            source = lowlevel.generate_numba_source(func)
        else:
            source = lowlevel.generate_c(func)
    except lowlevel.LoweringError as exc:
        return SandboxVerdict(False, "compile_error", str(exc))

    timeout_s = timeout_s if timeout_s is not None else default_timeout_s()
    memory_mb = memory_mb if memory_mb is not None else default_memory_mb()
    if compile_timeout_s is None:
        compile_timeout_s = min(_compile_timeout_s(), timeout_s)
    workdir = tempfile.mkdtemp(prefix="repro_sandbox_")
    payload: Dict[str, object] = {
        "kind": kind,
        "compiler": str(toolchain) if kind == "cc" else None,
        "cc_flags": list(_CC_FLAGS),
        "source": source.source,
        "entry": source.entry,
        "func_name": source.func_name,
        "workdir": workdir,
        "arrays": [np.ascontiguousarray(array) for array in arrays],
        "expected": np.asarray(expected),
        "memory_mb": memory_mb,
        # CPU budget tracks the wall budget: a kernel that burns a full
        # wall-timeout of pure CPU is hung by definition.
        "cpu_s": timeout_s,
        "compile_timeout_s": compile_timeout_s,
    }
    start = time.perf_counter()
    try:
        ctx = multiprocessing.get_context()
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        child = ctx.Process(
            target=_sandbox_child,
            args=(send_conn, payload),
            name=f"sandbox-{source.func_name}",
            daemon=True,
        )
        child.start()
    except Exception as exc:  # cannot even fork (daemonic parent, fd limits)
        shutil.rmtree(workdir, ignore_errors=True)
        return SandboxVerdict(
            False, "error", f"could not start sandbox process: {exc}",
            time.perf_counter() - start,
        )
    try:
        send_conn.close()  # child holds the write end now
        verdict_data: Optional[Dict[str, object]] = None
        watchdog_fired = False
        try:
            if recv_conn.poll(timeout_s):
                verdict_data = recv_conn.recv()
            else:
                watchdog_fired = True
        except (EOFError, OSError):
            pass  # child died mid-send; classify from its exit code below
        if watchdog_fired and child.is_alive():
            child.kill()
            child.join(timeout=5.0)
            return SandboxVerdict(
                False,
                "hang",
                f"sandbox exceeded the {timeout_s:g}s wall-clock watchdog",
                time.perf_counter() - start,
                child.exitcode,
            )
        child.join(timeout=5.0)
        if child.is_alive():  # pragma: no cover - verdict sent but exit wedged
            child.kill()
            child.join(timeout=5.0)
        elapsed = time.perf_counter() - start
        if verdict_data is not None:
            return SandboxVerdict(
                bool(verdict_data.get("ok")),
                str(verdict_data.get("outcome", "error")),
                str(verdict_data.get("reason", "")),
                elapsed,
                child.exitcode,
            )
        return _classify_exit(child.exitcode, elapsed)
    finally:
        recv_conn.close()
        shutil.rmtree(workdir, ignore_errors=True)
