"""Process-wide caching of executable plans.

Compiling a :class:`~repro.tir.lower.PrimFunc` into an
:class:`~repro.tir.engine.ExecutablePlan` derives the full affine analysis of
its loop nests — useful work, but work a model with fifty near-identical
convolution layers would otherwise repeat fifty times.  The
:class:`PlanCache` recognises *structurally identical* functions — different
``Var``/``Tensor`` objects, same program — and hands out one shared plan:

* the cache key is the **canonical structural hash** of the function
  (variables numbered in binding order, tensors by parameter position — see
  :func:`repro.dsl.expr.canonical_hash`) combined with the **dtype/shape
  signature** of every parameter, so functions differing only in buffer
  contents collide on purpose while different shapes or dtypes never do;
* every hash hit is confirmed by a full structural-equality walk
  (:func:`func_structural_equal`) before the plan is shared, so hash
  collisions cost a tree walk, never correctness;
* plans bake in analyses derived from the expression interning layer, so the
  cache invalidates itself when :func:`repro.dsl.expr.clear_expr_caches`
  bumps the cache epoch;
* entries are LRU-bounded; eviction only drops the cache reference — plans
  already handed out keep working.

The cache is consulted by :class:`~repro.tir.engine.VectorizedEngine` (and
therefore by ``repro.tir.execute``, the repository-wide oracle entry point),
which is what makes warm-plan execution the default everywhere.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dsl import expr as E
from ..telemetry import metrics as _metrics
from .engine import ExecutablePlan, compile_plan
from .lower import PrimFunc
from .stmt import (
    Allocate,
    AttrStmt,
    Evaluate,
    For,
    IfThenElse,
    IntrinsicCall,
    SeqStmt,
    Stmt,
    Store,
)

__all__ = [
    "PlanCache",
    "PlanCacheStats",
    "plan_cache",
    "cached_execute",
    "func_signature",
    "func_structural_hash",
    "func_structural_equal",
]


# ---------------------------------------------------------------------------
# Canonical hashing and structural equality of whole functions
# ---------------------------------------------------------------------------


def func_signature(func: PrimFunc) -> Tuple:
    """The dtype/shape signature of a function's parameters.

    Part of the plan-cache key: two functions whose buffers differ in shape
    or element type must never share a plan, whatever their loop structure.
    """
    return tuple((t.shape, t.dtype.name) for t in func.params)


def func_structural_hash(func: PrimFunc) -> int:
    """A hash stable across structurally identical functions.

    Variables hash by binding order (loops, intrinsic axes, reduction axes),
    tensors by parameter position / allocation order; loop annotations and
    pragmas are ignored because they do not change what a plan executes.
    Memoized on the function object (functions are immutable once lowered),
    so re-executing the same layer pays the tree walk once.
    """
    cached = func.__dict__.get("_plan_hash")
    if cached is not None:
        return cached
    tensor_ids: Dict[object, int] = {t: i for i, t in enumerate(func.params)}
    var_ids: Dict[E.Var, int] = {}
    h = hash(("func", func_signature(func), _stmt_hash(func.body, var_ids, tensor_ids)))
    func._plan_hash = h
    return h


def _stmt_hash(stmt: Stmt, var_ids: dict, tensor_ids: dict) -> int:
    while isinstance(stmt, AttrStmt):
        stmt = stmt.body
    if isinstance(stmt, SeqStmt):
        return hash(
            ("seq",) + tuple(_stmt_hash(s, var_ids, tensor_ids) for s in stmt.stmts)
        )
    if isinstance(stmt, For):
        var_ids[stmt.var] = len(var_ids)
        return hash(("for", stmt.extent, _stmt_hash(stmt.body, var_ids, tensor_ids)))
    if isinstance(stmt, IfThenElse):
        return hash(
            (
                "if",
                stmt.likely,
                E.canonical_hash(stmt.condition, var_ids, tensor_ids),
                _stmt_hash(stmt.then_case, var_ids, tensor_ids),
                None
                if stmt.else_case is None
                else _stmt_hash(stmt.else_case, var_ids, tensor_ids),
            )
        )
    if isinstance(stmt, Store):
        t = stmt.tensor
        tkey = tensor_ids.get(t, ("ext", t.name, t.shape, t.dtype.name))
        return hash(
            ("store", tkey)
            + tuple(E.canonical_hash(i, var_ids, tensor_ids) for i in stmt.indices)
            + (E.canonical_hash(stmt.value, var_ids, tensor_ids),)
        )
    if isinstance(stmt, Allocate):
        tensor_ids[stmt.tensor] = len(tensor_ids)
        return hash(
            (
                "alloc",
                stmt.tensor.shape,
                stmt.tensor.dtype.name,
                _stmt_hash(stmt.body, var_ids, tensor_ids),
            )
        )
    if isinstance(stmt, Evaluate):
        return hash(("eval", E.canonical_hash(stmt.expr, var_ids, tensor_ids)))
    if isinstance(stmt, IntrinsicCall):
        for ax in stmt.axes:
            var_ids.setdefault(ax.var, len(var_ids))
        parts: List = ["call", stmt.intrin.name, stmt.reads_output]
        parts.append(tuple(ax.extent for ax in stmt.axes))
        for b in list(stmt.inputs) + [stmt.output]:
            t = b.program_tensor
            tkey = tensor_ids.get(t, ("ext", t.name, t.shape, t.dtype.name))
            parts.append(
                (
                    b.intrin_tensor.name,
                    b.intrin_tensor.shape,
                    b.intrin_tensor.dtype.name,
                    tuple(
                        E.canonical_hash(i, var_ids, tensor_ids)
                        for i in b.intrin_indices
                    ),
                    tkey,
                    tuple(
                        E.canonical_hash(i, var_ids, tensor_ids)
                        for i in b.program_indices
                    ),
                )
            )
        return hash(tuple(parts))
    raise TypeError(f"unhandled statement type {type(stmt).__name__}")


def func_structural_equal(a: PrimFunc, b: PrimFunc) -> bool:
    """Whether two functions are the same program over positionally mapped
    parameters (same shapes, dtypes, loop structure, expressions and
    intrinsic bindings; annotations/pragmas ignored)."""
    if len(a.params) != len(b.params):
        return False
    tensor_map: Dict[object, object] = {}
    for ta, tb in zip(a.params, b.params):
        if ta.shape != tb.shape or ta.dtype != tb.dtype:
            return False
        tensor_map[ta] = tb
    return _stmt_equal(a.body, b.body, {}, tensor_map)


def _unwrap(stmt: Stmt) -> Stmt:
    while isinstance(stmt, AttrStmt):
        stmt = stmt.body
    return stmt


def _stmt_equal(sa: Stmt, sb: Stmt, var_map: dict, tensor_map: dict) -> bool:
    sa, sb = _unwrap(sa), _unwrap(sb)
    if type(sa) is not type(sb):
        return False
    if isinstance(sa, SeqStmt):
        if len(sa.stmts) != len(sb.stmts):
            return False
        return all(
            _stmt_equal(x, y, var_map, tensor_map)
            for x, y in zip(sa.stmts, sb.stmts)
        )
    if isinstance(sa, For):
        if sa.extent != sb.extent:
            return False
        var_map[sa.var] = sb.var
        return _stmt_equal(sa.body, sb.body, var_map, tensor_map)
    if isinstance(sa, IfThenElse):
        if sa.likely != sb.likely:
            return False
        if not _expr_equal(sa.condition, sb.condition, var_map, tensor_map):
            return False
        if not _stmt_equal(sa.then_case, sb.then_case, var_map, tensor_map):
            return False
        if (sa.else_case is None) != (sb.else_case is None):
            return False
        if sa.else_case is None:
            return True
        return _stmt_equal(sa.else_case, sb.else_case, var_map, tensor_map)
    if isinstance(sa, Store):
        if not _tensor_match(sa.tensor, sb.tensor, tensor_map):
            return False
        if len(sa.indices) != len(sb.indices):
            return False
        return all(
            _expr_equal(x, y, var_map, tensor_map)
            for x, y in zip(sa.indices, sb.indices)
        ) and _expr_equal(sa.value, sb.value, var_map, tensor_map)
    if isinstance(sa, Allocate):
        if (
            sa.tensor.shape != sb.tensor.shape
            or sa.tensor.dtype != sb.tensor.dtype
        ):
            return False
        tensor_map[sa.tensor] = sb.tensor
        return _stmt_equal(sa.body, sb.body, var_map, tensor_map)
    if isinstance(sa, Evaluate):
        return _expr_equal(sa.expr, sb.expr, var_map, tensor_map)
    if isinstance(sa, IntrinsicCall):
        if sa.intrin is not sb.intrin or sa.reads_output != sb.reads_output:
            return False
        if len(sa.axes) != len(sb.axes) or len(sa.inputs) != len(sb.inputs):
            return False
        for ax_a, ax_b in zip(sa.axes, sb.axes):
            if ax_a.extent != ax_b.extent:
                return False
            var_map[ax_a.var] = ax_b.var
        for ba, bb in zip(list(sa.inputs) + [sa.output], list(sb.inputs) + [sb.output]):
            if ba.intrin_tensor is not bb.intrin_tensor:
                return False
            if not _tensor_match(ba.program_tensor, bb.program_tensor, tensor_map):
                return False
            if len(ba.intrin_indices) != len(bb.intrin_indices) or len(
                ba.program_indices
            ) != len(bb.program_indices):
                return False
            if not all(
                _expr_equal(x, y, var_map, tensor_map)
                for x, y in zip(ba.intrin_indices, bb.intrin_indices)
            ):
                return False
            if not all(
                _expr_equal(x, y, var_map, tensor_map)
                for x, y in zip(ba.program_indices, bb.program_indices)
            ):
                return False
        return True
    raise TypeError(f"unhandled statement type {type(sa).__name__}")


def _tensor_match(ta, tb, tensor_map: dict) -> bool:
    mapped = tensor_map.get(ta)
    if mapped is not None:
        return mapped is tb
    # Unregistered tensors (e.g. intrinsic register descriptions shared
    # process-wide) must be the identical object.
    return ta is tb


def _expr_equal(ea: E.Expr, eb: E.Expr, var_map: dict, tensor_map: dict) -> bool:
    if type(ea) is not type(eb):
        return False
    if isinstance(ea, E.Var):
        return var_map.get(ea, ea) is eb
    if isinstance(ea, E.Const):
        return ea.dtype == eb.dtype and ea.value == eb.value
    if isinstance(ea, E.Cast):
        return ea.dtype == eb.dtype and _expr_equal(ea.value, eb.value, var_map, tensor_map)
    if isinstance(ea, E.BinaryOp):
        return (
            ea.opcode == eb.opcode
            and _expr_equal(ea.a, eb.a, var_map, tensor_map)
            and _expr_equal(ea.b, eb.b, var_map, tensor_map)
        )
    if isinstance(ea, E.Compare):
        return (
            ea.op == eb.op
            and _expr_equal(ea.a, eb.a, var_map, tensor_map)
            and _expr_equal(ea.b, eb.b, var_map, tensor_map)
        )
    if isinstance(ea, E.Select):
        return all(
            _expr_equal(x, y, var_map, tensor_map)
            for x, y in zip(ea.children, eb.children)
        )
    if isinstance(ea, E.TensorLoad):
        if not _tensor_match(ea.tensor, eb.tensor, tensor_map):
            return False
        if len(ea.indices) != len(eb.indices):
            return False
        return all(
            _expr_equal(x, y, var_map, tensor_map)
            for x, y in zip(ea.indices, eb.indices)
        )
    if isinstance(ea, E.Reduce):
        if ea.combiner != eb.combiner or len(ea.axes) != len(eb.axes):
            return False
        extended = dict(var_map)
        for ax_a, ax_b in zip(ea.axes, eb.axes):
            if ax_a.extent != ax_b.extent:
                return False
            extended[ax_a.var] = ax_b.var
        return _expr_equal(ea.source, eb.source, extended, tensor_map)
    if isinstance(ea, (E.Ramp, E.Broadcast, E.Shuffle, E.Call)):
        if isinstance(ea, E.Ramp) and (ea.stride != eb.stride or ea.lanes != eb.lanes):
            return False
        if isinstance(ea, E.Broadcast) and ea.lanes != eb.lanes:
            return False
        if isinstance(ea, E.Call) and (ea.name != eb.name or ea.dtype != eb.dtype):
            return False
        if len(ea.children) != len(eb.children):
            return False
        return all(
            _expr_equal(x, y, var_map, tensor_map)
            for x, y in zip(ea.children, eb.children)
        )
    raise TypeError(f"unhandled node type {type(ea).__name__}")


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------


@dataclass
class PlanCacheStats:
    """Hit/miss counters of one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class PlanCache:
    """An LRU cache of :class:`ExecutablePlan` keyed by program structure.

    Thread-safe: one lock guards lookup, insertion and eviction, so parallel
    tuning threads racing on the same layer compile it once.  Hash hits are
    confirmed with :func:`func_structural_equal` before a plan is shared —
    same-hash-different-program functions coexist in one bucket.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("plan cache capacity must be positive")
        self.capacity = capacity
        self.stats = PlanCacheStats()
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Tuple, List[ExecutablePlan]]" = OrderedDict()
        self._epoch = E.expr_cache_epoch()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(bucket) for bucket in self._entries.values())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def get_or_compile(self, func: PrimFunc) -> ExecutablePlan:
        """The cached plan for ``func``'s program, compiling on first sight.

        The returned plan may have been compiled from a *different* (but
        structurally identical) function: run it with
        ``plan.run(buffers, func=func)`` so parameter buffers rebind
        positionally (:class:`~repro.tir.engine.VectorizedEngine` does this
        automatically).
        """
        key = (func_structural_hash(func), func_signature(func))
        with self._lock:
            epoch = E.expr_cache_epoch()
            if epoch != self._epoch:
                # The expression interning layer was cleared: every cached
                # plan bakes in analyses derived from it, so drop them all.
                self._entries.clear()
                self._epoch = epoch
                self.stats.invalidations += 1
            bucket = self._entries.get(key)
            if bucket is not None:
                for plan in bucket:
                    if plan.func is func or func_structural_equal(plan.func, func):
                        self._entries.move_to_end(key)
                        self.stats.hits += 1
                        _metrics.count("tir.plan_cache.hits")
                        return plan
            self.stats.misses += 1
            _metrics.count("tir.plan_cache.misses")
            plan = compile_plan(func)
            if bucket is None:
                self._entries[key] = [plan]
            else:
                bucket.append(plan)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            return plan


_GLOBAL_CACHE = PlanCache()


def plan_cache() -> PlanCache:
    """The process-wide plan cache used by the default execution path."""
    return _GLOBAL_CACHE


def cached_execute(func: PrimFunc, buffers: Dict, stats=None) -> np.ndarray:
    """Execute ``func`` through its (possibly shared) cached plan."""
    plan = _GLOBAL_CACHE.get_or_compile(func)
    return plan.run(buffers, stats=stats, func=func)
