"""A numpy-backed scalar interpreter for tensor IR.

The interpreter is the *reference* correctness oracle of the repository: every
schedule transformation, every tensorize rewrite, and every intrinsic
replacement can be validated by executing the resulting tensor IR and
comparing against a straightforward numpy reference.  Tensorized-instruction
calls are executed through the instruction's *hardware model* (its exact
lane-by-lane semantics), so a successful comparison demonstrates that UNIT
produced operand bindings that feed the instruction correctly — the property
the paper's Inspector is responsible for.

Day-to-day validation goes through the vectorized execution engine
(:mod:`repro.tir.engine`), which compiles the same loop nests to batched
numpy operations and falls back to this interpreter statement-by-statement;
the scalar path here stays deliberately simple so it can serve as the ground
truth the engine is tested against.

The interpreter is reentrant: all execution state (buffer bindings, the loop
variable environment) lives in a per-call :class:`Frame`, so one
``Interpreter`` instance may be shared across threads (e.g. the tuning
drivers' ``parallel_search``) and may be invoked recursively.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Sequence

import numpy as np

from ..dsl import expr as E
from ..dsl.dtype import DType
from ..dsl.tensor import Tensor
from .lower import PrimFunc
from .stmt import (
    Allocate,
    AttrStmt,
    Evaluate,
    For,
    IfThenElse,
    IntrinsicCall,
    SeqStmt,
    Stmt,
    Store,
)

__all__ = ["Frame", "Interpreter", "run", "alloc_buffers", "random_array"]


class Frame:
    """Execution state of one ``run`` invocation.

    Shared with the vectorized execution engine (:mod:`repro.tir.engine`):
    both executors thread all mutable run state — buffer bindings and the
    loop-variable environment — through per-call frames, which is what makes
    one interpreter/plan instance safely shareable across threads and
    recursion (the engine's fallback path re-enters the interpreter).
    """

    __slots__ = ("buffers", "env")

    def __init__(
        self,
        buffers: Dict[Tensor, np.ndarray],
        env: Optional[Dict[E.Var, int]] = None,
    ) -> None:
        self.buffers = buffers
        self.env = {} if env is None else env


class Interpreter:
    """Execute a :class:`PrimFunc` over numpy buffers, one element at a time."""

    def __init__(self, func: PrimFunc) -> None:
        self.func = func

    # -- public API -------------------------------------------------------
    def run(self, buffers: Dict[Tensor, np.ndarray]) -> np.ndarray:
        """Execute the function.  ``buffers`` maps every parameter tensor to a
        numpy array of matching shape/dtype.  Returns the output buffer."""
        frame = Frame(self.bind_params(buffers))
        self._exec(self.func.body, frame)
        return frame.buffers[self.func.output]

    def run_stmt(
        self,
        stmt: Stmt,
        buffers: Dict[Tensor, np.ndarray],
        env: Optional[Dict[E.Var, int]] = None,
    ) -> None:
        """Execute one statement subtree over caller-owned state.

        This is the fallback entry point used by the vectorized engine: the
        caller's ``buffers`` dict is mutated in place (including buffers added
        by ``Allocate``), and ``env`` provides bindings for loop variables of
        enclosing, already-executed loops.
        """
        self._exec(stmt, Frame(buffers, dict(env) if env else {}))

    def bind_params(self, buffers: Dict[Tensor, np.ndarray]) -> Dict[Tensor, np.ndarray]:
        """Validate parameter buffers and return a fresh binding dict."""
        bound: Dict[Tensor, np.ndarray] = {}
        for tensor in self.func.params:
            if tensor not in buffers:
                raise KeyError(f"missing buffer for parameter {tensor.name!r}")
            array = buffers[tensor]
            if tuple(array.shape) != tensor.shape:
                raise ValueError(
                    f"buffer for {tensor.name!r} has shape {array.shape}, "
                    f"expected {tensor.shape}"
                )
            bound[tensor] = array
        return bound

    # -- statement execution ----------------------------------------------
    def _exec(self, stmt: Stmt, frame: Frame) -> None:
        if isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                self._exec(s, frame)
        elif isinstance(stmt, For):
            var = stmt.var
            for i in range(stmt.extent):
                frame.env[var] = i
                self._exec(stmt.body, frame)
            frame.env.pop(var, None)
        elif isinstance(stmt, Store):
            buf = self._get_buffer(frame, stmt.tensor)
            idx = [self._eval(i, frame) for i in stmt.indices]
            value = self._eval(stmt.value, frame)
            if any(isinstance(i, np.ndarray) for i in idx) or isinstance(
                value, np.ndarray
            ):
                # Vectorized store (Ramp/Broadcast/Shuffle indices or value):
                # scatter the whole lane group at once.
                arrays = np.broadcast_arrays(
                    *(np.asarray(i) for i in idx), np.asarray(value)
                )
                buf[tuple(arrays[:-1])] = arrays[-1].astype(
                    stmt.tensor.dtype.np_dtype
                )
            else:
                buf[tuple(int(i) for i in idx)] = _cast_scalar(
                    value, stmt.tensor.dtype
                )
        elif isinstance(stmt, IfThenElse):
            if self._eval(stmt.condition, frame):
                self._exec(stmt.then_case, frame)
            elif stmt.else_case is not None:
                self._exec(stmt.else_case, frame)
        elif isinstance(stmt, AttrStmt):
            self._exec(stmt.body, frame)
        elif isinstance(stmt, Allocate):
            frame.buffers[stmt.tensor] = np.zeros(
                stmt.tensor.shape, dtype=stmt.tensor.dtype.np_dtype
            )
            self._exec(stmt.body, frame)
        elif isinstance(stmt, Evaluate):
            self._eval(stmt.expr, frame)
        elif isinstance(stmt, IntrinsicCall):
            self._exec_intrinsic(stmt, frame)
        else:
            raise TypeError(f"cannot interpret statement {type(stmt).__name__}")

    def _exec_intrinsic(self, call: IntrinsicCall, frame: Frame) -> None:
        """Execute a tensorized-instruction call through its hardware model."""
        intrin = call.intrin
        axes = call.axes
        extents = [ax.extent for ax in axes]
        axis_vars = [ax.var for ax in axes]

        # Gather: fill each register operand lane by lane from program memory.
        operands: Dict[str, np.ndarray] = {}
        for binding in call.inputs:
            operands[binding.intrin_tensor.name] = np.zeros(
                binding.intrin_tensor.shape, dtype=binding.intrin_tensor.dtype.np_dtype
            )
        for point in itertools.product(*(range(e) for e in extents)):
            for var, value in zip(axis_vars, point):
                frame.env[var] = value
            for binding in call.inputs:
                reg = operands[binding.intrin_tensor.name]
                reg_idx = tuple(int(self._eval(i, frame)) for i in binding.intrin_indices)
                prog_idx = tuple(
                    int(self._eval(i, frame)) for i in binding.program_indices
                )
                reg[reg_idx] = self._get_buffer(frame, binding.program_tensor)[prog_idx]

        # Execute the instruction's hardware semantics on the registers.
        result = intrin.execute(operands)

        # Scatter: write the destination register back to program memory.
        out = call.output
        out_buf = self._get_buffer(frame, out.program_tensor)
        for point in itertools.product(*(range(e) for e in extents)):
            for var, value in zip(axis_vars, point):
                frame.env[var] = value
            reg_idx = tuple(int(self._eval(i, frame)) for i in out.intrin_indices)
            prog_idx = tuple(int(self._eval(i, frame)) for i in out.program_indices)
            out_buf[prog_idx] = _cast_scalar(result[reg_idx], out.program_tensor.dtype)
        for var in axis_vars:
            frame.env.pop(var, None)

    # -- expression evaluation ---------------------------------------------
    def _eval(self, expr: E.Expr, frame: Frame):
        if isinstance(expr, E.Const):
            return expr.value
        if isinstance(expr, E.Var):
            try:
                return frame.env[expr]
            except KeyError as exc:
                raise KeyError(f"unbound variable {expr.name!r}") from exc
        if isinstance(expr, E.Cast):
            value = self._eval(expr.value, frame)
            if isinstance(value, np.ndarray):
                return value.astype(expr.dtype.np_dtype)
            return _cast_scalar(value, expr.dtype)
        if isinstance(expr, E.TensorLoad):
            buf = self._get_buffer(frame, expr.tensor)
            idx = [self._eval(i, frame) for i in expr.indices]
            if any(isinstance(i, np.ndarray) for i in idx):
                # Vectorized gather: Ramp/Broadcast/Shuffle lane indices.
                return buf[tuple(np.broadcast_arrays(*(np.asarray(i) for i in idx)))]
            return buf[tuple(int(i) for i in idx)]
        if isinstance(expr, E.Add):
            return self._eval(expr.a, frame) + self._eval(expr.b, frame)
        if isinstance(expr, E.Sub):
            return self._eval(expr.a, frame) - self._eval(expr.b, frame)
        if isinstance(expr, E.Mul):
            return self._eval(expr.a, frame) * self._eval(expr.b, frame)
        if isinstance(expr, E.FloorDiv):
            return self._eval(expr.a, frame) // self._eval(expr.b, frame)
        if isinstance(expr, E.Mod):
            return self._eval(expr.a, frame) % self._eval(expr.b, frame)
        if isinstance(expr, E.Min):
            a, b = self._eval(expr.a, frame), self._eval(expr.b, frame)
            if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
                return np.minimum(a, b)
            return min(a, b)
        if isinstance(expr, E.Max):
            a, b = self._eval(expr.a, frame), self._eval(expr.b, frame)
            if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
                return np.maximum(a, b)
            return max(a, b)
        if isinstance(expr, E.Compare):
            a, b = self._eval(expr.a, frame), self._eval(expr.b, frame)
            return {
                "==": a == b,
                "!=": a != b,
                "<": a < b,
                "<=": a <= b,
                ">": a > b,
                ">=": a >= b,
            }[expr.op]
        if isinstance(expr, E.Select):
            cond = self._eval(expr.cond, frame)
            if isinstance(cond, np.ndarray):
                return np.where(
                    cond,
                    self._eval(expr.true_value, frame),
                    self._eval(expr.false_value, frame),
                )
            return (
                self._eval(expr.true_value, frame)
                if cond
                else self._eval(expr.false_value, frame)
            )
        if isinstance(expr, E.Reduce):
            return self._eval_reduce(expr, frame)
        if isinstance(expr, E.Ramp):
            base = self._eval(expr.base, frame)
            return np.asarray(base) + np.arange(expr.lanes, dtype=np.int64) * expr.stride
        if isinstance(expr, E.Broadcast):
            value = self._eval(expr.value, frame)
            if np.ndim(value) == 0:
                return np.full(expr.lanes, value)
            arr = np.asarray(value)
            return np.broadcast_to(arr[..., None], arr.shape + (expr.lanes,))
        if isinstance(expr, E.Shuffle):
            parts = [
                np.atleast_1d(np.asarray(self._eval(v, frame))) for v in expr.vectors
            ]
            return np.concatenate(parts, axis=-1)
        raise TypeError(f"cannot evaluate expression {type(expr).__name__}")

    def _eval_reduce(self, expr: E.Reduce, frame: Frame):
        values = []
        extents = [ax.extent for ax in expr.axes]
        axis_vars = [ax.var for ax in expr.axes]
        for point in itertools.product(*(range(e) for e in extents)):
            for var, value in zip(axis_vars, point):
                frame.env[var] = value
            values.append(self._eval(expr.source, frame))
        for var in axis_vars:
            frame.env.pop(var, None)
        if expr.combiner == "sum":
            return sum(values)
        if expr.combiner == "max":
            return max(values)
        return min(values)

    def _get_buffer(self, frame: Frame, tensor: Tensor) -> np.ndarray:
        try:
            return frame.buffers[tensor]
        except KeyError as exc:
            raise KeyError(f"no buffer bound for tensor {tensor.name!r}") from exc


def _cast_scalar(value, dtype: DType):
    """Cast a Python/numpy scalar to the exact dtype semantics."""
    return dtype.np_dtype.type(value)


def alloc_buffers(func: PrimFunc, rng: Optional[np.random.Generator] = None) -> Dict[Tensor, np.ndarray]:
    """Allocate random input buffers and a zeroed output buffer for ``func``.

    Integer inputs are drawn from a small range so mixed-precision
    accumulation never overflows int32 in tests.
    """
    rng = rng or np.random.default_rng(0)
    buffers: Dict[Tensor, np.ndarray] = {}
    for tensor in func.inputs:
        buffers[tensor] = random_array(tensor.shape, tensor.dtype, rng)
    buffers[func.output] = np.zeros(func.output.shape, dtype=func.output.dtype.np_dtype)
    return buffers


def random_array(shape: Sequence[int], dtype: DType, rng: np.random.Generator) -> np.ndarray:
    """A random array of the given DSL dtype, with well-behaved value ranges."""
    if dtype.is_integer:
        low = max(dtype.min_value, -8)
        high = min(dtype.max_value, 8)
        return rng.integers(low, high + 1, size=shape).astype(dtype.np_dtype)
    return rng.standard_normal(size=shape).astype(dtype.np_dtype)


def run(func: PrimFunc, buffers: Dict[Tensor, np.ndarray]) -> np.ndarray:
    """Convenience wrapper: interpret ``func`` over ``buffers``."""
    return Interpreter(func).run(buffers)
