"""A numpy-backed interpreter for tensor IR.

The interpreter is the correctness oracle of the whole repository: every
schedule transformation, every tensorize rewrite, and every intrinsic
replacement is validated by executing the resulting tensor IR and comparing
against a straightforward numpy reference.  Tensorized-instruction calls are
executed through the instruction's *hardware model* (its exact lane-by-lane
semantics), so a successful comparison demonstrates that UNIT produced operand
bindings that feed the instruction correctly — the property the paper's
Inspector is responsible for.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Sequence

import numpy as np

from ..dsl import expr as E
from ..dsl.dtype import DType
from ..dsl.tensor import Tensor
from .lower import PrimFunc
from .stmt import (
    Allocate,
    AttrStmt,
    Evaluate,
    For,
    IfThenElse,
    IntrinsicCall,
    SeqStmt,
    Stmt,
    Store,
)

__all__ = ["Interpreter", "run", "alloc_buffers"]


class Interpreter:
    """Execute a :class:`PrimFunc` over numpy buffers."""

    def __init__(self, func: PrimFunc) -> None:
        self.func = func

    # -- public API -------------------------------------------------------
    def run(self, buffers: Dict[Tensor, np.ndarray]) -> np.ndarray:
        """Execute the function.  ``buffers`` maps every parameter tensor to a
        numpy array of matching shape/dtype.  Returns the output buffer."""
        self._buffers: Dict[Tensor, np.ndarray] = {}
        for tensor in self.func.params:
            if tensor not in buffers:
                raise KeyError(f"missing buffer for parameter {tensor.name!r}")
            array = buffers[tensor]
            if tuple(array.shape) != tensor.shape:
                raise ValueError(
                    f"buffer for {tensor.name!r} has shape {array.shape}, "
                    f"expected {tensor.shape}"
                )
            self._buffers[tensor] = array
        self._env: Dict[E.Var, int] = {}
        self._exec(self.func.body)
        return self._buffers[self.func.output]

    # -- statement execution ----------------------------------------------
    def _exec(self, stmt: Stmt) -> None:
        if isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                self._exec(s)
        elif isinstance(stmt, For):
            var = stmt.var
            for i in range(stmt.extent):
                self._env[var] = i
                self._exec(stmt.body)
            self._env.pop(var, None)
        elif isinstance(stmt, Store):
            buf = self._get_buffer(stmt.tensor)
            idx = tuple(int(self._eval(i)) for i in stmt.indices)
            value = self._eval(stmt.value)
            buf[idx] = _cast_scalar(value, stmt.tensor.dtype)
        elif isinstance(stmt, IfThenElse):
            if self._eval(stmt.condition):
                self._exec(stmt.then_case)
            elif stmt.else_case is not None:
                self._exec(stmt.else_case)
        elif isinstance(stmt, AttrStmt):
            self._exec(stmt.body)
        elif isinstance(stmt, Allocate):
            self._buffers[stmt.tensor] = np.zeros(
                stmt.tensor.shape, dtype=stmt.tensor.dtype.np_dtype
            )
            self._exec(stmt.body)
        elif isinstance(stmt, Evaluate):
            self._eval(stmt.expr)
        elif isinstance(stmt, IntrinsicCall):
            self._exec_intrinsic(stmt)
        else:
            raise TypeError(f"cannot interpret statement {type(stmt).__name__}")

    def _exec_intrinsic(self, call: IntrinsicCall) -> None:
        """Execute a tensorized-instruction call through its hardware model."""
        intrin = call.intrin
        axes = call.axes
        extents = [ax.extent for ax in axes]
        axis_vars = [ax.var for ax in axes]

        # Gather: fill each register operand lane by lane from program memory.
        operands: Dict[str, np.ndarray] = {}
        for binding in call.inputs:
            operands[binding.intrin_tensor.name] = np.zeros(
                binding.intrin_tensor.shape, dtype=binding.intrin_tensor.dtype.np_dtype
            )
        for point in itertools.product(*(range(e) for e in extents)):
            for var, value in zip(axis_vars, point):
                self._env[var] = value
            for binding in call.inputs:
                reg = operands[binding.intrin_tensor.name]
                reg_idx = tuple(int(self._eval(i)) for i in binding.intrin_indices)
                prog_idx = tuple(int(self._eval(i)) for i in binding.program_indices)
                reg[reg_idx] = self._get_buffer(binding.program_tensor)[prog_idx]

        # Execute the instruction's hardware semantics on the registers.
        result = intrin.execute(operands)

        # Scatter: write the destination register back to program memory.
        out = call.output
        out_buf = self._get_buffer(out.program_tensor)
        for point in itertools.product(*(range(e) for e in extents)):
            for var, value in zip(axis_vars, point):
                self._env[var] = value
            reg_idx = tuple(int(self._eval(i)) for i in out.intrin_indices)
            prog_idx = tuple(int(self._eval(i)) for i in out.program_indices)
            out_buf[prog_idx] = _cast_scalar(result[reg_idx], out.program_tensor.dtype)
        for var in axis_vars:
            self._env.pop(var, None)

    # -- expression evaluation ---------------------------------------------
    def _eval(self, expr: E.Expr):
        if isinstance(expr, E.Const):
            return expr.value
        if isinstance(expr, E.Var):
            try:
                return self._env[expr]
            except KeyError as exc:
                raise KeyError(f"unbound variable {expr.name!r}") from exc
        if isinstance(expr, E.Cast):
            return _cast_scalar(self._eval(expr.value), expr.dtype)
        if isinstance(expr, E.TensorLoad):
            buf = self._get_buffer(expr.tensor)
            idx = tuple(int(self._eval(i)) for i in expr.indices)
            return buf[idx]
        if isinstance(expr, E.Add):
            return self._eval(expr.a) + self._eval(expr.b)
        if isinstance(expr, E.Sub):
            return self._eval(expr.a) - self._eval(expr.b)
        if isinstance(expr, E.Mul):
            return self._eval(expr.a) * self._eval(expr.b)
        if isinstance(expr, E.FloorDiv):
            return self._eval(expr.a) // self._eval(expr.b)
        if isinstance(expr, E.Mod):
            return self._eval(expr.a) % self._eval(expr.b)
        if isinstance(expr, E.Min):
            return min(self._eval(expr.a), self._eval(expr.b))
        if isinstance(expr, E.Max):
            return max(self._eval(expr.a), self._eval(expr.b))
        if isinstance(expr, E.Compare):
            a, b = self._eval(expr.a), self._eval(expr.b)
            return {
                "==": a == b,
                "!=": a != b,
                "<": a < b,
                "<=": a <= b,
                ">": a > b,
                ">=": a >= b,
            }[expr.op]
        if isinstance(expr, E.Select):
            return (
                self._eval(expr.true_value)
                if self._eval(expr.cond)
                else self._eval(expr.false_value)
            )
        if isinstance(expr, E.Reduce):
            return self._eval_reduce(expr)
        raise TypeError(f"cannot evaluate expression {type(expr).__name__}")

    def _eval_reduce(self, expr: E.Reduce):
        values = []
        extents = [ax.extent for ax in expr.axes]
        axis_vars = [ax.var for ax in expr.axes]
        for point in itertools.product(*(range(e) for e in extents)):
            for var, value in zip(axis_vars, point):
                self._env[var] = value
            values.append(self._eval(expr.source))
        for var in axis_vars:
            self._env.pop(var, None)
        if expr.combiner == "sum":
            return sum(values)
        if expr.combiner == "max":
            return max(values)
        return min(values)

    def _get_buffer(self, tensor: Tensor) -> np.ndarray:
        try:
            return self._buffers[tensor]
        except KeyError as exc:
            raise KeyError(f"no buffer bound for tensor {tensor.name!r}") from exc


def _cast_scalar(value, dtype: DType):
    """Cast a Python/numpy scalar to the exact dtype semantics."""
    return dtype.np_dtype.type(value)


def alloc_buffers(func: PrimFunc, rng: Optional[np.random.Generator] = None) -> Dict[Tensor, np.ndarray]:
    """Allocate random input buffers and a zeroed output buffer for ``func``.

    Integer inputs are drawn from a small range so mixed-precision
    accumulation never overflows int32 in tests.
    """
    rng = rng or np.random.default_rng(0)
    buffers: Dict[Tensor, np.ndarray] = {}
    for tensor in func.inputs:
        buffers[tensor] = random_array(tensor.shape, tensor.dtype, rng)
    buffers[func.output] = np.zeros(func.output.shape, dtype=func.output.dtype.np_dtype)
    return buffers


def random_array(shape: Sequence[int], dtype: DType, rng: np.random.Generator) -> np.ndarray:
    """A random array of the given DSL dtype, with well-behaved value ranges."""
    if dtype.is_integer:
        low = max(dtype.min_value, -8)
        high = min(dtype.max_value, 8)
        return rng.integers(low, high + 1, size=shape).astype(dtype.np_dtype)
    return rng.standard_normal(size=shape).astype(dtype.np_dtype)


def run(func: PrimFunc, buffers: Dict[Tensor, np.ndarray]) -> np.ndarray:
    """Convenience wrapper: interpret ``func`` over ``buffers``."""
    return Interpreter(func).run(buffers)
