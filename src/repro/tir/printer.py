"""Textual rendering of tensor-IR programs (C-like pseudo code).

The printed form matches the style of the paper's Figure 5(c)/7 listings:
``for`` / ``parallel for`` / ``unrolled for`` loops, pragma annotations, and
tensorized-instruction calls.
"""

from __future__ import annotations

from ..dsl.printer import expr_to_str
from .stmt import (
    Allocate,
    AttrStmt,
    Evaluate,
    For,
    ForKind,
    IfThenElse,
    IntrinsicCall,
    SeqStmt,
    Stmt,
    Store,
)

__all__ = ["stmt_to_str", "func_to_str"]

_KIND_PREFIX = {
    ForKind.SERIAL: "for",
    ForKind.PARALLEL: "parallel for",
    ForKind.UNROLL: "unrolled for",
    ForKind.VECTORIZE: "vectorized for",
    ForKind.TENSORIZE: "tensorized for",
    ForKind.THREAD_BINDING: "bound for",
}


def stmt_to_str(stmt: Stmt, indent: int = 0) -> str:
    """Render one statement subtree."""
    pad = "  " * indent
    if isinstance(stmt, For):
        prefix = _KIND_PREFIX[stmt.kind]
        tag = f" /* {stmt.thread_tag} */" if stmt.thread_tag else ""
        pragma = ""
        if stmt.pragmas:
            keys = ", ".join(f"{k}={v}" for k, v in sorted(stmt.pragmas.items()))
            pragma = f"{pad}#pragma {keys}\n"
        header = f"{pad}{prefix} ({stmt.var.name} = 0; {stmt.var.name} < {stmt.extent}; ++{stmt.var.name}){tag} {{\n"
        body = stmt_to_str(stmt.body, indent + 1)
        return f"{pragma}{header}{body}\n{pad}}}"
    if isinstance(stmt, Store):
        idx = ", ".join(expr_to_str(i) for i in stmt.indices)
        return f"{pad}{stmt.tensor.name}[{idx}] = {expr_to_str(stmt.value)};"
    if isinstance(stmt, SeqStmt):
        return "\n".join(stmt_to_str(s, indent) for s in stmt.stmts)
    if isinstance(stmt, IfThenElse):
        cond = expr_to_str(stmt.condition)
        like = "likely" if stmt.likely else "if"
        out = f"{pad}{like} ({cond}) {{\n{stmt_to_str(stmt.then_case, indent + 1)}\n{pad}}}"
        if stmt.else_case is not None:
            out += f" else {{\n{stmt_to_str(stmt.else_case, indent + 1)}\n{pad}}}"
        return out
    if isinstance(stmt, AttrStmt):
        return f"{pad}// attr [{stmt.key}] = {stmt.value}\n" + stmt_to_str(stmt.body, indent)
    if isinstance(stmt, Allocate):
        shape = "x".join(str(s) for s in stmt.tensor.shape)
        head = (
            f"{pad}allocate {stmt.tensor.name}[{shape}] "
            f"({stmt.tensor.dtype.name}, scope={stmt.scope});"
        )
        return head + "\n" + stmt_to_str(stmt.body, indent)
    if isinstance(stmt, Evaluate):
        return f"{pad}{expr_to_str(stmt.expr)};"
    if isinstance(stmt, IntrinsicCall):
        dst = stmt.output
        dst_idx = ", ".join(expr_to_str(i) for i in dst.program_indices)
        srcs = []
        for binding in stmt.inputs:
            idx = ", ".join(expr_to_str(i) for i in binding.program_indices)
            srcs.append(f"{binding.program_tensor.name}[{idx}]")
        return (
            f"{pad}{dst.program_tensor.name}[{dst_idx}] = "
            f"{stmt.intrin.name}({', '.join(srcs)});"
        )
    return f"{pad}{stmt!s}"


def func_to_str(func) -> str:
    """Render a PrimFunc with its signature."""
    params = ", ".join(
        f"{t.dtype.name} {t.name}[{'x'.join(str(s) for s in t.shape)}]" for t in func.params
    )
    return f"func {func.name}({params}) {{\n{stmt_to_str(func.body, 1)}\n}}"
