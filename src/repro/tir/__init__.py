"""``repro.tir`` — the imperative tensor IR.

Lowering (:func:`lower`) turns a ComputeOp plus a schedule into a
:class:`PrimFunc` whose body is a canonical loop nest.  The interpreter
executes PrimFuncs over numpy buffers (the correctness oracle), the verifier
checks structural invariants, and the printer renders C-like listings.
"""

from .lower import PrimFunc, decompose_reduction, lower
from .interpreter import Interpreter, alloc_buffers, random_array, run
from .printer import func_to_str, stmt_to_str
from .stmt import (
    Allocate,
    AttrStmt,
    Evaluate,
    For,
    ForKind,
    IfThenElse,
    IntrinsicCall,
    OperandBinding,
    SeqStmt,
    Stmt,
    Store,
    seq,
)
from .verify import VerificationError, verify
from .visitor import StmtMutator, StmtVisitor, collect, count_nodes, walk

__all__ = [
    "PrimFunc",
    "lower",
    "decompose_reduction",
    "Interpreter",
    "run",
    "alloc_buffers",
    "random_array",
    "func_to_str",
    "stmt_to_str",
    "ForKind",
    "Stmt",
    "For",
    "Store",
    "SeqStmt",
    "IfThenElse",
    "AttrStmt",
    "Allocate",
    "Evaluate",
    "OperandBinding",
    "IntrinsicCall",
    "seq",
    "VerificationError",
    "verify",
    "StmtVisitor",
    "StmtMutator",
    "walk",
    "collect",
    "count_nodes",
]
