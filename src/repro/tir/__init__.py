"""``repro.tir`` — the imperative tensor IR.

Lowering (:func:`lower`) turns a ComputeOp plus a schedule into a
:class:`PrimFunc` whose body is a canonical loop nest.  Execution goes
through one front door — :class:`Executor`, which selects a tier from the
:mod:`~repro.tir.backend` registry (``interpreter`` / ``vectorized`` /
``native``) and applies a :class:`ValidationPolicy`.  The scalar
:class:`Interpreter` remains the reference semantics every tier is tested
against; the legacy :func:`execute` / :func:`vector_run` entrypoints survive
as deprecation shims.  The verifier checks structural invariants, and the
printer renders C-like listings.
"""

from .lower import PrimFunc, decompose_reduction, lower
from .engine import (
    EngineStats,
    ExecutablePlan,
    PlanStats,
    Unvectorizable,
    VectorizedEngine,
    compile_plan,
    execute,
    vector_run,
)
from .backend import (
    ExecutionBackend,
    NativeKernel,
    NativeUnavailable,
    TierState,
    available_backends,
    compile_native,
    get_backend,
    native_eligibility_reason,
    native_toolchain,
    register_backend,
    tier_state,
)
from .executor import (
    Executor,
    ValidationError,
    ValidationPolicy,
    reset_deprecation_warnings,
)
from .sandbox import SandboxVerdict, sandbox_enabled
from .interpreter import Frame, Interpreter, alloc_buffers, random_array, run
from .plan import (
    PlanCache,
    PlanCacheStats,
    cached_execute,
    func_signature,
    func_structural_equal,
    func_structural_hash,
    plan_cache,
)
from .printer import func_to_str, stmt_to_str
from .stmt import (
    Allocate,
    AttrStmt,
    Evaluate,
    For,
    ForKind,
    IfThenElse,
    IntrinsicCall,
    OperandBinding,
    SeqStmt,
    Stmt,
    Store,
    seq,
)
from .verify import VerificationError, verify
from .visitor import StmtMutator, StmtVisitor, collect, count_nodes, walk

__all__ = [
    "PrimFunc",
    "lower",
    "decompose_reduction",
    "Interpreter",
    "run",
    "alloc_buffers",
    "random_array",
    "VectorizedEngine",
    "EngineStats",
    "Unvectorizable",
    "execute",
    "vector_run",
    "Executor",
    "ValidationPolicy",
    "ValidationError",
    "reset_deprecation_warnings",
    "ExecutionBackend",
    "NativeKernel",
    "NativeUnavailable",
    "TierState",
    "available_backends",
    "compile_native",
    "get_backend",
    "native_eligibility_reason",
    "native_toolchain",
    "register_backend",
    "tier_state",
    "SandboxVerdict",
    "sandbox_enabled",
    "ExecutablePlan",
    "PlanStats",
    "compile_plan",
    "PlanCache",
    "PlanCacheStats",
    "plan_cache",
    "cached_execute",
    "func_signature",
    "func_structural_hash",
    "func_structural_equal",
    "Frame",
    "func_to_str",
    "stmt_to_str",
    "ForKind",
    "Stmt",
    "For",
    "Store",
    "SeqStmt",
    "IfThenElse",
    "AttrStmt",
    "Allocate",
    "Evaluate",
    "OperandBinding",
    "IntrinsicCall",
    "seq",
    "VerificationError",
    "verify",
    "StmtVisitor",
    "StmtMutator",
    "walk",
    "collect",
    "count_nodes",
]
