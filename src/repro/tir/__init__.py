"""``repro.tir`` — the imperative tensor IR.

Lowering (:func:`lower`) turns a ComputeOp plus a schedule into a
:class:`PrimFunc` whose body is a canonical loop nest.  Two execution paths
share one contract: the vectorized engine (:func:`execute`, the default
correctness oracle — batched numpy operations with automatic scalar
fallback) and the scalar :class:`Interpreter` (the reference the engine is
tested against).  The verifier checks structural invariants, and the printer
renders C-like listings.
"""

from .lower import PrimFunc, decompose_reduction, lower
from .engine import (
    EngineStats,
    ExecutablePlan,
    PlanStats,
    Unvectorizable,
    VectorizedEngine,
    compile_plan,
    execute,
    vector_run,
)
from .interpreter import Frame, Interpreter, alloc_buffers, random_array, run
from .plan import (
    PlanCache,
    PlanCacheStats,
    cached_execute,
    func_signature,
    func_structural_equal,
    func_structural_hash,
    plan_cache,
)
from .printer import func_to_str, stmt_to_str
from .stmt import (
    Allocate,
    AttrStmt,
    Evaluate,
    For,
    ForKind,
    IfThenElse,
    IntrinsicCall,
    OperandBinding,
    SeqStmt,
    Stmt,
    Store,
    seq,
)
from .verify import VerificationError, verify
from .visitor import StmtMutator, StmtVisitor, collect, count_nodes, walk

__all__ = [
    "PrimFunc",
    "lower",
    "decompose_reduction",
    "Interpreter",
    "run",
    "alloc_buffers",
    "random_array",
    "VectorizedEngine",
    "EngineStats",
    "Unvectorizable",
    "execute",
    "vector_run",
    "ExecutablePlan",
    "PlanStats",
    "compile_plan",
    "PlanCache",
    "PlanCacheStats",
    "plan_cache",
    "cached_execute",
    "func_signature",
    "func_structural_hash",
    "func_structural_equal",
    "Frame",
    "func_to_str",
    "stmt_to_str",
    "ForKind",
    "Stmt",
    "For",
    "Store",
    "SeqStmt",
    "IfThenElse",
    "AttrStmt",
    "Allocate",
    "Evaluate",
    "OperandBinding",
    "IntrinsicCall",
    "seq",
    "VerificationError",
    "verify",
    "StmtVisitor",
    "StmtMutator",
    "walk",
    "collect",
    "count_nodes",
]
