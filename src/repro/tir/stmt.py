"""Tensor IR statement nodes.

The tensor IR is an imperative loop program with two constraints inherited
from the paper (Section II-C.3): all loops are canonical (start at 0, step 1)
and all buffers are restrict (an element is only accessible through one
tensor).  It is produced by lowering a ComputeOp + Schedule and consumed by
the tensorize replacement pass, the interpreter, the codegen, and the cost
models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from ..dsl.expr import Expr, Var, as_expr
from ..dsl.tensor import Tensor

__all__ = [
    "ForKind",
    "Stmt",
    "For",
    "Store",
    "SeqStmt",
    "IfThenElse",
    "AttrStmt",
    "Allocate",
    "Evaluate",
    "OperandBinding",
    "IntrinsicCall",
    "seq",
]


class ForKind(Enum):
    """How a loop is executed by the target."""

    SERIAL = "serial"
    PARALLEL = "parallel"
    UNROLL = "unroll"
    VECTORIZE = "vectorize"
    TENSORIZE = "tensorize"
    THREAD_BINDING = "thread_binding"


class Stmt:
    """Base class of all tensor-IR statements."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .printer import stmt_to_str

        return stmt_to_str(self)


class For(Stmt):
    """A canonical loop: ``for var in range(extent): body``."""

    def __init__(
        self,
        var: Var,
        extent: int,
        body: Stmt,
        kind: ForKind = ForKind.SERIAL,
        thread_tag: Optional[str] = None,
        pragmas: Optional[Dict[str, object]] = None,
    ) -> None:
        self.var = var
        self.extent = int(extent)
        self.body = body
        self.kind = kind
        self.thread_tag = thread_tag
        self.pragmas = dict(pragmas or {})
        if self.extent <= 0:
            raise ValueError(f"loop extent must be positive, got {extent}")
        if kind == ForKind.THREAD_BINDING and not thread_tag:
            raise ValueError("thread-bound loop requires a thread tag")


class Store(Stmt):
    """``tensor[indices] = value``."""

    def __init__(self, tensor: Tensor, indices: Sequence, value: Expr) -> None:
        self.tensor = tensor
        self.indices = tuple(as_expr(i) for i in indices)
        self.value = value
        if len(self.indices) != tensor.ndim:
            raise ValueError(
                f"store into {tensor.name!r}: expected {tensor.ndim} indices, "
                f"got {len(self.indices)}"
            )


class SeqStmt(Stmt):
    """A sequence of statements executed in order."""

    def __init__(self, stmts: Sequence[Stmt]) -> None:
        flat: List[Stmt] = []
        for s in stmts:
            if isinstance(s, SeqStmt):
                flat.extend(s.stmts)
            elif s is not None:
                flat.append(s)
        self.stmts = tuple(flat)


class IfThenElse(Stmt):
    """A conditional; ``likely`` marks residue guards from imperfect splits."""

    def __init__(
        self,
        condition: Expr,
        then_case: Stmt,
        else_case: Optional[Stmt] = None,
        likely: bool = False,
    ) -> None:
        self.condition = condition
        self.then_case = then_case
        self.else_case = else_case
        self.likely = bool(likely)


class AttrStmt(Stmt):
    """An attribute/pragma scope wrapping a statement.

    The Rewriter uses ``AttrStmt("pragma_tensorize", <intrinsic name>, body)``
    to mark the loop nest that must be replaced by the tensorized instruction.
    """

    def __init__(self, key: str, value, body: Stmt) -> None:
        self.key = key
        self.value = value
        self.body = body


class Allocate(Stmt):
    """Allocation of a temporary buffer visible inside ``body``."""

    def __init__(self, tensor: Tensor, body: Stmt, scope: str = "global") -> None:
        self.tensor = tensor
        self.body = body
        self.scope = scope


class Evaluate(Stmt):
    """Evaluate an expression for its side effect (an intrinsic call)."""

    def __init__(self, expr: Expr) -> None:
        self.expr = expr


@dataclass
class OperandBinding:
    """Correspondence between one intrinsic operand and the program's buffer.

    ``intrin_indices`` index the intrinsic's register-tensor as written in its
    DSL description (over the intrinsic's own loop variables);
    ``program_indices`` index the real program buffer (over the intrinsic loop
    variables *and* the enclosing program loop variables).  Together they say,
    lane by lane, which memory address feeds which register lane — this is the
    operand-generation rule of Section III-C.2.
    """

    intrin_tensor: Tensor
    intrin_indices: Tuple[Expr, ...]
    program_tensor: Tensor
    program_indices: Tuple[Expr, ...]


class IntrinsicCall(Stmt):
    """A call to a tensorized instruction, after the replacement pass.

    Attributes
    ----------
    intrin:
        The :class:`repro.isa.TensorIntrinsic` being invoked.
    inputs:
        Operand bindings for the intrinsic's source registers.
    output:
        Operand binding for the destination register.
    axes:
        The intrinsic's own iteration axes (from its DSL description); the
        binding index expressions are written over these axes' variables.
    reads_output:
        Whether the destination also acts as an accumulator source (always
        true for the mixed-precision dot-product instructions).
    """

    def __init__(
        self,
        intrin,
        inputs: Sequence[OperandBinding],
        output: OperandBinding,
        axes: Sequence,
        reads_output: bool = True,
    ) -> None:
        self.intrin = intrin
        self.inputs = list(inputs)
        self.output = output
        self.axes = list(axes)
        self.reads_output = reads_output


def seq(*stmts: Stmt) -> Stmt:
    """Build a sequence, collapsing singletons."""
    items = [s for s in stmts if s is not None]
    if len(items) == 1:
        return items[0]
    return SeqStmt(items)
