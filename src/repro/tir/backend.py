"""Tiered execution backends: interpreter → vectorized → native.

The paper hands rewritten tensor IR to LLVM (Section II-C.4); this module is
that step for the reproduction.  Three :class:`ExecutionBackend`\\ s share one
interface:

* ``interpreter`` — the scalar reference semantics (:mod:`.interpreter`);
* ``vectorized`` — batched numpy execution through a cached
  :class:`~repro.tir.engine.ExecutablePlan`;
* ``native`` — the vectorized tier plus *tiered promotion*: once a plan has
  run warm ``promote_after`` times, its function is lowered through
  :mod:`repro.codegen.lowlevel` to real machine code (numba ``@njit`` when
  importable, else C compiled by the host toolchain and loaded through
  ctypes) and subsequent runs dispatch to the compiled kernel.

Promotion is conservative by construction:

* only plans whose every nest the static verifier proved (``proved_nests ==
  vector_nests``, no fallback steps — the PR 6 analysis tier) are eligible,
  and the function must pass :func:`~repro.codegen.lowlevel.native_support_reason`;
* at promotion time the fresh kernel is spot-checked for **bit identity**
  against the vectorized result that was just computed on the caller's real
  buffers — a mismatch demotes instead of promoting;
* any compile or runtime failure demotes the plan permanently (per plan);
  demoted plans keep running vectorized, so the native tier can never change
  results or raise where the vectorized tier would not.

Promotion state lives on the plan object itself (via :func:`tier_state`), so
it is keyed off the process-wide :class:`~repro.tir.plan.PlanCache` exactly
like the plan: every caller that hits the same cached plan shares one warm-run
count and one compiled kernel.
"""

from __future__ import annotations

import atexit
import ctypes
import os
import shutil
import subprocess
import tempfile
import threading
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dsl.tensor import Tensor
from ..telemetry import metrics as _metrics, trace as _trace
from ..testing import faults

if TYPE_CHECKING:  # runtime import is lazy (see _lowlevel) to avoid a cycle
    from ..codegen.lowlevel import NativeSource
from .engine import EngineStats, ExecutablePlan
from .interpreter import Interpreter
from .lower import PrimFunc


def _lowlevel():
    # Imported lazily: ``repro.codegen.lowlevel`` itself imports ``repro.tir``
    # (for the stmt/expr node types), so a module-level import here would be
    # circular whenever ``repro.codegen`` loads first.
    from ..codegen import lowlevel

    return lowlevel

__all__ = [
    "ExecutionBackend",
    "InterpreterBackend",
    "VectorizedBackend",
    "NativeBackend",
    "NativeUnavailable",
    "NativeKernel",
    "TierState",
    "available_backends",
    "compile_native",
    "default_promote_after",
    "get_backend",
    "native_eligibility_reason",
    "native_toolchain",
    "register_backend",
    "set_default_promote_after",
    "tier_state",
]


# ---------------------------------------------------------------------------
# Toolchain discovery
# ---------------------------------------------------------------------------


class NativeUnavailable(RuntimeError):
    """No native toolchain (numba or a C compiler) is installed."""


_TOOLCHAIN_LOCK = threading.Lock()
_TOOLCHAIN: Optional[Tuple[Optional[str], object]] = None


def _discover_toolchain() -> Tuple[Optional[str], object]:
    if os.environ.get("REPRO_DISABLE_NATIVE"):
        return None, "native tier disabled via REPRO_DISABLE_NATIVE"
    try:
        import numba  # type: ignore

        return "numba", numba
    except Exception:  # pragma: no cover - depends on environment
        pass
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return "cc", path
    return None, "neither numba nor a C compiler (cc/gcc/clang) is available"


def native_toolchain(refresh: bool = False) -> Tuple[Optional[str], object]:
    """The available native toolchain.

    Returns ``("numba", <module>)``, ``("cc", <compiler path>)``, or
    ``(None, <reason string>)``.  Cached after the first probe; pass
    ``refresh=True`` to re-probe (tests monkeypatching the environment).
    """
    global _TOOLCHAIN
    with _TOOLCHAIN_LOCK:
        if _TOOLCHAIN is None or refresh:
            _TOOLCHAIN = _discover_toolchain()
        return _TOOLCHAIN


# ---------------------------------------------------------------------------
# Kernel compilation
# ---------------------------------------------------------------------------

_BUILD_DIR: Optional[str] = None
_CC_FLAGS = ["-O3", "-fwrapv", "-ffp-contract=off", "-fPIC", "-shared"]
_SO_SERIAL = 0


def _build_dir() -> str:
    global _BUILD_DIR
    if _BUILD_DIR is None:
        _BUILD_DIR = tempfile.mkdtemp(prefix="repro_native_")
        atexit.register(shutil.rmtree, _BUILD_DIR, ignore_errors=True)
    return _BUILD_DIR


class NativeKernel:
    """A compiled kernel for one PrimFunc.

    ``params`` is the buffer order of the entry point (``func.params``).
    Call :meth:`run` with arrays aligned to that order; the output array is
    mutated in place, exactly like ``Interpreter.run``.
    """

    def __init__(self, source: NativeSource, toolchain: str, entry: Callable) -> None:
        self.source = source
        self.toolchain = toolchain
        self._entry = entry
        self.params: Tuple[Tensor, ...] = tuple(source.params)

    def run(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        if len(arrays) != len(self.params):
            raise ValueError(
                f"kernel {self.source.func_name!r} takes {len(self.params)} buffers, "
                f"got {len(arrays)}"
            )
        prepared: List[np.ndarray] = []
        writeback: List[Tuple[int, np.ndarray]] = []
        for pos, (tensor, array) in enumerate(zip(self.params, arrays)):
            if tuple(array.shape) != tensor.shape:
                raise ValueError(
                    f"buffer {tensor.name!r}: expected shape {tensor.shape}, "
                    f"got {tuple(array.shape)}"
                )
            if array.dtype != tensor.dtype.np_dtype:
                raise ValueError(
                    f"buffer {tensor.name!r}: expected dtype {tensor.dtype.name}, "
                    f"got {array.dtype}"
                )
            if not array.flags["C_CONTIGUOUS"]:
                contiguous = np.ascontiguousarray(array)
                prepared.append(contiguous)
                writeback.append((pos, contiguous))
            else:
                prepared.append(array)
        if self.toolchain == "cc":
            self._entry(*[a.ctypes.data_as(ctypes.c_void_p) for a in prepared])
        else:
            self._entry(*prepared)
        for pos, contiguous in writeback:
            arrays[pos][...] = contiguous
        return arrays[-1]


_DEFAULT_COMPILE_TIMEOUT_S = 120.0


def _compile_timeout_s() -> float:
    """Wall-clock budget for one C-compiler invocation.

    A wedged ``cc`` (NFS stall, broken ccache, runaway optimizer) used to
    block promotion — and the promoting run — forever; now it raises
    ``LoweringError`` and the plan demotes like any other compile failure.
    """
    raw = os.environ.get("REPRO_NATIVE_COMPILE_TIMEOUT")
    if raw is not None:
        try:
            value = float(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return _DEFAULT_COMPILE_TIMEOUT_S


def _compile_c(source: NativeSource, compiler: str) -> NativeKernel:
    global _SO_SERIAL
    _SO_SERIAL += 1
    directory = _build_dir()
    stem = os.path.join(directory, f"{source.func_name}_{_SO_SERIAL}")
    c_path, so_path = stem + ".c", stem + ".so"
    with open(c_path, "w") as handle:
        handle.write(source.source)
    try:
        proc = subprocess.run(
            [compiler, *_CC_FLAGS, "-o", so_path, c_path],
            capture_output=True,
            text=True,
            timeout=_compile_timeout_s(),
        )
    except subprocess.TimeoutExpired as exc:
        raise _lowlevel().LoweringError(
            f"C compilation of {source.func_name!r} timed out after "
            f"{exc.timeout:g}s"
        ) from None
    if proc.returncode != 0:
        raise _lowlevel().LoweringError(
            f"C compilation of {source.func_name!r} failed:\n{proc.stderr.strip()}"
        )
    library = ctypes.CDLL(so_path)
    entry = getattr(library, source.entry)
    entry.restype = None
    kernel = NativeKernel(source, "cc", entry)
    kernel._library = library  # keep the handle alive with the kernel
    return kernel


def _compile_numba(source: NativeSource, numba_module) -> NativeKernel:
    namespace: Dict[str, object] = {}
    exec(compile(source.source, f"<native:{source.func_name}>", "exec"), namespace)
    python_fn = namespace[source.entry]
    jitted = numba_module.njit(cache=False)(python_fn)
    return NativeKernel(source, "numba", jitted)


def compile_native(func: PrimFunc) -> NativeKernel:
    """Lower ``func`` to a compiled kernel with the best available toolchain.

    Raises :class:`NativeUnavailable` when no toolchain exists and
    :class:`~repro.codegen.lowlevel.LoweringError` when ``func`` cannot be
    lowered or compilation fails.
    """
    kind, payload = native_toolchain()
    if kind is None:
        raise NativeUnavailable(str(payload))
    faults.fire("backend.compile", func_name=func.name, where="host")
    lowlevel = _lowlevel()
    if kind == "numba":
        return _compile_numba(lowlevel.generate_numba_source(func), payload)
    return _compile_c(lowlevel.generate_c(func), str(payload))


# ---------------------------------------------------------------------------
# Tier state and promotion
# ---------------------------------------------------------------------------

_DEFAULT_PROMOTE_AFTER = 3


def default_promote_after() -> int:
    """Warm runs before a plan is considered for native promotion."""
    env = os.environ.get("REPRO_NATIVE_PROMOTE_AFTER")
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring invalid REPRO_NATIVE_PROMOTE_AFTER={env!r} "
                f"(not an integer); using the default of "
                f"{_DEFAULT_PROMOTE_AFTER}",
                RuntimeWarning,
                stacklevel=2,
            )
    return _DEFAULT_PROMOTE_AFTER


def set_default_promote_after(value: int) -> None:
    global _DEFAULT_PROMOTE_AFTER
    if value < 1:
        raise ValueError("promote_after must be >= 1")
    _DEFAULT_PROMOTE_AFTER = int(value)


@dataclass
class TierState:
    """Per-plan promotion state (shared by every caller of a cached plan).

    ``sandbox_outcome`` records what the qualification sandbox concluded for
    this plan's candidate kernel (``"qualified"``, ``"segfault"``, ``"oom"``,
    ``"hang"``, ``"mismatch"``, ... — see
    :class:`repro.tir.sandbox.SandboxVerdict`), or ``None`` when the sandbox
    has not run (not yet promoted, disabled, or no toolchain).
    """

    tier: str = "vectorized"
    warm_runs: int = 0
    kernel: Optional[NativeKernel] = None
    demoted: bool = False
    demotion_reason: str = ""
    sandbox_outcome: Optional[str] = None
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)


def tier_state(plan: ExecutablePlan) -> TierState:
    """The promotion state attached to ``plan`` (created on first use)."""
    state = getattr(plan, "_tier_state", None)
    if state is None:
        state = TierState()
        plan._tier_state = state
    return state


def native_eligibility_reason(plan: ExecutablePlan) -> Optional[str]:
    """Why ``plan`` can never promote to native, or None if it may.

    Eligibility requires the static verification tier (PR 6) to have proved
    every nest — the same proofs that elide runtime guards now license
    codegen — plus a plan with no interpreter-fallback steps and a function
    the native emitters accept.
    """
    if plan.stats.fallback_nests > 0:
        return f"plan has {plan.stats.fallback_nests} interpreter-fallback nest(s)"
    if plan.stats.vector_nests == 0:
        return "plan has no vectorized nests to compile"
    if plan.stats.proved_nests < plan.stats.vector_nests:
        return (
            f"static verifier proved {plan.stats.proved_nests}/"
            f"{plan.stats.vector_nests} nests; native promotion requires all"
        )
    return _lowlevel().native_support_reason(plan.func)


def _demote(plan: ExecutablePlan, reason: str, stats: Optional[EngineStats]) -> None:
    state = tier_state(plan)
    state.tier = "vectorized"
    state.kernel = None
    state.demoted = True
    state.demotion_reason = reason
    if stats is not None:
        stats.native_demotions += 1
    _metrics.count("tir.native_demotions")


def _kernel_arrays(
    plan: ExecutablePlan, func: PrimFunc, buffers: Dict[Tensor, np.ndarray]
) -> List[np.ndarray]:
    """Order the caller's buffers to the plan function's parameter order.

    Mirrors ``ExecutablePlan.run``'s positional rebinding for plans served
    from the cache for a structurally identical function.
    """
    arrays = []
    for mine, theirs in zip(plan.func.params, func.params):
        if theirs not in buffers:
            raise KeyError(f"missing buffer for parameter {theirs.name!r}")
        arrays.append(buffers[theirs])
    return arrays


def _try_promote(
    plan: ExecutablePlan,
    func: PrimFunc,
    inputs_before: List[np.ndarray],
    output_before: np.ndarray,
    expected: np.ndarray,
    stats: Optional[EngineStats],
) -> None:
    """Compile a kernel and spot-check it for bit identity before promoting.

    ``inputs_before``/``output_before`` are the buffer values the vectorized
    run consumed; ``expected`` is the result it produced.  Running the fresh
    kernel over copies of the same inputs must reproduce ``expected`` bit for
    bit, else the plan demotes.

    When a toolchain exists and the sandbox is enabled, the candidate is
    first compiled and bit-checked in a disposable subprocess
    (:func:`repro.tir.sandbox.qualify`): a kernel that segfaults, OOMs, or
    hangs kills only that child, and the classified verdict becomes the
    demotion reason.  Only a ``qualified`` candidate is compiled and
    ``CDLL``-loaded in the host process.
    """
    from . import sandbox

    state = tier_state(plan)
    toolchain_kind, _ = native_toolchain()
    with _trace.span("tir.native_promote", func=plan.func.name) as promote_span:
        if toolchain_kind is not None and sandbox.sandbox_enabled():
            check = [np.array(a, copy=True) for a in inputs_before]
            check.append(np.array(output_before, copy=True))
            with _trace.span("tir.sandbox_qualify", func=plan.func.name) as sq:
                verdict = sandbox.qualify(plan.func, check, expected)
                sq.set(outcome=verdict.outcome)
            state.sandbox_outcome = verdict.outcome
            if stats is not None:
                stats.sandbox_qualifications += 1
            plan.stats.sandbox_qualifications += 1
            _metrics.count("tir.sandbox_qualifications")
            if not verdict.ok:
                if stats is not None:
                    stats.sandbox_rejections += 1
                plan.stats.sandbox_rejections += 1
                _metrics.count("tir.sandbox_rejections")
                promote_span.set(outcome="sandbox_rejected")
                _demote(
                    plan,
                    f"sandbox rejected native kernel ({verdict.describe()})",
                    stats,
                )
                return
        try:
            with _trace.span("tir.native_compile", func=plan.func.name):
                kernel = compile_native(plan.func)
        except Exception as exc:  # NativeUnavailable, LoweringError, injected
            promote_span.set(outcome="compile_failed")
            _demote(plan, f"native compile failed: {exc}", stats)
            return
        check = [np.array(a, copy=True) for a in inputs_before]
        check.append(np.array(output_before, copy=True))
        try:
            got = kernel.run(check)
        except Exception as exc:  # demote on *any* kernel failure
            promote_span.set(outcome="spot_check_raised")
            _demote(plan, f"native kernel raised during spot-check: {exc}", stats)
            return
        if not np.array_equal(got, expected):
            promote_span.set(outcome="not_bit_identical")
            _demote(
                plan,
                "native kernel is not bit-identical to the vectorized tier",
                stats,
            )
            return
        state.kernel = kernel
        state.tier = "native"
        promote_span.set(outcome="promoted")
    if stats is not None:
        stats.native_promotions += 1
    plan.stats.native_promotions += 1
    _metrics.count("tir.native_promotions")


def run_tiered(
    plan: ExecutablePlan,
    buffers: Dict[Tensor, np.ndarray],
    stats: Optional[EngineStats] = None,
    func: Optional[PrimFunc] = None,
    promote_after: Optional[int] = None,
) -> np.ndarray:
    """Execute ``plan`` under the tiered native policy.

    Runs natively when the plan is promoted; otherwise runs vectorized,
    counts the warm run, and attempts promotion once the plan is warm and
    eligible.  Any native failure demotes the plan and falls back to the
    vectorized result, so this never errors where the vectorized tier would
    not.
    """
    func = func or plan.func
    state = tier_state(plan)
    threshold = promote_after if promote_after is not None else default_promote_after()

    if state.tier == "native" and state.kernel is not None:
        arrays = _kernel_arrays(plan, func, buffers)
        try:
            with state.lock:
                result = state.kernel.run(arrays)
        except Exception as exc:
            _demote(plan, f"native kernel raised: {exc}", stats)
        else:
            if stats is not None:
                stats.native_runs += 1
            plan.stats.native_runs += 1
            _metrics.count("tir.native_runs")
            return result

    if state.demoted or state.tier != "vectorized" or state.warm_runs + 1 < threshold:
        result = plan.run(buffers, stats=stats, func=func)
        with state.lock:
            if not state.demoted:
                state.warm_runs += 1
        return result

    # This warm run crosses the threshold: keep the pre-run buffer values so
    # the freshly compiled kernel can be spot-checked on the same inputs.
    arrays = _kernel_arrays(plan, func, buffers)
    inputs_before = [np.array(a, copy=True) for a in arrays[:-1]]
    output_before = np.array(arrays[-1], copy=True)
    result = plan.run(buffers, stats=stats, func=func)
    with state.lock:
        state.warm_runs += 1
        should_promote = (
            not state.demoted
            and state.tier == "vectorized"
            and state.warm_runs >= threshold
        )
        if should_promote:
            reason = native_eligibility_reason(plan)
            if reason is not None:
                _demote(plan, reason, stats)
            else:
                _try_promote(plan, func, inputs_before, output_before, result, stats)
    return result


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------


class ExecutionBackend:
    """One way to execute a PrimFunc over numpy buffers."""

    name: str = "abstract"

    def run(
        self,
        func: PrimFunc,
        buffers: Dict[Tensor, np.ndarray],
        stats: Optional[EngineStats] = None,
        strict: bool = False,
        promote_after: Optional[int] = None,
    ) -> np.ndarray:
        raise NotImplementedError


class InterpreterBackend(ExecutionBackend):
    """The scalar reference interpreter — the semantics oracle."""

    name = "interpreter"

    def run(self, func, buffers, stats=None, strict=False, promote_after=None):
        return Interpreter(func).run(buffers)


class VectorizedBackend(ExecutionBackend):
    """Batched numpy execution through the cached ExecutablePlan."""

    name = "vectorized"

    def _plan(self, func: PrimFunc, strict: bool) -> ExecutablePlan:
        from .engine import compile_plan
        from .plan import plan_cache

        if strict:
            return compile_plan(func, strict=True)
        return plan_cache().get_or_compile(func)

    def run(self, func, buffers, stats=None, strict=False, promote_after=None):
        return self._plan(func, strict).run(buffers, stats=stats, func=func)


class NativeBackend(VectorizedBackend):
    """The vectorized tier plus tiered promotion to compiled kernels."""

    name = "native"

    def run(self, func, buffers, stats=None, strict=False, promote_after=None):
        plan = self._plan(func, strict)
        return run_tiered(
            plan, buffers, stats=stats, func=func, promote_after=promote_after
        )


_BACKENDS: Dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend) -> None:
    _BACKENDS[backend.name] = backend


def get_backend(name: str) -> ExecutionBackend:
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r} (available: {sorted(_BACKENDS)})"
        ) from None


def available_backends() -> List[str]:
    return sorted(_BACKENDS)


register_backend(InterpreterBackend())
register_backend(VectorizedBackend())
register_backend(NativeBackend())
