"""Vectorized execution engine for tensor IR.

The scalar :class:`~repro.tir.interpreter.Interpreter` executes loop nests one
element at a time in Python — exact, but the single hottest path in the
repository once every schedule transformation and tuning trial is validated
through it.  This module compiles the same :class:`PrimFunc` loop nests into
*batched numpy operations*:

* affine ``TensorLoad``/``Store`` indices are evaluated as integer index
  grids over the full loop-iteration space and become fancy-indexed
  gathers/scatters;
* reduction updates (``out[...] = out[...] + src`` and the ``max``/``min``
  forms) are folded over the reduction axes with exact dtype semantics —
  order-free ufunc reductions where modular/ordering arguments prove bit
  equality (integer sums, integer/float max/min), and a sequential
  vectorized left-fold where evaluation order is observable (float sums);
* ``likely`` residue guards from imperfect splits become boolean masks
  (loads are clamped, stores are mask-selected, accumulations fold the
  guarded iterations as combiner identities);
* ``Select``, ``Reduce`` and the vector expressions ``Ramp`` / ``Broadcast``
  / ``Shuffle`` evaluate on whole index blocks;
* ``IntrinsicCall`` regions execute in rounds: outer loops the destination
  tile does *not* depend on (reduction revisits) run sequentially, while all
  tiles of one round — provably disjoint — are gathered, executed through the
  instruction's (batch-polymorphic) hardware model, and scattered in bulk.

Any statement the engine cannot prove vectorizable falls back, whole nest at
a time, to the scalar interpreter over the same buffers, so the engine is
*always* exact: vectorization is an optimization, never a semantics change.
``EngineStats`` records how much of a run was vectorized and why fallbacks
happened.

The engine is the default validation oracle of the repository (see
``repro.tir.execute``); the scalar interpreter remains the reference it is
continuously tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..dsl import expr as E
from ..dsl.tensor import Tensor
from .interpreter import Interpreter
from .lower import PrimFunc
from .stmt import (
    Allocate,
    AttrStmt,
    Evaluate,
    For,
    IfThenElse,
    IntrinsicCall,
    SeqStmt,
    Stmt,
    Store,
)

__all__ = ["VectorizedEngine", "EngineStats", "Unvectorizable", "execute", "vector_run"]


class Unvectorizable(Exception):
    """A statement could not be proven safe to vectorize.

    Raised internally (and surfaced only in ``strict`` mode); the engine's
    normal response is to execute the offending nest through the scalar
    interpreter instead.
    """


@dataclass
class EngineStats:
    """What the engine did during one or more ``run`` calls."""

    vector_nests: int = 0
    fallback_nests: int = 0
    vector_stores: int = 0
    intrinsic_rounds: int = 0
    intrinsic_points: int = 0
    fallback_reasons: List[str] = field(default_factory=list)

    @property
    def vectorized_fraction(self) -> float:
        total = self.vector_nests + self.fallback_nests
        return self.vector_nests / total if total else 1.0


class _Frame:
    __slots__ = ("buffers",)

    def __init__(self, buffers: Dict[Tensor, np.ndarray]) -> None:
        self.buffers = buffers


class _Ctx:
    """Grid-evaluation context: loop variables bound to index arrays.

    ``rank`` is the number of grid axes; every bound array has exactly
    ``rank`` dimensions (size-1 where it does not vary), so results broadcast
    positionally.  Vector expressions add one trailing *lane* axis (rank+1).
    ``clip`` clamps gather indices into range — enabled when a mask is active,
    because masked-out grid points may carry out-of-range addresses that the
    scalar loop would never have touched.
    """

    __slots__ = ("rank", "vars", "buffers", "clip")

    def __init__(self, rank, vars, buffers, clip=False):
        self.rank = rank
        self.vars = vars
        self.buffers = buffers
        self.clip = clip


def _axis_array(pos: int, extent: int, rank: int) -> np.ndarray:
    shape = [1] * rank
    shape[pos] = extent
    return np.arange(extent, dtype=np.int64).reshape(shape)


def _align(values: Sequence, rank: int) -> List:
    """Insert a trailing lane axis on grid-rank arrays when mixed with
    lane-rank (rank+1) arrays, so numpy broadcasting lines up positionally."""
    target = max((np.ndim(v) for v in values), default=0)
    if target <= rank:
        return list(values)
    out = []
    for v in values:
        nd = np.ndim(v)
        if 0 < nd < target:
            out.append(np.asarray(v)[..., None])
        else:
            out.append(v)
    return out


class VectorizedEngine:
    """Execute a :class:`PrimFunc` over numpy buffers by batched array ops."""

    def __init__(self, func: PrimFunc, strict: bool = False) -> None:
        self.func = func
        self.strict = strict
        self.stats = EngineStats()
        self._interp = Interpreter(func)

    # -- public API -------------------------------------------------------
    def run(self, buffers: Dict[Tensor, np.ndarray]) -> np.ndarray:
        """Execute the function; same contract as ``Interpreter.run``."""
        frame = _Frame(self._interp.bind_params(buffers))
        self._exec(self.func.body, frame)
        return frame.buffers[self.func.output]

    # -- statement dispatch ------------------------------------------------
    def _exec(self, stmt: Stmt, frame: _Frame) -> None:
        if isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                self._exec(s, frame)
        elif isinstance(stmt, AttrStmt):
            self._exec(stmt.body, frame)
        elif isinstance(stmt, Allocate):
            frame.buffers[stmt.tensor] = np.zeros(
                stmt.tensor.shape, dtype=stmt.tensor.dtype.np_dtype
            )
            self._exec(stmt.body, frame)
        elif isinstance(stmt, (For, Store, IfThenElse, IntrinsicCall)):
            self._dispatch_nest(stmt, frame)
        elif isinstance(stmt, Evaluate):
            self._fallback(stmt, frame)
        else:
            raise TypeError(f"cannot execute statement {type(stmt).__name__}")

    def _dispatch_nest(self, stmt: Stmt, frame: _Frame) -> None:
        try:
            self._vector_nest(stmt, frame)
            self.stats.vector_nests += 1
        except Unvectorizable as exc:
            if self.strict:
                raise
            self.stats.fallback_nests += 1
            if len(self.stats.fallback_reasons) < 32:
                self.stats.fallback_reasons.append(str(exc))
            self._fallback(stmt, frame)

    def _fallback(self, stmt: Stmt, frame: _Frame) -> None:
        self._interp.run_stmt(stmt, frame.buffers)

    # -- nest vectorization -------------------------------------------------
    def _vector_nest(self, stmt: Stmt, frame: _Frame) -> None:
        axes: List[Tuple[E.Var, int]] = []
        guards: List[E.Expr] = []
        while True:
            if isinstance(stmt, For):
                axes.append((stmt.var, stmt.extent))
                stmt = stmt.body
            elif isinstance(stmt, IfThenElse) and stmt.else_case is None:
                guards.append(stmt.condition)
                stmt = stmt.then_case
            elif isinstance(stmt, AttrStmt):
                stmt = stmt.body
            else:
                break
        if isinstance(stmt, Store):
            self._vector_store(axes, guards, stmt, frame)
        elif isinstance(stmt, IntrinsicCall):
            self._vector_intrinsic(axes, guards, stmt, frame)
        else:
            raise Unvectorizable(
                f"loop body is a {type(stmt).__name__}, not a store or intrinsic call"
            )

    def _make_ctx(self, axes, frame, clip):
        rank = len(axes)
        vars = {
            var: _axis_array(i, extent, rank)
            for i, (var, extent) in enumerate(axes)
        }
        return _Ctx(rank, vars, frame.buffers, clip)

    def _eval_mask(self, guards, ctx):
        """Combine guard conditions into one boolean mask (or None)."""
        mask = None
        for g in guards:
            m = self._veval(g, ctx)
            if mask is None:
                mask = m
            else:
                a, b = _align([mask, m], ctx.rank)
                mask = np.logical_and(a, b)
        if mask is not None and np.ndim(mask) == 0:
            if not bool(mask):
                return False  # statically dead nest
            mask = None
        return mask

    # -- vectorized Store ---------------------------------------------------
    def _vector_store(self, axes, guards, store: Store, frame: _Frame) -> None:
        rank = len(axes)
        grid = tuple(extent for _, extent in axes)
        ctx = self._make_ctx(axes, frame, clip=bool(guards))
        buf = self._buffer(frame, store.tensor)
        out_np = store.tensor.dtype.np_dtype

        mask = self._eval_mask(guards, ctx)
        if mask is False:
            return

        acc = self._match_accumulation(store)
        idx = [self._veval(i, ctx) for i in store.indices]
        if mask is not None:
            idx = [
                np.clip(np.asarray(i), 0, d - 1) if np.ndim(i) else min(max(int(i), 0), d - 1)
                for i, d in zip(idx, buf.shape)
            ]

        if acc is None:
            self._plain_store(buf, out_np, idx, store, ctx, mask, rank)
        else:
            rest_expr, combiner = acc
            self._accumulate_store(
                buf, out_np, idx, rest_expr, combiner, store, ctx, mask, axes, grid
            )
        self.stats.vector_stores += 1

    def _plain_store(self, buf, out_np, idx, store, ctx, mask, rank):
        value = self._veval(store.value, ctx)
        arrs = _align(list(idx) + [value], rank)
        *idx_a, val = arrs
        shapes = [np.shape(a) for a in arrs]
        if mask is not None:
            shapes.append(np.shape(mask))
        bshape = np.broadcast_shapes(*shapes)
        val = np.broadcast_to(np.asarray(val).astype(out_np), bshape)
        idx_b = tuple(np.broadcast_to(np.asarray(a), bshape) for a in idx_a)
        if mask is None:
            # Duplicate target indices (loop axes the store does not depend
            # on) resolve in C order = loop order: the last write wins,
            # matching the scalar loop.
            buf[idx_b] = val
        else:
            sel = np.broadcast_to(np.asarray(mask), bshape)
            buf[tuple(a[sel] for a in idx_b)] = val[sel]

    def _accumulate_store(
        self, buf, out_np, idx, rest_expr, combiner, store, ctx, mask, axes, grid
    ):
        rank = len(axes)
        dep: set = set()
        for i_expr in store.indices:
            dep.update(E.free_vars(i_expr))
        red_pos = [k for k, (v, _) in enumerate(axes) if v not in dep]
        dp_pos = [k for k in range(rank) if k not in red_pos]
        dp_shape = tuple(grid[k] for k in dp_pos)

        vals = self._veval(rest_expr, ctx)
        if np.ndim(vals) > rank or any(np.ndim(i) > rank for i in idx):
            raise Unvectorizable("accumulating store over vector lanes")

        def to_dp(a):
            """Reduce a grid-broadcastable array to data-parallel shape."""
            a = np.broadcast_to(np.asarray(a), grid)
            a = np.transpose(a, dp_pos + red_pos)
            return a[(Ellipsis,) + (0,) * len(red_pos)]

        def to_folded(a):
            """Reshape a grid-broadcastable array to (dp..., K) in loop order."""
            a = np.broadcast_to(np.asarray(a), grid)
            a = np.transpose(a, dp_pos + red_pos)
            return a.reshape(dp_shape + (-1,))

        idx_dp = tuple(to_dp(i) for i in idx)
        vals_m = to_folded(vals)
        mask_m = to_folded(mask) if mask is not None else None
        acc0 = buf[idx_dp]  # data-parallel gather of the current accumulator

        vals_dt = vals_m.dtype
        out_bits = store.tensor.dtype.bits
        fast = False
        if combiner == "sum":
            # Integer sums are exact under any order: truncation to the store
            # dtype is a ring homomorphism, so reducing in (at least) the
            # wider of the two integer widths matches the per-step
            # read-modify-write of the scalar loop bit for bit.
            if store.tensor.dtype.is_integer and vals_dt.kind in "iu":
                fast = True
                red_dt = out_np if out_bits >= vals_dt.itemsize * 8 else vals_dt
        elif vals_dt == out_np and vals_dt.kind in "iuf":
            # max/min never round and per-step casts are no-ops when the
            # value dtype equals the store dtype, so the order-free ufunc
            # reduction is exact.
            fast = True

        if fast:
            vm = vals_m
            if mask_m is not None:
                # A guarded-out iteration leaves the accumulator untouched,
                # which is exactly folding the combiner identity.
                if combiner == "sum":
                    identity = vals_dt.type(0)
                elif combiner == "max":
                    identity = (
                        np.iinfo(vals_dt).min
                        if vals_dt.kind in "iu"
                        else vals_dt.type(-np.inf)
                    )
                else:
                    identity = (
                        np.iinfo(vals_dt).max
                        if vals_dt.kind in "iu"
                        else vals_dt.type(np.inf)
                    )
                vm = np.where(mask_m, vm, identity)
            if combiner == "sum":
                total = (acc0 + np.add.reduce(vm, axis=-1, dtype=red_dt)).astype(out_np)
            elif combiner == "max":
                total = np.maximum(acc0, np.maximum.reduce(vm, axis=-1)).astype(out_np)
            else:
                total = np.minimum(acc0, np.minimum.reduce(vm, axis=-1)).astype(out_np)
        else:
            # Sequential left-fold over the reduction domain, vectorized over
            # the data-parallel grid: reproduces the scalar loop's evaluation
            # order (and its per-step store cast) exactly — required for
            # float sums, where summation order is observable.
            op = {"sum": np.add, "max": np.maximum, "min": np.minimum}[combiner]
            acc = acc0
            for k in range(vals_m.shape[-1]):
                upd = np.asarray(op(acc, vals_m[..., k])).astype(out_np)
                acc = np.where(mask_m[..., k], upd, acc) if mask_m is not None else upd
            total = np.asarray(acc)

        if mask_m is None:
            buf[idx_dp] = np.broadcast_to(np.asarray(total).astype(out_np), dp_shape)
        else:
            # A data-parallel point is stored iff at least one of its
            # reduction iterations passed the guard.
            sel = mask_m.any(axis=-1)
            buf[tuple(a[sel] for a in idx_dp)] = np.broadcast_to(
                np.asarray(total).astype(out_np), dp_shape
            )[sel]

    def _match_accumulation(self, store: Store):
        """Recognise ``t[i] = combine(t[i], rest)`` read-modify-write stores.

        Returns ``(rest, combiner)`` when the store value combines the stored
        element itself with an expression that does not otherwise read the
        target tensor; ``None`` for plain stores.  Any other self-reference
        is a loop-carried dependence the engine cannot reorder.
        """
        v = store.value
        for cls, comb in ((E.Add, "sum"), (E.Max, "max"), (E.Min, "min")):
            if type(v) is cls:
                for load, rest in ((v.a, v.b), (v.b, v.a)):
                    if (
                        isinstance(load, E.TensorLoad)
                        and load.tensor is store.tensor
                        and len(load.indices) == len(store.indices)
                        and all(
                            E.structural_equal(x, y)
                            for x, y in zip(load.indices, store.indices)
                        )
                    ):
                        if any(
                            isinstance(n, E.TensorLoad) and n.tensor is store.tensor
                            for n in E.post_order(rest)
                        ):
                            raise Unvectorizable(
                                "store reads its target tensor beyond the accumulator"
                            )
                        return rest, comb
                break
        if any(
            isinstance(n, E.TensorLoad) and n.tensor is store.tensor
            for n in E.post_order(store.value)
        ):
            raise Unvectorizable("store value reads its target tensor (not an accumulation)")
        return None

    # -- vectorized IntrinsicCall -------------------------------------------
    def _vector_intrinsic(self, axes, guards, call: IntrinsicCall, frame: _Frame) -> None:
        rank = len(axes)
        grid = tuple(extent for _, extent in axes)
        outer_vars = {var for var, _ in axes}
        ctx = self._make_ctx(axes, frame, clip=False)

        for g in guards:
            if not set(E.free_vars(g)) <= outer_vars:
                raise Unvectorizable("intrinsic guard uses non-loop variables")
        mask = self._eval_mask(guards, ctx)
        if mask is False:
            return

        intrin = call.intrin
        iaxes = call.axes
        m = len(iaxes)
        iext = tuple(ax.extent for ax in iaxes)
        full_rank = rank + m
        fvars = {
            v: a.reshape(a.shape + (1,) * m) for v, a in ctx.vars.items()
        }
        for j, ax in enumerate(iaxes):
            fvars[ax.var] = _axis_array(rank + j, ax.extent, full_rank)
        fctx = _Ctx(full_rank, fvars, frame.buffers, clip=False)
        ictx = _Ctx(
            m,
            {ax.var: _axis_array(j, ax.extent, m) for j, ax in enumerate(iaxes)},
            frame.buffers,
            clip=False,
        )

        out_b = call.output
        out_buf = self._buffer(frame, out_b.program_tensor)
        bindings = list(call.inputs) + [out_b]
        prog_idx: Dict[int, list] = {}
        reg_idx: Dict[int, list] = {}
        for bi, b in enumerate(bindings):
            pidx = [self._veval(i, fctx) for i in b.program_indices]
            ridx = [self._veval(i, ictx) for i in b.intrin_indices]
            if any(np.ndim(p) > full_rank for p in pidx) or any(
                np.ndim(r) > m for r in ridx
            ):
                raise Unvectorizable("vector lanes in intrinsic operand indices")
            prog_idx[bi] = pidx
            reg_idx[bi] = ridx

        # Operands reading the destination tensor must address exactly the
        # element the call writes (the accumulator pattern) — otherwise a
        # batched round could observe writes out of order.
        for bi, b in enumerate(bindings[:-1]):
            if b.program_tensor is out_b.program_tensor:
                if len(b.program_indices) != len(out_b.program_indices) or not all(
                    E.structural_equal(x, y)
                    for x, y in zip(b.program_indices, out_b.program_indices)
                ):
                    raise Unvectorizable(
                        "intrinsic reads the output tensor at a different address"
                    )

        # Outer axes the destination tile depends on are batchable (tiles are
        # disjoint across them); the rest revisit tiles and run as sequential
        # rounds, preserving the accumulation order.
        out_dep: set = set()
        for i_expr in out_b.program_indices:
            out_dep.update(E.free_vars(i_expr))
        batch_pos = [k for k, (v, _) in enumerate(axes) if v in out_dep]
        seq_pos = [k for k in range(rank) if k not in batch_pos]
        batch_ext = [grid[k] for k in batch_pos]
        seq_ext = [grid[k] for k in seq_pos]
        bn_total = int(np.prod(batch_ext)) if batch_ext else 1

        batch_part = tuple(grid[k] if k in batch_pos else 1 for k in range(rank))
        out_np = out_b.program_tensor.dtype.np_dtype
        out_i = len(bindings) - 1
        seq_vars = {axes[k][0] for k in seq_pos}

        # Per binding: the register-index views (broadcastable over the
        # intrinsic grid), their broadcast shape ``eff`` (1 along intrinsic
        # axes the register ignores), and whether the register fill is the
        # identity layout (a plain reshape instead of a fancy scatter).
        bview: Dict[int, tuple] = {}
        eff: Dict[int, tuple] = {}
        identity_fill: Dict[int, bool] = {}
        for bi, b in enumerate(bindings):
            views = []
            for r in reg_idx[bi]:
                a = np.asarray(r)
                views.append(a.reshape((1,) * m) if a.ndim == 0 else a)
            shape = np.broadcast_shapes(*(v.shape for v in views)) if views else ()
            eff[bi] = (1,) * (m - len(shape)) + tuple(shape)
            bview[bi] = tuple(views)
            reg_shape = b.intrin_tensor.shape
            if views and eff[bi] == iext:
                flat = np.ravel_multi_index(
                    tuple(np.broadcast_to(v, iext) for v in views), reg_shape
                ).reshape(-1)
                identity_fill[bi] = flat.size == int(
                    np.prod(reg_shape)
                ) and np.array_equal(flat, np.arange(flat.size))
            else:
                identity_fill[bi] = False

        def eff_sliced(pidx, bi):
            """Drop intrinsic-axis iterations whose register writes are
            overwritten anyway: where the register index ignores an axis,
            only that axis's last iteration survives in the scalar loop."""
            out = []
            for a in pidx:
                a = np.asarray(a)
                if a.ndim == 0:
                    out.append(a)
                    continue
                index = [slice(None)] * a.ndim
                for j in range(m):
                    if eff[bi][j] == 1 and a.shape[rank + j] > 1:
                        index[rank + j] = slice(a.shape[rank + j] - 1, None)
                out.append(a[tuple(index)])
            return out

        # Pre-slice (and, under a mask, pre-clamp) the input index views once:
        # both transforms are round-independent on the small broadcastable
        # views.  Masked-out batch rows then gather in-range garbage that the
        # guarded scatter discards — far cheaper than materialising selected
        # index rows every round.
        gather_idx: Dict[int, list] = {}
        for bi, b in enumerate(call.inputs):
            src = self._buffer(frame, b.program_tensor)
            pidx = eff_sliced(prog_idx[bi], bi)
            if mask is not None:
                pidx = [
                    np.clip(np.asarray(i), 0, d - 1)
                    for i, d in zip(pidx, src.shape)
                ]
            gather_idx[bi] = pidx

        def round_slice(arr, spt):
            """Slice the sequential axes at ``spt``, keeping rank (views only).

            The result stays *broadcastable* (size-1 dims preserved): numpy's
            fancy indexing broadcasts index arrays internally, so gathers and
            scatters never materialise full integer index grids."""
            a = np.asarray(arr)
            if a.ndim == 0:
                return a
            index = [slice(None)] * a.ndim
            for k, s in zip(seq_pos, spt):
                index[k] = slice(s, s + 1) if a.shape[k] > 1 else slice(0, 1)
            return a[tuple(index)]

        # Scatter plan for the output.  The output's program indices never
        # depend on the sequential axes (those are, by definition, the axes
        # the destination tile ignores), so the index rows are
        # round-invariant; the guard mask is too unless a guard mentions a
        # sequential variable.
        pidx_o = prog_idx[out_i]
        scat_ext = tuple(
            np.broadcast_shapes(
                *(
                    (np.shape(i)[rank + j],)
                    for i in pidx_o
                    if np.ndim(i)
                ),
                (eff[out_i][j],),
            )[0]
            for j in range(m)
        )
        sel = None
        sel_rows = None
        mask_invariant = mask is None or not any(
            seq_vars & set(E.free_vars(g)) for g in guards
        )

        def select_rows(sel_local):
            return [
                np.broadcast_to(i, batch_part + scat_ext).reshape(
                    (bn_total,) + scat_ext
                )[sel_local]
                for i in pidx_o
            ]

        if mask is not None and mask_invariant:
            mflat = np.broadcast_to(np.asarray(mask), batch_part[:rank]).reshape(-1)
            sel = np.nonzero(mflat)[0]
            if sel.size == 0:
                return
            sel_rows = select_rows(sel)

        for spt in np.ndindex(*seq_ext):
            if mask is not None and not mask_invariant:
                mflat = np.broadcast_to(
                    round_slice(mask, spt), batch_part[:rank]
                ).reshape(-1)
                sel = np.nonzero(mflat)[0]
                if sel.size == 0:
                    continue
                sel_rows = select_rows(sel)

            operands: Dict[str, np.ndarray] = {}
            for bi, b in enumerate(call.inputs):
                src = self._buffer(frame, b.program_tensor)
                pidx = [round_slice(i, spt) for i in gather_idx[bi]]
                vals = np.broadcast_to(
                    src[tuple(pidx)], batch_part + eff[bi]
                ).reshape((bn_total,) + eff[bi])
                reg_np = b.intrin_tensor.dtype.np_dtype
                if identity_fill[bi]:
                    reg = vals.reshape((bn_total,) + b.intrin_tensor.shape)
                    if reg.dtype != reg_np:
                        reg = reg.astype(reg_np)
                else:
                    reg = np.zeros(
                        (bn_total,) + b.intrin_tensor.shape, dtype=reg_np
                    )
                    reg[(slice(None),) + bview[bi]] = vals
                operands[b.intrin_tensor.name] = reg

            result = intrin.execute_batch(operands, bn_total)
            if identity_fill[out_i]:
                out_vals = result.reshape((bn_total,) + iext).astype(out_np)
            else:
                out_vals = result[(slice(None),) + bview[out_i]].astype(out_np)
            val = out_vals.reshape(batch_part + eff[out_i])

            if sel is None:
                po = [round_slice(i, spt) for i in pidx_o]
                # Where the target indices ignore an axis the value varies
                # over, only the last write survives — slice the value to its
                # last iteration there; elsewhere broadcasting repeats it.
                bshape = np.broadcast_shapes(*(np.shape(i) for i in po))
                bfull = (1,) * (len(val.shape) - len(bshape)) + tuple(bshape)
                slicer = tuple(
                    slice(d - 1, None) if t == 1 and d != 1 else slice(None)
                    for t, d in zip(bfull, val.shape)
                )
                out_buf[tuple(po)] = val[slicer]
            else:
                out_buf[tuple(sel_rows)] = np.broadcast_to(
                    val, batch_part + scat_ext
                ).reshape((bn_total,) + scat_ext)[sel]
            self.stats.intrinsic_rounds += 1
            self.stats.intrinsic_points += bn_total

    # -- expression evaluation over grids -----------------------------------
    def _veval(self, expr: E.Expr, ctx: _Ctx):
        if isinstance(expr, E.Const):
            return expr.value
        if isinstance(expr, E.Var):
            try:
                return ctx.vars[expr]
            except KeyError:
                raise Unvectorizable(f"unbound variable {expr.name!r}")
        if isinstance(expr, E.Cast):
            v = self._veval(expr.value, ctx)
            np_dtype = expr.dtype.np_dtype
            if isinstance(v, np.ndarray):
                return v.astype(np_dtype)
            return np_dtype.type(v)
        if isinstance(expr, E.TensorLoad):
            buf = self._buffer_ctx(ctx, expr.tensor)
            idx = _align([self._veval(i, ctx) for i in expr.indices], ctx.rank)
            if all(np.ndim(i) == 0 for i in idx):
                return buf[tuple(int(i) for i in idx)]
            arrays = []
            for i, d in zip(idx, buf.shape):
                a = np.asarray(i)
                if ctx.clip:
                    a = np.clip(a, 0, d - 1)
                arrays.append(a)
            return buf[tuple(arrays)]
        if isinstance(expr, E.BinaryOp):
            a = self._veval(expr.a, ctx)
            b = self._veval(expr.b, ctx)
            a, b = _align([a, b], ctx.rank)
            if isinstance(expr, E.Add):
                return a + b
            if isinstance(expr, E.Sub):
                return a - b
            if isinstance(expr, E.Mul):
                return a * b
            if isinstance(expr, E.FloorDiv):
                return a // b
            if isinstance(expr, E.Mod):
                return a % b
            if isinstance(expr, E.Min):
                if np.ndim(a) == 0 and np.ndim(b) == 0:
                    return min(a, b)
                return np.minimum(a, b)
            if np.ndim(a) == 0 and np.ndim(b) == 0:
                return max(a, b)
            return np.maximum(a, b)
        if isinstance(expr, E.Compare):
            a = self._veval(expr.a, ctx)
            b = self._veval(expr.b, ctx)
            a, b = _align([a, b], ctx.rank)
            return {
                "==": lambda: a == b,
                "!=": lambda: a != b,
                "<": lambda: a < b,
                "<=": lambda: a <= b,
                ">": lambda: a > b,
                ">=": lambda: a >= b,
            }[expr.op]()
        if isinstance(expr, E.Select):
            cond = self._veval(expr.cond, ctx)
            if np.ndim(cond) == 0:
                branch = expr.true_value if bool(cond) else expr.false_value
                return self._veval(branch, ctx)
            t = self._veval(expr.true_value, ctx)
            f = self._veval(expr.false_value, ctx)
            cond, t, f = _align([cond, t, f], ctx.rank)
            return np.where(cond, t, f)
        if isinstance(expr, E.Reduce):
            return self._veval_reduce(expr, ctx)
        if isinstance(expr, E.Ramp):
            base = self._veval(expr.base, ctx)
            if np.ndim(base) > ctx.rank:
                raise Unvectorizable("nested vector lanes (Ramp of a vector)")
            barr = np.broadcast_to(
                np.asarray(base), (1,) * (ctx.rank - np.ndim(base)) + np.shape(base)
            )
            return barr[..., None] + np.arange(expr.lanes, dtype=np.int64) * expr.stride
        if isinstance(expr, E.Broadcast):
            v = self._veval(expr.value, ctx)
            if np.ndim(v) > ctx.rank:
                raise Unvectorizable("nested vector lanes (Broadcast of a vector)")
            varr = np.broadcast_to(
                np.asarray(v), (1,) * (ctx.rank - np.ndim(v)) + np.shape(v)
            )
            return np.broadcast_to(varr[..., None], varr.shape + (expr.lanes,))
        if isinstance(expr, E.Shuffle):
            parts = []
            for v in expr.vectors:
                p = self._veval(v, ctx)
                if np.ndim(p) <= ctx.rank:
                    p = np.broadcast_to(
                        np.asarray(p), (1,) * (ctx.rank - np.ndim(p)) + np.shape(p)
                    )[..., None]
                parts.append(np.asarray(p))
            lead = np.broadcast_shapes(*(p.shape[:-1] for p in parts))
            parts = [np.broadcast_to(p, lead + (p.shape[-1],)) for p in parts]
            return np.concatenate(parts, axis=-1)
        raise Unvectorizable(f"cannot vectorize expression {type(expr).__name__}")

    def _veval_reduce(self, expr: E.Reduce, ctx: _Ctx):
        k = len(expr.axes)
        sub_rank = ctx.rank + k
        sub_vars = {}
        for v, a in ctx.vars.items():
            sub_vars[v] = (
                np.asarray(a).reshape(np.shape(a) + (1,) * k) if np.ndim(a) else a
            )
        extents = tuple(ax.extent for ax in expr.axes)
        for j, ax in enumerate(expr.axes):
            sub_vars[ax.var] = _axis_array(ctx.rank + j, ax.extent, sub_rank)
        sub = _Ctx(sub_rank, sub_vars, ctx.buffers, ctx.clip)
        src = self._veval(expr.source, sub)
        if np.ndim(src) > sub_rank:
            raise Unvectorizable("vector lanes inside a reduction")
        src = np.broadcast_to(
            np.asarray(src), (1,) * (sub_rank - np.ndim(src)) + np.shape(src)
        )
        flat = src.reshape(src.shape[: ctx.rank] + (-1,))
        if expr.combiner == "max":
            return np.maximum.reduce(flat, axis=-1)
        if expr.combiner == "min":
            return np.minimum.reduce(flat, axis=-1)
        if flat.dtype.kind in "iub":
            return np.add.reduce(flat, axis=-1, dtype=flat.dtype)
        # Float sums fold sequentially to mirror the interpreter's order.
        acc = flat[..., 0]
        for j in range(1, flat.shape[-1]):
            acc = acc + flat[..., j]
        return acc

    # -- buffers ------------------------------------------------------------
    def _buffer(self, frame: _Frame, tensor: Tensor) -> np.ndarray:
        try:
            return frame.buffers[tensor]
        except KeyError as exc:
            raise KeyError(f"no buffer bound for tensor {tensor.name!r}") from exc

    def _buffer_ctx(self, ctx: _Ctx, tensor: Tensor) -> np.ndarray:
        try:
            return ctx.buffers[tensor]
        except KeyError as exc:
            raise KeyError(f"no buffer bound for tensor {tensor.name!r}") from exc


def vector_run(
    func: PrimFunc, buffers: Dict[Tensor, np.ndarray], strict: bool = False
) -> np.ndarray:
    """Execute ``func`` through the vectorized engine."""
    return VectorizedEngine(func, strict=strict).run(buffers)


def execute(
    func: PrimFunc,
    buffers: Dict[Tensor, np.ndarray],
    engine: str = "vector",
    strict: bool = False,
) -> np.ndarray:
    """Execute ``func`` over ``buffers`` with the selected engine.

    ``engine`` is ``"vector"`` (the default oracle — batched numpy execution
    with automatic scalar fallback) or ``"scalar"`` (the reference
    interpreter).  ``strict`` makes the vector engine raise
    :class:`Unvectorizable` instead of falling back — useful in tests that
    assert full vectorization.
    """
    if engine == "scalar":
        return Interpreter(func).run(buffers)
    if engine == "vector":
        return vector_run(func, buffers, strict=strict)
    raise ValueError(f"unknown engine {engine!r} (expected 'vector' or 'scalar')")
