"""Vectorized execution engine for tensor IR: compile once, run many times.

The scalar :class:`~repro.tir.interpreter.Interpreter` executes loop nests one
element at a time in Python — exact, but the single hottest path in the
repository once every schedule transformation and tuning trial is validated
through it.  This module *compiles* a :class:`PrimFunc` into an
:class:`ExecutablePlan` of batched numpy operations and then executes the
plan with **zero re-analysis**:

* **compile phase** (:func:`compile_plan`) — one walk over the loop nests
  derives everything that does not depend on buffer contents: iteration
  grids, strided (affine) gather/scatter index arrays via the memoized
  :func:`repro.dsl.expr.extract_linear` decomposition, residue masks from
  ``likely`` guards, reduction fold orders, and a flattened intrinsic-round
  schedule.  Expressions that do read buffers are compiled into closures
  over those precomputed index grids;
* **run phase** (:meth:`ExecutablePlan.run`) — pure numpy execution over the
  caller's buffers: fancy-indexed gathers, exact-dtype reduction folds
  (order-free ufunc reductions where bit equality is provable, sequential
  vectorized left-folds where evaluation order is observable, e.g. float
  sums), masked scatters, and bulk intrinsic dispatch.

``IntrinsicCall`` regions execute in rounds: outer loops the destination
tile does *not* depend on (reduction revisits) are, by default, sequential
rounds.  When every operand address is **affine in those sequential loop
variables** — successive rounds differ only by constant input offsets — and
the instruction is an integer accumulator-style dot product, the plan
*stacks* rounds: operands for whole slabs of rounds are gathered at once,
pushed through the (rank-polymorphic) hardware model in one call with a zero
accumulator, and the per-round contributions are folded with exact wraparound
integer addition before a single accumulate-and-scatter.  This turns the
36–648 Python round-trips of a convolution's reduction loops into a handful
of ``execute`` calls.

Plans are cached process-wide (:mod:`repro.tir.plan`) keyed by the canonical
structural hash of the function plus its dtype/shape signature, so the many
structurally identical layers of a model compile once and run warm.

Any statement the compiler cannot prove vectorizable becomes a *fallback
step* that executes through the scalar interpreter over the same buffers, so
the engine is always exact: vectorization is an optimization, never a
semantics change.  :class:`EngineStats` records how much of a run was
vectorized and why fallbacks happened; :class:`VectorizedEngine` keeps its
historical one-object interface on top of the plan machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dsl import expr as E
from ..dsl.tensor import Tensor
from .interpreter import Interpreter
from .lower import PrimFunc
from .stmt import (
    Allocate,
    AttrStmt,
    Evaluate,
    For,
    IfThenElse,
    IntrinsicCall,
    SeqStmt,
    Stmt,
    Store,
)

__all__ = [
    "VectorizedEngine",
    "EngineStats",
    "PlanStats",
    "ExecutablePlan",
    "Unvectorizable",
    "compile_plan",
    "execute",
    "vector_run",
]

# Element budget for one stacked intrinsic-round slab: bounds the transient
# operand arrays of the register-form batched dispatch (elements, not bytes).
# Kept small enough that a slab's widened temporaries stay cache-resident.
_ROUND_BATCH_BUDGET = 1 << 22

# Element budget for the materialised gathers of the grid-form dispatch (its
# broadcast operand views cost nothing; only the raw gathers allocate).
_GRID_GATHER_BUDGET = 1 << 27


class Unvectorizable(Exception):
    """A statement could not be proven safe to vectorize.

    Raised at compile time for structural reasons (and surfaced only in
    ``strict`` mode) and — rarely — at run time for value-shape reasons
    (vector lanes appearing where the plan proved none); the engine's normal
    response is to execute the offending nest through the scalar interpreter.
    """


class _Dynamic(Exception):
    """Static evaluation hit a buffer read (internal control flow)."""


@dataclass
class EngineStats:
    """What the engine did during one or more ``run`` calls."""

    vector_nests: int = 0
    fallback_nests: int = 0
    vector_stores: int = 0
    intrinsic_rounds: int = 0
    intrinsic_points: int = 0
    intrinsic_round_batches: int = 0
    native_runs: int = 0
    native_promotions: int = 0
    native_demotions: int = 0
    sandbox_qualifications: int = 0
    sandbox_rejections: int = 0
    fallback_reasons: List[str] = field(default_factory=list)

    @property
    def vectorized_fraction(self) -> float:
        total = self.vector_nests + self.fallback_nests
        return self.vector_nests / total if total else 1.0


@dataclass
class PlanStats:
    """Compile-time facts about one :class:`ExecutablePlan`.

    ``proved_nests`` counts nests whose every access the static bounds
    analysis (:mod:`repro.analysis`) proved in-range; ``elided_checks``
    counts the runtime guards (masked-gather/scatter clamps, accumulation
    lane checks) the compiler skipped because a proof made them identity
    operations.
    """

    vector_nests: int = 0
    fallback_nests: int = 0
    proved_nests: int = 0
    elided_checks: int = 0
    native_runs: int = 0
    native_promotions: int = 0
    sandbox_qualifications: int = 0
    sandbox_rejections: int = 0
    fallback_reasons: List[str] = field(default_factory=list)

    @property
    def vectorized_fraction(self) -> float:
        total = self.vector_nests + self.fallback_nests
        return self.vector_nests / total if total else 1.0


def _axis_array(pos: int, extent: int, rank: int) -> np.ndarray:
    shape = [1] * rank
    shape[pos] = extent
    return np.arange(extent, dtype=np.int64).reshape(shape)


def _align(values: Sequence, rank: int) -> List:
    """Insert a trailing lane axis on grid-rank arrays when mixed with
    lane-rank (rank+1) arrays, so numpy broadcasting lines up positionally."""
    target = max((np.ndim(v) for v in values), default=0)
    if target <= rank:
        return list(values)
    out = []
    for v in values:
        nd = np.ndim(v)
        if 0 < nd < target:
            out.append(np.asarray(v)[..., None])
        else:
            out.append(v)
    return out


def _affine_in(expr: E.Expr, variables: set) -> bool:
    """Whether ``expr`` is affine in ``variables`` (other vars are symbolic
    parameters): no member may sit under a div/mod/min/max or multiply
    another variable-carrying term."""
    if not any(v in variables for v in E.free_vars(expr)):
        return True  # constant with respect to the slicing variables
    if isinstance(expr, E.Var):
        return True
    if isinstance(expr, E.Cast):
        return _affine_in(expr.value, variables)
    if isinstance(expr, (E.Add, E.Sub)):
        return _affine_in(expr.a, variables) and _affine_in(expr.b, variables)
    if isinstance(expr, E.Mul):
        for scale, term in ((expr.a, expr.b), (expr.b, expr.a)):
            if not any(v in variables for v in E.free_vars(scale)):
                return _affine_in(term, variables)
        return False
    return False


def _get_buf(bufs: Dict[Tensor, np.ndarray], tensor: Tensor) -> np.ndarray:
    try:
        return bufs[tensor]
    except KeyError as exc:
        raise KeyError(f"no buffer bound for tensor {tensor.name!r}") from exc


class _CompileCtx:
    """Grid-analysis context: loop variables bound to index arrays.

    ``rank`` is the number of grid axes; every bound array has exactly
    ``rank`` dimensions (size-1 where it does not vary), so results broadcast
    positionally.  Vector expressions add one trailing *lane* axis (rank+1).
    ``order`` is the binding order of the variables — the memo key for the
    affine decomposition.  ``clip`` clamps gather indices into range —
    enabled when a mask is active, because masked-out grid points may carry
    out-of-range addresses the scalar loop would never have touched.
    ``env`` maps every bound variable to its static interval, letting the
    compiler elide a clamp whose index is proven in-range at *every* grid
    point (clipping an in-range index is the identity).
    """

    __slots__ = ("rank", "vars", "order", "clip", "env")

    def __init__(self, rank, vars, order, clip=False, env=None):
        self.rank = rank
        self.vars = vars
        self.order = order
        self.clip = clip
        self.env = env


# ---------------------------------------------------------------------------
# Plan steps — the run-phase objects.  Every step is immutable after compile
# and threads all mutable state through the caller's buffer dict, so one plan
# may be shared across threads and cached process-wide.
# ---------------------------------------------------------------------------


class _AllocStep:
    __slots__ = ("tensor",)

    def __init__(self, tensor: Tensor) -> None:
        self.tensor = tensor

    def run(self, bufs, stats) -> None:
        bufs[self.tensor] = np.zeros(self.tensor.shape, dtype=self.tensor.dtype.np_dtype)


class _DeadStep:
    """A statically dead nest (guards fold to False): nothing to execute."""

    __slots__ = ("stmt",)

    def __init__(self, stmt: Stmt) -> None:
        self.stmt = stmt

    def run(self, bufs, stats) -> None:
        pass


class _FallbackStep:
    __slots__ = ("stmt", "reason", "counted")

    def __init__(self, stmt: Stmt, reason: str, counted: bool = True) -> None:
        self.stmt = stmt
        self.reason = reason
        self.counted = counted


class _PlainStoreStep:
    __slots__ = ("stmt", "tensor", "idx", "value_fn", "mask", "rank", "out_np")

    def __init__(self, stmt, tensor, idx, value_fn, mask, rank, out_np) -> None:
        self.stmt = stmt
        self.tensor = tensor
        self.idx = idx
        self.value_fn = value_fn
        self.mask = mask
        self.rank = rank
        self.out_np = out_np

    def run(self, bufs, stats) -> None:
        buf = _get_buf(bufs, self.tensor)
        value = self.value_fn(bufs)
        arrs = _align(list(self.idx) + [value], self.rank)
        *idx_a, val = arrs
        shapes = [np.shape(a) for a in arrs]
        if self.mask is not None:
            shapes.append(np.shape(self.mask))
        bshape = np.broadcast_shapes(*shapes)
        val = np.broadcast_to(np.asarray(val).astype(self.out_np), bshape)
        idx_b = tuple(np.broadcast_to(np.asarray(a), bshape) for a in idx_a)
        if self.mask is None:
            # Duplicate target indices (loop axes the store does not depend
            # on) resolve in C order = loop order: the last write wins,
            # matching the scalar loop.
            buf[idx_b] = val
        else:
            sel = np.broadcast_to(np.asarray(self.mask), bshape)
            buf[tuple(a[sel] for a in idx_b)] = val[sel]
        if stats:
            stats.vector_stores += 1


class _AccumStoreStep:
    """``t[i] = combine(t[i], rest)`` folded over the reduction axes."""

    __slots__ = (
        "stmt",
        "tensor",
        "value_fn",
        "combiner",
        "idx_dp",
        "grid",
        "perm",
        "dp_shape",
        "mask_m",
        "sel",
        "rank",
        "out_np",
        "out_bits",
        "is_int_out",
        "check_lanes",
    )

    def __init__(
        self, stmt, tensor, value_fn, combiner, idx_dp, grid, perm, dp_shape,
        mask_m, sel, rank, out_np, out_bits, is_int_out, check_lanes=True,
    ) -> None:
        self.stmt = stmt
        self.tensor = tensor
        self.value_fn = value_fn
        self.combiner = combiner
        self.idx_dp = idx_dp
        self.grid = grid
        self.perm = perm
        self.dp_shape = dp_shape
        self.mask_m = mask_m
        self.sel = sel
        self.rank = rank
        self.out_np = out_np
        self.out_bits = out_bits
        self.is_int_out = is_int_out
        self.check_lanes = check_lanes

    def _to_folded(self, a):
        """Reshape a grid-broadcastable array to (dp..., K) in loop order."""
        a = np.broadcast_to(np.asarray(a), self.grid)
        a = np.transpose(a, self.perm)
        return a.reshape(self.dp_shape + (-1,))

    def run(self, bufs, stats) -> None:
        buf = _get_buf(bufs, self.tensor)
        vals = self.value_fn(bufs)
        if self.check_lanes and np.ndim(vals) > self.rank:
            raise Unvectorizable("accumulating store over vector lanes")
        vals_m = self._to_folded(vals)
        mask_m = self.mask_m
        acc0 = buf[self.idx_dp]  # data-parallel gather of the current accumulator

        combiner = self.combiner
        out_np = self.out_np
        vals_dt = vals_m.dtype
        fast = False
        red_dt = vals_dt
        if combiner == "sum":
            # Integer sums are exact under any order: truncation to the store
            # dtype is a ring homomorphism, so reducing in (at least) the
            # wider of the two integer widths matches the per-step
            # read-modify-write of the scalar loop bit for bit.
            if self.is_int_out and vals_dt.kind in "iu":
                fast = True
                red_dt = out_np if self.out_bits >= vals_dt.itemsize * 8 else vals_dt
        elif vals_dt == out_np and vals_dt.kind in "iuf":
            # max/min never round and per-step casts are no-ops when the
            # value dtype equals the store dtype, so the order-free ufunc
            # reduction is exact.
            fast = True

        if fast:
            vm = vals_m
            if mask_m is not None:
                # A guarded-out iteration leaves the accumulator untouched,
                # which is exactly folding the combiner identity.
                if combiner == "sum":
                    identity = vals_dt.type(0)
                elif combiner == "max":
                    identity = (
                        np.iinfo(vals_dt).min
                        if vals_dt.kind in "iu"
                        else vals_dt.type(-np.inf)
                    )
                else:
                    identity = (
                        np.iinfo(vals_dt).max
                        if vals_dt.kind in "iu"
                        else vals_dt.type(np.inf)
                    )
                vm = np.where(mask_m, vm, identity)
            if combiner == "sum":
                total = (acc0 + np.add.reduce(vm, axis=-1, dtype=red_dt)).astype(out_np)
            elif combiner == "max":
                total = np.maximum(acc0, np.maximum.reduce(vm, axis=-1)).astype(out_np)
            else:
                total = np.minimum(acc0, np.minimum.reduce(vm, axis=-1)).astype(out_np)
        else:
            # Sequential left-fold over the reduction domain, vectorized over
            # the data-parallel grid: reproduces the scalar loop's evaluation
            # order (and its per-step store cast) exactly — required for
            # float sums, where summation order is observable.
            op = {"sum": np.add, "max": np.maximum, "min": np.minimum}[combiner]
            acc = acc0
            for k in range(vals_m.shape[-1]):
                upd = np.asarray(op(acc, vals_m[..., k])).astype(out_np)
                acc = np.where(mask_m[..., k], upd, acc) if mask_m is not None else upd
            total = np.asarray(acc)

        if self.sel is None:
            buf[self.idx_dp] = np.broadcast_to(
                np.asarray(total).astype(out_np), self.dp_shape
            )
        else:
            # A data-parallel point is stored iff at least one of its
            # reduction iterations passed the guard.
            buf[tuple(a[self.sel] for a in self.idx_dp)] = np.broadcast_to(
                np.asarray(total).astype(out_np), self.dp_shape
            )[self.sel]
        if stats:
            stats.vector_stores += 1


class _IntrinsicRound:
    """One sequential round of an intrinsic nest: pre-sliced index views."""

    __slots__ = ("input_idx", "sel", "sel_rows")

    def __init__(self, input_idx, sel, sel_rows) -> None:
        self.input_idx = input_idx
        self.sel = sel
        self.sel_rows = sel_rows


class _IntrinsicStep:
    """An IntrinsicCall nest executed round by round (the general path)."""

    __slots__ = (
        "stmt",
        "call",
        "rounds",
        "inputs",
        "out_tensor",
        "out_np",
        "bn_total",
        "batch_part",
        "eff",
        "bview",
        "identity_fill",
        "out_i",
        "pidx_o",
        "scat_ext",
        "out_slicer",
    )

    def __init__(self, **kw) -> None:
        for k, v in kw.items():
            setattr(self, k, v)

    def run(self, bufs, stats) -> None:
        call = self.call
        intrin = call.intrin
        out_buf = _get_buf(bufs, self.out_tensor)
        bn_total = self.bn_total
        batch_part = self.batch_part
        for rnd in self.rounds:
            operands: Dict[str, np.ndarray] = {}
            for bi, b in enumerate(self.inputs):
                src = _get_buf(bufs, b.program_tensor)
                vals = np.broadcast_to(
                    src[rnd.input_idx[bi]], batch_part + self.eff[bi]
                ).reshape((bn_total,) + self.eff[bi])
                reg_np = b.intrin_tensor.dtype.np_dtype
                if self.identity_fill[bi]:
                    reg = vals.reshape((bn_total,) + b.intrin_tensor.shape)
                    if reg.dtype != reg_np:
                        reg = reg.astype(reg_np)
                else:
                    reg = np.zeros((bn_total,) + b.intrin_tensor.shape, dtype=reg_np)
                    reg[(slice(None),) + self.bview[bi]] = vals
                operands[b.intrin_tensor.name] = reg

            result = intrin.execute_batch(operands, bn_total)
            if self.identity_fill[self.out_i]:
                out_vals = result.reshape((bn_total,) + self.eff[self.out_i]).astype(
                    self.out_np
                )
            else:
                out_vals = result[(slice(None),) + self.bview[self.out_i]].astype(
                    self.out_np
                )
            val = out_vals.reshape(batch_part + self.eff[self.out_i])

            if rnd.sel is None:
                out_buf[tuple(self.pidx_o)] = val[self.out_slicer]
            else:
                out_buf[tuple(rnd.sel_rows)] = np.broadcast_to(
                    val, batch_part + self.scat_ext
                ).reshape((bn_total,) + self.scat_ext)[rnd.sel]
            if stats:
                stats.intrinsic_rounds += 1
                stats.intrinsic_points += bn_total


class _BatchedIntrinsicStep:
    """Rounds stacked into slabs via affine-offset round slicing.

    Applies when every input address is affine in the sequential loop
    variables and the instruction is an integer accumulator dot product
    (``d = c + sum(...)`` with wraparound accumulation): contributions are
    computed for whole slabs of rounds with a zero accumulator, folded with
    exact modular integer addition, and accumulated + scattered once.
    """

    __slots__ = (
        "stmt",
        "call",
        "inputs",
        "acc_bi",
        "zero_acc",
        "acc_name",
        "out_tensor",
        "out_np",
        "rank",
        "bn_total",
        "n_rounds",
        "batch_part",
        "slabs",
        "sum_axes",
        "eff",
        "bview",
        "identity_fill",
        "out_i",
        "out_reg_shape",
        "acc_idx",
        "eff_acc",
        "pidx_o",
        "scat_ext",
        "out_slicer",
        "sel",
        "sel_rows",
    )

    def __init__(self, **kw) -> None:
        for k, v in kw.items():
            setattr(self, k, v)

    def run(self, bufs, stats) -> None:
        call = self.call
        intrin = call.intrin
        out_buf = _get_buf(bufs, self.out_tensor)
        rank = self.rank
        lead_slices = (slice(None),) * rank

        total = None
        for slab_shape, slab_idx in self.slabs:
            slab_n = int(np.prod(slab_shape))
            operands: Dict[str, np.ndarray] = {}
            for bi, b in enumerate(self.inputs):
                if bi == self.acc_bi:
                    continue
                src = _get_buf(bufs, b.program_tensor)
                vals = np.broadcast_to(src[slab_idx[bi]], slab_shape + self.eff[bi])
                reg_np = b.intrin_tensor.dtype.np_dtype
                if self.identity_fill[bi]:
                    reg = vals.reshape(slab_shape + b.intrin_tensor.shape)
                    if reg.dtype != reg_np:
                        reg = reg.astype(reg_np)
                else:
                    reg = np.zeros(slab_shape + b.intrin_tensor.shape, dtype=reg_np)
                    reg[lead_slices + self.bview[bi]] = vals
                # The register arrays are contiguous; flattening the leading
                # grid axes is free and keeps the hardware model on dense 2-D
                # iteration (numpy slows down markedly on high-rank arrays).
                operands[b.intrin_tensor.name] = np.ascontiguousarray(reg).reshape(
                    (slab_n,) + b.intrin_tensor.shape
                )
            # The accumulator register is fed zeros, so the model returns the
            # pure per-round contribution (broadcast over the leading axes).
            operands[self.acc_name] = self.zero_acc

            result = np.asarray(intrin.hardware_impl(operands))
            if result.shape != (slab_n,) + self.out_reg_shape:
                raise Unvectorizable(
                    "batched hardware model returned shape "
                    f"{result.shape}, expected {(slab_n,) + self.out_reg_shape}"
                )
            result = result.reshape(slab_shape + self.out_reg_shape)
            if self.identity_fill[self.out_i]:
                out_vals = result.reshape(slab_shape + self.eff[self.out_i])
            else:
                out_vals = result[lead_slices + self.bview[self.out_i]].reshape(
                    slab_shape + self.eff[self.out_i]
                )
            # Fold this slab's rounds: wraparound integer addition is
            # associative/commutative mod 2^n, bit-identical to the scalar
            # loop's per-round read-modify-write.
            partial = np.add.reduce(
                out_vals, axis=self.sum_axes, keepdims=True, dtype=out_vals.dtype
            )
            total = partial if total is None else total + partial

        # One accumulate + one scatter for the whole nest.
        acc_src = _get_buf(bufs, self.out_tensor)
        acc_vals = np.broadcast_to(
            acc_src[tuple(self.acc_idx)], self.batch_part + self.eff_acc
        )
        val = (acc_vals + total).astype(self.out_np)
        if self.sel is None:
            out_buf[tuple(self.pidx_o)] = val[self.out_slicer]
        else:
            out_buf[tuple(self.sel_rows)] = np.broadcast_to(
                val, self.batch_part + self.scat_ext
            ).reshape((self.bn_total,) + self.scat_ext)[self.sel]
        if stats:
            stats.intrinsic_rounds += self.n_rounds
            stats.intrinsic_points += self.n_rounds * self.bn_total
            stats.intrinsic_round_batches += len(self.slabs)


class _GridIntrinsicStep:
    """All rounds of an accumulator intrinsic in one grid-form dispatch.

    The fastest stacked path: non-accumulator operands are handed to the
    instruction's :attr:`~repro.isa.intrinsic.TensorIntrinsic.grid_impl` as
    zero-stride broadcast *views* over the full ``grid + intrinsic-axes``
    iteration space — nothing is materialised — and the model folds the
    sequential (reduction-revisit) axes into its own exact int32
    accumulation.  One gather per operand, one model call, one
    accumulate-and-scatter for the whole nest.
    """

    __slots__ = (
        "stmt",
        "call",
        "inputs",
        "acc_bi",
        "out_tensor",
        "out_np",
        "rank",
        "bn_total",
        "n_rounds",
        "grid",
        "iext",
        "seq_axes",
        "batch_part",
        "gather_idx",
        "eff",
        "bview",
        "identity_fill",
        "out_i",
        "out_reg_shape",
        "acc_idx",
        "eff_acc",
        "pidx_o",
        "scat_ext",
        "out_slicer",
        "sel",
        "sel_rows",
    )

    def __init__(self, **kw) -> None:
        for k, v in kw.items():
            setattr(self, k, v)

    def run(self, bufs, stats) -> None:
        intrin = self.call.intrin
        out_buf = _get_buf(bufs, self.out_tensor)
        full = self.grid + self.iext
        operands: Dict[str, np.ndarray] = {}
        for bi, b in enumerate(self.inputs):
            if bi == self.acc_bi:
                continue
            src = _get_buf(bufs, b.program_tensor)
            operands[b.intrin_tensor.name] = np.broadcast_to(
                src[self.gather_idx[bi]], full
            )
        result = np.asarray(intrin.grid_impl(operands, self.seq_axes))
        expected = self.bn_total * int(np.prod(self.out_reg_shape))
        if result.size != expected:
            raise Unvectorizable(
                f"grid-form model returned {result.size} elements, expected {expected}"
            )
        result = result.reshape(self.batch_part + self.out_reg_shape)
        out_vals = result[
            (slice(None),) * self.rank + self.bview[self.out_i]
        ].reshape(self.batch_part + self.eff[self.out_i])
        acc_vals = np.broadcast_to(
            out_buf[tuple(self.acc_idx)], self.batch_part + self.eff_acc
        )
        val = (acc_vals + out_vals).astype(self.out_np)
        if self.sel is None:
            out_buf[tuple(self.pidx_o)] = val[self.out_slicer]
        else:
            out_buf[tuple(self.sel_rows)] = np.broadcast_to(
                val, self.batch_part + self.scat_ext
            ).reshape((self.bn_total,) + self.scat_ext)[self.sel]
        if stats:
            stats.intrinsic_rounds += self.n_rounds
            stats.intrinsic_points += self.n_rounds * self.bn_total
            stats.intrinsic_round_batches += 1


_VECTOR_STEPS = (
    _DeadStep,
    _PlainStoreStep,
    _AccumStoreStep,
    _IntrinsicStep,
    _BatchedIntrinsicStep,
    _GridIntrinsicStep,
)


# ---------------------------------------------------------------------------
# The executable plan
# ---------------------------------------------------------------------------


class ExecutablePlan:
    """A compiled :class:`PrimFunc`: precomputed analysis + a step list.

    ``run(buffers)`` executes with zero re-analysis.  Plans are immutable
    after compilation and thread all mutable state through the caller's
    buffers, so one plan may be shared across threads and cached process-wide
    (:mod:`repro.tir.plan`).  Structurally identical functions may share one
    plan: pass the caller's ``func`` to :meth:`run` and its parameter buffers
    are rebound positionally.
    """

    def __init__(self, func: PrimFunc, steps, stats: PlanStats, strict: bool) -> None:
        self.func = func
        self.steps = steps
        self.stats = stats
        self.strict = strict
        self._interp = Interpreter(func)

    @property
    def fallback_nests(self) -> int:
        """Compile-time fallback count (0 = fully vectorized)."""
        return self.stats.fallback_nests

    def run(
        self,
        buffers: Dict[Tensor, np.ndarray],
        stats: Optional[EngineStats] = None,
        func: Optional[PrimFunc] = None,
    ) -> np.ndarray:
        """Execute the plan; same contract as ``Interpreter.run``.

        ``func`` identifies the caller's function when the plan was served
        from the cache for a structurally identical one: buffers keyed by the
        caller's parameter tensors are rebound to the plan's by position.
        """
        if func is not None and func is not self.func:
            remapped: Dict[Tensor, np.ndarray] = {}
            for mine, theirs in zip(self.func.params, func.params):
                if theirs in buffers:
                    remapped[mine] = buffers[theirs]
            buffers = remapped
        bufs = self._interp.bind_params(buffers)
        for step in self.steps:
            if isinstance(step, _FallbackStep):
                self._interp.run_stmt(step.stmt, bufs)
                if stats and step.counted:
                    stats.fallback_nests += 1
                    if len(stats.fallback_reasons) < 32:
                        stats.fallback_reasons.append(step.reason)
            elif isinstance(step, _AllocStep):
                step.run(bufs, stats)
            else:
                try:
                    step.run(bufs, stats)
                except Unvectorizable as exc:
                    if self.strict:
                        raise
                    self._interp.run_stmt(step.stmt, bufs)
                    if stats:
                        stats.fallback_nests += 1
                        if len(stats.fallback_reasons) < 32:
                            stats.fallback_reasons.append(str(exc))
                    continue
                if stats and isinstance(step, _VECTOR_STEPS):
                    stats.vector_nests += 1
        return bufs[self.func.output]


# ---------------------------------------------------------------------------
# The plan compiler — the analysis phase
# ---------------------------------------------------------------------------


# The static verification tier, bound on first plan compile.  The analysis
# package imports repro.tir.stmt at module level, so a module-level import
# here would make the pair unimportable from the analysis side
# (``python -m repro.analysis`` loads repro.analysis before repro.tir).
check_nest_bounds = None
_AnalysisNest = None
_Interval = None
_expr_interval = None


def _bind_analysis() -> None:
    global check_nest_bounds, _AnalysisNest, _Interval, _expr_interval
    if _Interval is not None:
        return
    from ..analysis.bounds import check_nest_bounds as _cnb
    from ..analysis.framework import Nest as _nest
    from ..analysis.interval import Interval as _iv, expr_interval as _ei

    check_nest_bounds, _AnalysisNest, _Interval, _expr_interval = _cnb, _nest, _iv, _ei


class _PlanCompiler:
    def __init__(self, func: PrimFunc, strict: bool = False) -> None:
        _bind_analysis()
        self.func = func
        self.strict = strict
        self.steps: list = []
        self.stats = PlanStats()

    def compile(self) -> ExecutablePlan:
        self._walk(self.func.body)
        return ExecutablePlan(self.func, self.steps, self.stats, self.strict)

    # -- statement walk -----------------------------------------------------
    def _walk(self, stmt: Stmt) -> None:
        if isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                self._walk(s)
        elif isinstance(stmt, AttrStmt):
            self._walk(stmt.body)
        elif isinstance(stmt, Allocate):
            self.steps.append(_AllocStep(stmt.tensor))
            self._walk(stmt.body)
        elif isinstance(stmt, (For, Store, IfThenElse, IntrinsicCall)):
            self._nest(stmt)
        elif isinstance(stmt, Evaluate):
            self.steps.append(_FallbackStep(stmt, "Evaluate statement", counted=False))
        else:
            raise TypeError(f"cannot compile statement {type(stmt).__name__}")

    def _nest(self, stmt: Stmt) -> None:
        try:
            step = self._compile_nest(stmt)
        except Unvectorizable as exc:
            if self.strict:
                raise
            self.stats.fallback_nests += 1
            if len(self.stats.fallback_reasons) < 32:
                self.stats.fallback_reasons.append(str(exc))
            self.steps.append(_FallbackStep(stmt, str(exc)))
            return
        self.stats.vector_nests += 1
        self.steps.append(step)

    def _compile_nest(self, nest: Stmt):
        stmt = nest
        axes: List[Tuple[E.Var, int]] = []
        guards: List[E.Expr] = []
        while True:
            if isinstance(stmt, For):
                axes.append((stmt.var, stmt.extent))
                stmt = stmt.body
            elif isinstance(stmt, IfThenElse) and stmt.else_case is None:
                guards.append(stmt.condition)
                stmt = stmt.then_case
            elif isinstance(stmt, AttrStmt):
                stmt = stmt.body
            else:
                break
        if isinstance(stmt, Store):
            return self._compile_store(nest, axes, guards, stmt)
        if isinstance(stmt, IntrinsicCall):
            return self._compile_intrinsic(nest, axes, guards, stmt)
        raise Unvectorizable(
            f"loop body is a {type(stmt).__name__}, not a store or intrinsic call"
        )

    def _make_ctx(self, axes, clip) -> _CompileCtx:
        rank = len(axes)
        vars = {
            var: _axis_array(i, extent, rank) for i, (var, extent) in enumerate(axes)
        }
        env = {var: _Interval(0, extent - 1) for var, extent in axes}
        return _CompileCtx(rank, vars, tuple(var for var, _ in axes), clip, env)

    def _count_proof(self, nest, axes, guards, body) -> None:
        """Record whether the static bounds analysis proves this nest safe
        (guard-refined proofs included) — surfaced as ``PlanStats.proved_nests``."""
        proof, _diags = check_nest_bounds(
            _AnalysisNest(nest, list(axes), list(guards), body)
        )
        if proof.bounds_proved:
            self.stats.proved_nests += 1

    def _clip_elidable(self, i_expr: E.Expr, extent: int, ctx: _CompileCtx) -> bool:
        """Whether the protective clamp on this index dimension is provably
        the identity: the static interval of the index stays inside
        ``[0, extent)`` at every grid point, masked ones included."""
        if ctx.env is None:
            return False
        iv = _expr_interval(i_expr, ctx.env)
        if iv is not None and iv.within(0, extent - 1):
            self.stats.elided_checks += 1
            return True
        return False

    # -- static (buffer-independent) evaluation -----------------------------
    def _static_index(self, expr: E.Expr, ctx: _CompileCtx):
        """Evaluate an index expression over the grid at compile time.

        Affine expressions go through the memoized
        :func:`~repro.dsl.expr.extract_linear` decomposition — the grid is
        assembled as ``constant + sum(coeff * axis_array)`` from the cached
        coefficients — and everything else falls back to the generic static
        evaluator.  Raises :class:`_Dynamic` when the expression reads
        buffer contents.
        """
        if isinstance(expr, (E.Add, E.Sub, E.Mul, E.Cast, E.Var, E.Const)):
            lin = E.extract_linear(expr, ctx.order)
            if lin is not None:
                coeffs, const = lin
                total = const
                for v, c in coeffs.items():
                    a = ctx.vars[v]
                    total = total + (a if c == 1 else a * c)
                return total
        return self._seval(expr, ctx)

    def _seval(self, expr: E.Expr, ctx: _CompileCtx):
        """Static grid evaluation — the compile-time twin of the old
        ``_veval``, with buffer reads surfacing as :class:`_Dynamic`."""
        if isinstance(expr, E.Const):
            return expr.value
        if isinstance(expr, E.Var):
            try:
                return ctx.vars[expr]
            except KeyError:
                raise Unvectorizable(f"unbound variable {expr.name!r}")
        if isinstance(expr, E.Cast):
            v = self._seval(expr.value, ctx)
            np_dtype = expr.dtype.np_dtype
            if isinstance(v, np.ndarray):
                return v.astype(np_dtype)
            return np_dtype.type(v)
        if isinstance(expr, E.TensorLoad):
            raise _Dynamic(expr.tensor.name)
        if isinstance(expr, E.BinaryOp):
            a = self._static_index(expr.a, ctx)
            b = self._static_index(expr.b, ctx)
            a, b = _align([a, b], ctx.rank)
            if isinstance(expr, E.Add):
                return a + b
            if isinstance(expr, E.Sub):
                return a - b
            if isinstance(expr, E.Mul):
                return a * b
            if isinstance(expr, E.FloorDiv):
                return a // b
            if isinstance(expr, E.Mod):
                return a % b
            if isinstance(expr, E.Min):
                if np.ndim(a) == 0 and np.ndim(b) == 0:
                    return min(a, b)
                return np.minimum(a, b)
            if np.ndim(a) == 0 and np.ndim(b) == 0:
                return max(a, b)
            return np.maximum(a, b)
        if isinstance(expr, E.Compare):
            a = self._static_index(expr.a, ctx)
            b = self._static_index(expr.b, ctx)
            a, b = _align([a, b], ctx.rank)
            return {
                "==": lambda: a == b,
                "!=": lambda: a != b,
                "<": lambda: a < b,
                "<=": lambda: a <= b,
                ">": lambda: a > b,
                ">=": lambda: a >= b,
            }[expr.op]()
        if isinstance(expr, E.Select):
            cond = self._seval(expr.cond, ctx)
            if np.ndim(cond) == 0:
                branch = expr.true_value if bool(cond) else expr.false_value
                return self._seval(branch, ctx)
            t = self._seval(expr.true_value, ctx)
            f = self._seval(expr.false_value, ctx)
            cond, t, f = _align([cond, t, f], ctx.rank)
            return np.where(cond, t, f)
        if isinstance(expr, E.Ramp):
            base = self._seval(expr.base, ctx)
            if np.ndim(base) > ctx.rank:
                raise Unvectorizable("nested vector lanes (Ramp of a vector)")
            barr = np.broadcast_to(
                np.asarray(base), (1,) * (ctx.rank - np.ndim(base)) + np.shape(base)
            )
            return barr[..., None] + np.arange(expr.lanes, dtype=np.int64) * expr.stride
        if isinstance(expr, E.Broadcast):
            v = self._seval(expr.value, ctx)
            if np.ndim(v) > ctx.rank:
                raise Unvectorizable("nested vector lanes (Broadcast of a vector)")
            varr = np.broadcast_to(
                np.asarray(v), (1,) * (ctx.rank - np.ndim(v)) + np.shape(v)
            )
            return np.broadcast_to(varr[..., None], varr.shape + (expr.lanes,))
        if isinstance(expr, E.Shuffle):
            parts = []
            for v in expr.vectors:
                p = self._seval(v, ctx)
                if np.ndim(p) <= ctx.rank:
                    p = np.broadcast_to(
                        np.asarray(p), (1,) * (ctx.rank - np.ndim(p)) + np.shape(p)
                    )[..., None]
                parts.append(np.asarray(p))
            lead = np.broadcast_shapes(*(p.shape[:-1] for p in parts))
            parts = [np.broadcast_to(p, lead + (p.shape[-1],)) for p in parts]
            return np.concatenate(parts, axis=-1)
        if isinstance(expr, E.Reduce):
            return self._seval_reduce(expr, ctx)
        raise Unvectorizable(f"cannot vectorize expression {type(expr).__name__}")

    def _seval_reduce(self, expr: E.Reduce, ctx: _CompileCtx):
        sub = self._reduce_ctx(expr, ctx)
        src = self._seval(expr.source, sub)
        return self._fold_reduce(expr, src, ctx.rank, sub.rank)

    def _reduce_ctx(self, expr: E.Reduce, ctx: _CompileCtx) -> _CompileCtx:
        k = len(expr.axes)
        sub_rank = ctx.rank + k
        sub_vars = {}
        for v, a in ctx.vars.items():
            sub_vars[v] = (
                np.asarray(a).reshape(np.shape(a) + (1,) * k) if np.ndim(a) else a
            )
        for j, ax in enumerate(expr.axes):
            sub_vars[ax.var] = _axis_array(ctx.rank + j, ax.extent, sub_rank)
        order = ctx.order + tuple(ax.var for ax in expr.axes)
        env = None
        if ctx.env is not None:
            env = dict(ctx.env)
            for ax in expr.axes:
                env[ax.var] = _Interval(0, ax.extent - 1)
        return _CompileCtx(sub_rank, sub_vars, order, ctx.clip, env)

    @staticmethod
    def _fold_reduce(expr: E.Reduce, src, rank: int, sub_rank: int):
        if np.ndim(src) > sub_rank:
            raise Unvectorizable("vector lanes inside a reduction")
        src = np.broadcast_to(
            np.asarray(src), (1,) * (sub_rank - np.ndim(src)) + np.shape(src)
        )
        flat = src.reshape(src.shape[:rank] + (-1,))
        if expr.combiner == "max":
            return np.maximum.reduce(flat, axis=-1)
        if expr.combiner == "min":
            return np.minimum.reduce(flat, axis=-1)
        if flat.dtype.kind in "iub":
            return np.add.reduce(flat, axis=-1, dtype=flat.dtype)
        # Float sums fold sequentially to mirror the interpreter's order.
        acc = flat[..., 0]
        for j in range(1, flat.shape[-1]):
            acc = acc + flat[..., j]
        return acc

    def _static_mask(self, guards, ctx):
        """Combine guard conditions into one boolean mask (or None/False)."""
        mask = None
        for g in guards:
            try:
                m = self._seval(g, ctx)
            except _Dynamic:
                raise Unvectorizable("guard condition reads tensor contents")
            if mask is None:
                mask = m
            else:
                a, b = _align([mask, m], ctx.rank)
                mask = np.logical_and(a, b)
        if mask is not None and np.ndim(mask) == 0:
            if not bool(mask):
                return False  # statically dead nest
            mask = None
        return mask

    # -- value compilation (buffer-dependent expressions → closures) --------
    def _compile_value(self, expr: E.Expr, ctx: _CompileCtx) -> Callable:
        """Compile ``expr`` into ``fn(bufs) -> value``.

        Buffer-independent subtrees are evaluated once, here, at compile
        time; loads gather through precomputed index grids; everything else
        becomes a closure combining its children's closures.
        """
        if not any(isinstance(n, E.TensorLoad) for n in E.post_order(expr)):
            v = self._seval(expr, ctx)
            return lambda bufs: v
        if isinstance(expr, E.TensorLoad):
            return self._compile_load(expr, ctx)
        if isinstance(expr, E.Cast):
            inner = self._compile_value(expr.value, ctx)
            np_dtype = expr.dtype.np_dtype

            def fn_cast(bufs):
                v = inner(bufs)
                if isinstance(v, np.ndarray):
                    return v.astype(np_dtype)
                return np_dtype.type(v)

            return fn_cast
        if isinstance(expr, E.BinaryOp):
            a_fn = self._compile_value(expr.a, ctx)
            b_fn = self._compile_value(expr.b, ctx)
            rank = ctx.rank
            cls = type(expr)
            if cls in (E.Min, E.Max):
                pick = min if cls is E.Min else max
                ufunc = np.minimum if cls is E.Min else np.maximum

                def fn_minmax(bufs):
                    a, b = _align([a_fn(bufs), b_fn(bufs)], rank)
                    if np.ndim(a) == 0 and np.ndim(b) == 0:
                        return pick(a, b)
                    return ufunc(a, b)

                return fn_minmax
            binop = {
                E.Add: lambda a, b: a + b,
                E.Sub: lambda a, b: a - b,
                E.Mul: lambda a, b: a * b,
                E.FloorDiv: lambda a, b: a // b,
                E.Mod: lambda a, b: a % b,
            }[cls]

            def fn_bin(bufs):
                a, b = _align([a_fn(bufs), b_fn(bufs)], rank)
                return binop(a, b)

            return fn_bin
        if isinstance(expr, E.Compare):
            a_fn = self._compile_value(expr.a, ctx)
            b_fn = self._compile_value(expr.b, ctx)
            rank = ctx.rank
            import operator

            cmp = {
                "==": operator.eq,
                "!=": operator.ne,
                "<": operator.lt,
                "<=": operator.le,
                ">": operator.gt,
                ">=": operator.ge,
            }[expr.op]

            def fn_cmp(bufs):
                a, b = _align([a_fn(bufs), b_fn(bufs)], rank)
                return cmp(a, b)

            return fn_cmp
        if isinstance(expr, E.Select):
            cond_fn = self._compile_value(expr.cond, ctx)
            t_fn = self._compile_value(expr.true_value, ctx)
            f_fn = self._compile_value(expr.false_value, ctx)
            rank = ctx.rank

            def fn_select(bufs):
                cond = cond_fn(bufs)
                if np.ndim(cond) == 0:
                    return t_fn(bufs) if bool(cond) else f_fn(bufs)
                cond, t, f = _align([cond, t_fn(bufs), f_fn(bufs)], rank)
                return np.where(cond, t, f)

            return fn_select
        if isinstance(expr, E.Reduce):
            sub = self._reduce_ctx(expr, ctx)
            src_fn = self._compile_value(expr.source, sub)
            rank, sub_rank = ctx.rank, sub.rank
            fold = self._fold_reduce

            def fn_reduce(bufs):
                return fold(expr, src_fn(bufs), rank, sub_rank)

            return fn_reduce
        if isinstance(expr, E.Ramp):
            base_fn = self._compile_value(expr.base, ctx)
            rank = ctx.rank
            lanes, stride = expr.lanes, expr.stride

            def fn_ramp(bufs):
                base = base_fn(bufs)
                if np.ndim(base) > rank:
                    raise Unvectorizable("nested vector lanes (Ramp of a vector)")
                barr = np.broadcast_to(
                    np.asarray(base), (1,) * (rank - np.ndim(base)) + np.shape(base)
                )
                return barr[..., None] + np.arange(lanes, dtype=np.int64) * stride

            return fn_ramp
        if isinstance(expr, E.Broadcast):
            v_fn = self._compile_value(expr.value, ctx)
            rank = ctx.rank
            lanes = expr.lanes

            def fn_bcast(bufs):
                v = v_fn(bufs)
                if np.ndim(v) > rank:
                    raise Unvectorizable("nested vector lanes (Broadcast of a vector)")
                varr = np.broadcast_to(
                    np.asarray(v), (1,) * (rank - np.ndim(v)) + np.shape(v)
                )
                return np.broadcast_to(varr[..., None], varr.shape + (lanes,))

            return fn_bcast
        if isinstance(expr, E.Shuffle):
            part_fns = [self._compile_value(v, ctx) for v in expr.vectors]
            rank = ctx.rank

            def fn_shuffle(bufs):
                parts = []
                for f in part_fns:
                    p = f(bufs)
                    if np.ndim(p) <= rank:
                        p = np.broadcast_to(
                            np.asarray(p), (1,) * (rank - np.ndim(p)) + np.shape(p)
                        )[..., None]
                    parts.append(np.asarray(p))
                lead = np.broadcast_shapes(*(p.shape[:-1] for p in parts))
                parts = [np.broadcast_to(p, lead + (p.shape[-1],)) for p in parts]
                return np.concatenate(parts, axis=-1)

            return fn_shuffle
        raise Unvectorizable(f"cannot vectorize expression {type(expr).__name__}")

    def _compile_load(self, expr: E.TensorLoad, ctx: _CompileCtx) -> Callable:
        tensor = expr.tensor
        try:
            idx = _align([self._static_index(i, ctx) for i in expr.indices], ctx.rank)
        except _Dynamic:
            idx = None
        if idx is not None:
            if all(np.ndim(i) == 0 for i in idx):
                point = tuple(int(i) for i in idx)
                return lambda bufs: _get_buf(bufs, tensor)[point]
            arrays = []
            for i_expr, i, d in zip(expr.indices, idx, tensor.shape):
                a = np.asarray(i)
                if ctx.clip and not self._clip_elidable(i_expr, d, ctx):
                    a = np.clip(a, 0, d - 1)
                arrays.append(a)
            gather = tuple(arrays)
            return lambda bufs: _get_buf(bufs, tensor)[gather]
        # Indirect addressing: index expressions themselves read buffers.
        idx_fns = [self._compile_value(i, ctx) for i in expr.indices]
        rank, clip = ctx.rank, ctx.clip
        elided = [
            clip and self._clip_elidable(i_expr, d, ctx)
            for i_expr, d in zip(expr.indices, tensor.shape)
        ]

        def fn_load(bufs):
            buf = _get_buf(bufs, tensor)
            idx = _align([f(bufs) for f in idx_fns], rank)
            if all(np.ndim(i) == 0 for i in idx):
                return buf[tuple(int(i) for i in idx)]
            arrays = []
            for i, d, skip in zip(idx, buf.shape, elided):
                a = np.asarray(i)
                if clip and not skip:
                    a = np.clip(a, 0, d - 1)
                arrays.append(a)
            return buf[tuple(arrays)]

        return fn_load

    # -- Store nests --------------------------------------------------------
    def _compile_store(self, nest, axes, guards, store: Store):
        rank = len(axes)
        grid = tuple(extent for _, extent in axes)
        ctx = self._make_ctx(axes, clip=bool(guards))
        out_np = store.tensor.dtype.np_dtype

        mask = self._static_mask(guards, ctx)
        if mask is False:
            return _DeadStep(nest)
        self._count_proof(nest, axes, guards, store)

        acc = self._match_accumulation(store)
        try:
            idx = [self._static_index(i, ctx) for i in store.indices]
        except _Dynamic:
            raise Unvectorizable("store indices read tensor contents")
        if mask is not None:
            clipped = []
            for i_expr, i, d in zip(store.indices, idx, store.tensor.shape):
                if self._clip_elidable(i_expr, d, ctx):
                    clipped.append(i)
                elif np.ndim(i):
                    clipped.append(np.clip(np.asarray(i), 0, d - 1))
                else:
                    clipped.append(min(max(int(i), 0), d - 1))
            idx = clipped

        if acc is None:
            value_fn = self._compile_value(store.value, ctx)
            return _PlainStoreStep(nest, store.tensor, idx, value_fn, mask, rank, out_np)

        rest_expr, combiner = acc
        if any(np.ndim(i) > rank for i in idx):
            raise Unvectorizable("accumulating store over vector lanes")
        # Lane check: with no vector constructor anywhere in the folded
        # value, the compiled closure can never grow a lane axis — the
        # runtime ndim re-check is dead and the step skips it.
        check_lanes = any(
            isinstance(n, (E.Ramp, E.Broadcast, E.Shuffle))
            for n in E.post_order(rest_expr)
        )
        if not check_lanes:
            self.stats.elided_checks += 1
        dep: set = set()
        for i_expr in store.indices:
            dep.update(E.free_vars(i_expr))
        red_pos = [k for k, (v, _) in enumerate(axes) if v not in dep]
        dp_pos = [k for k in range(rank) if k not in red_pos]
        perm = dp_pos + red_pos
        dp_shape = tuple(grid[k] for k in dp_pos)

        def to_dp(a):
            """Reduce a grid-broadcastable array to data-parallel shape."""
            a = np.broadcast_to(np.asarray(a), grid)
            a = np.transpose(a, perm)
            return a[(Ellipsis,) + (0,) * len(red_pos)]

        idx_dp = tuple(to_dp(i) for i in idx)
        if mask is not None:
            mask_b = np.broadcast_to(np.asarray(mask), grid)
            mask_m = np.transpose(mask_b, perm).reshape(dp_shape + (-1,))
            sel = mask_m.any(axis=-1)
        else:
            mask_m = None
            sel = None
        value_fn = self._compile_value(rest_expr, ctx)
        return _AccumStoreStep(
            nest,
            store.tensor,
            value_fn,
            combiner,
            idx_dp,
            grid,
            perm,
            dp_shape,
            mask_m,
            sel,
            rank,
            out_np,
            store.tensor.dtype.bits,
            store.tensor.dtype.is_integer,
            check_lanes,
        )

    def _match_accumulation(self, store: Store):
        """Recognise ``t[i] = combine(t[i], rest)`` read-modify-write stores.

        Returns ``(rest, combiner)`` when the store value combines the stored
        element itself with an expression that does not otherwise read the
        target tensor; ``None`` for plain stores.  Any other self-reference
        is a loop-carried dependence the engine cannot reorder.
        """
        v = store.value
        for cls, comb in ((E.Add, "sum"), (E.Max, "max"), (E.Min, "min")):
            if type(v) is cls:
                for load, rest in ((v.a, v.b), (v.b, v.a)):
                    if (
                        isinstance(load, E.TensorLoad)
                        and load.tensor is store.tensor
                        and len(load.indices) == len(store.indices)
                        and all(
                            E.structural_equal(x, y)
                            for x, y in zip(load.indices, store.indices)
                        )
                    ):
                        if any(
                            isinstance(n, E.TensorLoad) and n.tensor is store.tensor
                            for n in E.post_order(rest)
                        ):
                            raise Unvectorizable(
                                "store reads its target tensor beyond the accumulator"
                            )
                        return rest, comb
                break
        if any(
            isinstance(n, E.TensorLoad) and n.tensor is store.tensor
            for n in E.post_order(store.value)
        ):
            raise Unvectorizable("store value reads its target tensor (not an accumulation)")
        return None

    # -- IntrinsicCall nests -------------------------------------------------
    def _compile_intrinsic(self, nest, axes, guards, call: IntrinsicCall):
        rank = len(axes)
        grid = tuple(extent for _, extent in axes)
        outer_vars = {var for var, _ in axes}
        ctx = self._make_ctx(axes, clip=False)

        for g in guards:
            if not set(E.free_vars(g)) <= outer_vars:
                raise Unvectorizable("intrinsic guard uses non-loop variables")
        mask = self._static_mask(guards, ctx)
        if mask is False:
            return _DeadStep(nest)
        self._count_proof(nest, axes, guards, call)

        intrin = call.intrin
        iaxes = call.axes
        m = len(iaxes)
        iext = tuple(ax.extent for ax in iaxes)
        full_rank = rank + m
        fvars = {v: a.reshape(a.shape + (1,) * m) for v, a in ctx.vars.items()}
        for j, ax in enumerate(iaxes):
            fvars[ax.var] = _axis_array(rank + j, ax.extent, full_rank)
        fenv = dict(ctx.env)
        for ax in iaxes:
            fenv[ax.var] = _Interval(0, ax.extent - 1)
        fctx = _CompileCtx(
            full_rank,
            fvars,
            ctx.order + tuple(ax.var for ax in iaxes),
            clip=False,
            env=fenv,
        )
        ictx = _CompileCtx(
            m,
            {ax.var: _axis_array(j, ax.extent, m) for j, ax in enumerate(iaxes)},
            tuple(ax.var for ax in iaxes),
            clip=False,
            env={ax.var: _Interval(0, ax.extent - 1) for ax in iaxes},
        )

        out_b = call.output
        bindings = list(call.inputs) + [out_b]
        prog_idx: Dict[int, list] = {}
        reg_idx: Dict[int, list] = {}
        try:
            for bi, b in enumerate(bindings):
                pidx = [self._static_index(i, fctx) for i in b.program_indices]
                ridx = [self._static_index(i, ictx) for i in b.intrin_indices]
                if any(np.ndim(p) > full_rank for p in pidx) or any(
                    np.ndim(r) > m for r in ridx
                ):
                    raise Unvectorizable("vector lanes in intrinsic operand indices")
                prog_idx[bi] = pidx
                reg_idx[bi] = ridx
        except _Dynamic:
            raise Unvectorizable("intrinsic operand indices read tensor contents")

        # Operands reading the destination tensor must address exactly the
        # element the call writes (the accumulator pattern) — otherwise a
        # batched round could observe writes out of order.
        for bi, b in enumerate(bindings[:-1]):
            if b.program_tensor is out_b.program_tensor:
                if len(b.program_indices) != len(out_b.program_indices) or not all(
                    E.structural_equal(x, y)
                    for x, y in zip(b.program_indices, out_b.program_indices)
                ):
                    raise Unvectorizable(
                        "intrinsic reads the output tensor at a different address"
                    )

        # Outer axes the destination tile depends on are batchable (tiles are
        # disjoint across them); the rest revisit tiles and run as sequential
        # rounds, preserving the accumulation order.
        out_dep: set = set()
        for i_expr in out_b.program_indices:
            out_dep.update(E.free_vars(i_expr))
        batch_pos = [k for k, (v, _) in enumerate(axes) if v in out_dep]
        seq_pos = [k for k in range(rank) if k not in batch_pos]
        batch_ext = [grid[k] for k in batch_pos]
        seq_ext = [grid[k] for k in seq_pos]
        bn_total = int(np.prod(batch_ext)) if batch_ext else 1
        n_rounds = int(np.prod(seq_ext)) if seq_ext else 1

        batch_part = tuple(grid[k] if k in batch_pos else 1 for k in range(rank))
        out_np = out_b.program_tensor.dtype.np_dtype
        out_i = len(bindings) - 1
        seq_vars = {axes[k][0] for k in seq_pos}

        # Per binding: the register-index views (broadcastable over the
        # intrinsic grid), their broadcast shape ``eff`` (1 along intrinsic
        # axes the register ignores), and whether the register fill is the
        # identity layout (a plain reshape instead of a fancy scatter).
        bview: Dict[int, tuple] = {}
        eff: Dict[int, tuple] = {}
        identity_fill: Dict[int, bool] = {}
        for bi, b in enumerate(bindings):
            views = []
            for r in reg_idx[bi]:
                a = np.asarray(r)
                views.append(a.reshape((1,) * m) if a.ndim == 0 else a)
            shape = np.broadcast_shapes(*(v.shape for v in views)) if views else ()
            eff[bi] = (1,) * (m - len(shape)) + tuple(shape)
            bview[bi] = tuple(views)
            reg_shape = b.intrin_tensor.shape
            if views and eff[bi] == iext:
                flat = np.ravel_multi_index(
                    tuple(np.broadcast_to(v, iext) for v in views), reg_shape
                ).reshape(-1)
                identity_fill[bi] = flat.size == int(
                    np.prod(reg_shape)
                ) and np.array_equal(flat, np.arange(flat.size))
            else:
                identity_fill[bi] = False

        def eff_sliced(pidx, bi):
            """Drop intrinsic-axis iterations whose register writes are
            overwritten anyway: where the register index ignores an axis,
            only that axis's last iteration survives in the scalar loop."""
            out = []
            for a in pidx:
                a = np.asarray(a)
                if a.ndim == 0:
                    out.append(a)
                    continue
                index = [slice(None)] * a.ndim
                for j in range(m):
                    if eff[bi][j] == 1 and a.shape[rank + j] > 1:
                        index[rank + j] = slice(a.shape[rank + j] - 1, None)
                out.append(a[tuple(index)])
            return out

        # Pre-slice (and, under a mask, pre-clamp) the input index views once:
        # both transforms are round-independent on the small broadcastable
        # views.  Masked-out batch rows then gather in-range garbage that the
        # guarded scatter discards — far cheaper than materialising selected
        # index rows every round.
        gather_idx: Dict[int, list] = {}
        for bi, b in enumerate(call.inputs):
            pidx = eff_sliced(prog_idx[bi], bi)
            if mask is not None:
                pidx = [
                    i
                    if self._clip_elidable(i_expr, d, fctx)
                    else np.clip(np.asarray(i), 0, d - 1)
                    for i_expr, i, d in zip(
                        b.program_indices, pidx, b.program_tensor.shape
                    )
                ]
            gather_idx[bi] = pidx

        def round_slice(arr, spt, length=1):
            """Slice the sequential axes at ``spt``, keeping rank (views only).

            The result stays *broadcastable* (size-1 dims preserved): numpy's
            fancy indexing broadcasts index arrays internally, so gathers and
            scatters never materialise full integer index grids."""
            a = np.asarray(arr)
            if a.ndim == 0:
                return a
            index = [slice(None)] * a.ndim
            for k, s in zip(seq_pos, spt):
                if s is None:
                    continue
                index[k] = slice(s, s + length) if a.shape[k] > 1 else slice(0, 1)
            return a[tuple(index)]

        # Scatter plan for the output.  The output's program indices never
        # depend on the sequential axes (those are, by definition, the axes
        # the destination tile ignores), so the index rows are
        # round-invariant; the guard mask is too unless a guard mentions a
        # sequential variable.
        pidx_o = [np.asarray(i) for i in prog_idx[out_i]]
        scat_ext = tuple(
            np.broadcast_shapes(
                *((np.shape(i)[rank + j],) for i in pidx_o if np.ndim(i)),
                (eff[out_i][j],),
            )[0]
            for j in range(m)
        )
        mask_invariant = mask is None or not any(
            seq_vars & set(E.free_vars(g)) for g in guards
        )

        def select_rows(sel_local):
            return [
                np.broadcast_to(i, batch_part + scat_ext).reshape(
                    (bn_total,) + scat_ext
                )[sel_local]
                for i in pidx_o
            ]

        # "Last write wins" slicer for the unmasked scatter: where the target
        # indices ignore an axis the value varies over, only the last
        # iteration survives — static, because the value shape is static.
        val_shape = batch_part + eff[out_i]
        bshape = np.broadcast_shapes(*(np.shape(i) for i in pidx_o))
        bfull = (1,) * (len(val_shape) - len(bshape)) + tuple(bshape)
        out_slicer = tuple(
            slice(d - 1, None) if t == 1 and d != 1 else slice(None)
            for t, d in zip(bfull, val_shape)
        )

        sel = None
        sel_rows = None
        if mask is not None and mask_invariant:
            mflat = np.broadcast_to(np.asarray(mask), batch_part[:rank]).reshape(-1)
            sel = np.nonzero(mflat)[0]
            if sel.size == 0:
                return _DeadStep(nest)
            sel_rows = select_rows(sel)

        common = dict(
            stmt=nest,
            call=call,
            inputs=list(call.inputs),
            out_tensor=out_b.program_tensor,
            out_np=out_np,
            bn_total=bn_total,
            batch_part=batch_part,
            eff=eff,
            bview=bview,
            identity_fill=identity_fill,
            out_i=out_i,
            pidx_o=pidx_o,
            scat_ext=scat_ext,
            out_slicer=out_slicer,
        )

        acc_bi = self._round_stackable(
            call, bindings, eff, mask, mask_invariant, n_rounds, seq_vars, fctx
        )
        if acc_bi is not None and intrin.grid_impl is not None:
            raw_elems = sum(
                int(
                    np.prod(
                        np.broadcast_shapes(*(np.shape(v) for v in gather_idx[bi]))
                    )
                )
                for bi in range(len(call.inputs))
                if bi != acc_bi
            )
            if raw_elems <= _GRID_GATHER_BUDGET:
                acc_b = call.inputs[acc_bi]
                return _GridIntrinsicStep(
                    acc_bi=acc_bi,
                    rank=rank,
                    n_rounds=n_rounds,
                    grid=grid,
                    iext=iext,
                    seq_axes=tuple(seq_pos),
                    gather_idx={
                        bi: tuple(gather_idx[bi]) for bi in range(len(call.inputs))
                    },
                    out_reg_shape=out_b.intrin_tensor.shape,
                    acc_idx=tuple(gather_idx[acc_bi]),
                    eff_acc=eff[acc_bi],
                    sel=sel,
                    sel_rows=sel_rows,
                    **common,
                )
        if acc_bi is not None:
            # Slab the sequential rounds along the outermost sequential axis,
            # bounding the stacked operand size to the element budget.
            max_reg = max(
                int(np.prod(b.intrin_tensor.shape)) for b in bindings
            )
            inner = int(np.prod(seq_ext[1:])) if len(seq_ext) > 1 else 1
            per_outer = max(1, bn_total * inner * max_reg)
            group = max(1, _ROUND_BATCH_BUDGET // per_outer)
            slab_axis = seq_pos[0]
            slabs = []
            for s0 in range(0, seq_ext[0], group):
                length = min(group, seq_ext[0] - s0)
                slab_shape = tuple(
                    length if k == slab_axis else grid[k] for k in range(rank)
                )
                spt = (s0,) + (None,) * (len(seq_pos) - 1)
                slab_idx = {
                    bi: tuple(round_slice(i, spt, length) for i in gather_idx[bi])
                    for bi in range(len(call.inputs))
                    if bi != acc_bi
                }
                slabs.append((slab_shape, slab_idx))
            acc_b = call.inputs[acc_bi]
            return _BatchedIntrinsicStep(
                acc_bi=acc_bi,
                zero_acc=np.zeros(
                    acc_b.intrin_tensor.shape, dtype=acc_b.intrin_tensor.dtype.np_dtype
                ),
                acc_name=acc_b.intrin_tensor.name,
                rank=rank,
                n_rounds=n_rounds,
                slabs=slabs,
                sum_axes=tuple(seq_pos),
                out_reg_shape=out_b.intrin_tensor.shape,
                acc_idx=tuple(gather_idx[acc_bi]),
                eff_acc=eff[acc_bi],
                sel=sel,
                sel_rows=sel_rows,
                **common,
            )

        # Sequential rounds (the general path): precompute every round's
        # sliced index views and — when a guard mentions a sequential
        # variable — its per-round selection rows.
        rounds = []
        for spt in np.ndindex(*seq_ext):
            if mask is not None and not mask_invariant:
                mflat = np.broadcast_to(
                    round_slice(mask, spt), batch_part[:rank]
                ).reshape(-1)
                rsel = np.nonzero(mflat)[0]
                if rsel.size == 0:
                    continue
                rsel_rows = select_rows(rsel)
            else:
                rsel = sel
                rsel_rows = sel_rows
            input_idx = [
                tuple(round_slice(i, spt) for i in gather_idx[bi])
                for bi in range(len(call.inputs))
            ]
            rounds.append(_IntrinsicRound(input_idx, rsel, rsel_rows))
        return _IntrinsicStep(rounds=rounds, **common)

    def _round_stackable(
        self, call, bindings, eff, mask, mask_invariant, n_rounds, seq_vars, fctx
    ) -> Optional[int]:
        """Whether sequential rounds may be stacked into batched slabs.

        Returns the index (into ``call.inputs``) of the accumulator operand
        when stacking is sound, else ``None``.  Requirements:

        * more than one round, an invariant (or absent) guard mask;
        * a batch-polymorphic hardware model;
        * integer accumulation — the instruction's DSL description must be
          ``d[...] = c[...] + sum(...)`` with exactly one operand (``c``)
          bound to the destination buffer at the destination address, so
          ``model(acc, x) = acc + f(x)`` with wraparound integer addition,
          which makes summing per-round contributions bit-exact;
        * every input address affine in the loop variables (successive
          rounds differ only by constant offsets — the round-slicing
          precondition), established through the memoized
          :func:`~repro.dsl.expr.extract_linear`.
        """
        if n_rounds <= 1:
            return None
        if mask is not None and not mask_invariant:
            return None
        intrin = call.intrin
        if intrin.hardware_impl is None or not intrin.batchable:
            return None
        out_b = call.output
        out_reg = out_b.intrin_tensor
        if not out_reg.dtype.is_integer:
            return None
        if out_b.program_tensor.dtype != out_reg.dtype:
            return None
        acc_ids = [
            i
            for i, b in enumerate(call.inputs)
            if b.program_tensor is out_b.program_tensor
        ]
        if len(acc_ids) != 1:
            return None
        acc_bi = acc_ids[0]
        acc_b = call.inputs[acc_bi]
        if eff[acc_bi] != eff[len(bindings) - 1]:
            return None
        if len(acc_b.intrin_indices) != len(out_b.intrin_indices) or not all(
            E.structural_equal(x, y)
            for x, y in zip(acc_b.intrin_indices, out_b.intrin_indices)
        ):
            return None
        # Structural proof that the model is additive in the accumulator.
        body = intrin.op.body
        if not isinstance(body, E.Add):
            return None
        decomposed = False
        for load, rest in ((body.a, body.b), (body.b, body.a)):
            if (
                isinstance(load, E.TensorLoad)
                and load.tensor is acc_b.intrin_tensor
                and isinstance(rest, E.Reduce)
                and rest.combiner == "sum"
                and len(load.indices) == len(out_b.intrin_indices)
                and all(
                    E.structural_equal(x, y)
                    for x, y in zip(load.indices, out_b.intrin_indices)
                )
                and not any(
                    isinstance(n, E.TensorLoad)
                    and n.tensor in (acc_b.intrin_tensor, intrin.op.output)
                    for n in E.post_order(rest)
                )
            ):
                decomposed = True
                break
        if not decomposed:
            return None
        # Affine-offset precondition: every input address must be affine *in
        # the sequential loop variables* — successive rounds then differ only
        # by constant offsets, so slicing whole slabs of rounds out of the
        # precomputed index grids is sound.  (Fused batch-axis variables may
        # carry div/mod; they are gathered over either way.)  Fully affine
        # addresses take the memoized :func:`extract_linear` fast path.
        for bi, b in enumerate(call.inputs):
            if bi == acc_bi:
                continue
            for i_expr in b.program_indices:
                if E.extract_linear(i_expr, fctx.order) is not None:
                    continue
                if not _affine_in(i_expr, seq_vars):
                    return None
        return acc_bi


def compile_plan(func: PrimFunc, strict: bool = False) -> ExecutablePlan:
    """Compile ``func`` into an :class:`ExecutablePlan` (the analysis phase).

    ``strict`` makes compilation raise :class:`Unvectorizable` instead of
    emitting interpreter-fallback steps — useful in tests that assert full
    vectorization.  Prefer :func:`repro.tir.plan.plan_cache` (or simply
    :func:`execute`) over calling this directly: the cache recognises
    structurally identical functions and compiles them once.
    """
    from ..telemetry import metrics as _metrics, trace as _trace

    with _trace.span("tir.compile_plan", func=func.name, strict=strict) as sp:
        plan = _PlanCompiler(func, strict=strict).compile()
        sp.set(
            vector_nests=plan.stats.vector_nests,
            fallback_nests=plan.stats.fallback_nests,
            proved_nests=plan.stats.proved_nests,
            elided_checks=plan.stats.elided_checks,
        )
    _metrics.count("tir.plan_compiles")
    return plan


# ---------------------------------------------------------------------------
# The historical engine interface, now a thin wrapper over plans
# ---------------------------------------------------------------------------


class VectorizedEngine:
    """Execute a :class:`PrimFunc` over numpy buffers by batched array ops.

    Compiles (or fetches from the process-wide plan cache) an
    :class:`ExecutablePlan` on first use and delegates every ``run`` to it;
    ``stats`` accumulates per-run execution counters exactly as before the
    compile/run split.
    """

    def __init__(self, func: PrimFunc, strict: bool = False) -> None:
        self.func = func
        self.strict = strict
        self.stats = EngineStats()
        self._plan: Optional[ExecutablePlan] = None

    @property
    def plan(self) -> ExecutablePlan:
        """The compiled plan (compiled lazily; cached process-wide unless
        ``strict``, whose raise-on-fallback contract is per-engine)."""
        if self._plan is None:
            if self.strict:
                self._plan = compile_plan(self.func, strict=True)
            else:
                from .plan import plan_cache

                self._plan = plan_cache().get_or_compile(self.func)
        return self._plan

    def run(self, buffers: Dict[Tensor, np.ndarray]) -> np.ndarray:
        """Execute the function; same contract as ``Interpreter.run``."""
        return self.plan.run(buffers, stats=self.stats, func=self.func)


def vector_run(
    func: PrimFunc, buffers: Dict[Tensor, np.ndarray], strict: bool = False
) -> np.ndarray:
    """Execute ``func`` through the vectorized engine.

    .. deprecated::
        Use ``repro.tir.Executor(tier="vectorized").run(func, buffers)``.
    """
    from .executor import Executor, warn_once

    warn_once(
        "tir.engine.vector_run",
        "repro.tir.vector_run is deprecated; use "
        "repro.tir.Executor(tier='vectorized').run(func, buffers)",
    )
    return Executor(tier="vectorized", strict=strict).run(func, buffers)


def execute(
    func: PrimFunc,
    buffers: Dict[Tensor, np.ndarray],
    engine: str = "vector",
    strict: bool = False,
) -> np.ndarray:
    """Execute ``func`` over ``buffers`` with the selected engine.

    ``engine`` is ``"vector"`` (the default oracle — batched numpy execution
    through a cached :class:`ExecutablePlan`, with automatic scalar fallback),
    ``"scalar"`` (the reference interpreter), or ``"native"`` (tiered
    promotion to compiled kernels).  ``strict`` makes the vector engine raise
    :class:`Unvectorizable` instead of falling back — useful in tests that
    assert full vectorization.

    .. deprecated::
        Use ``repro.tir.Executor(tier=...).run(func, buffers)``.
    """
    from .executor import Executor, tier_for_engine, warn_once

    warn_once(
        "tir.engine.execute",
        "repro.tir.execute is deprecated; use "
        "repro.tir.Executor(tier=...).run(func, buffers)",
    )
    return Executor(tier=tier_for_engine(engine), strict=strict).run(func, buffers)
