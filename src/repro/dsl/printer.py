"""Human-readable printing of DSL expressions and operations.

Used for debugging, error messages, and the ``__repr__`` of expression nodes.
The format intentionally mirrors the listings in the paper, e.g.
``c[i] + sum(i32(a[i*4 + j])*i32(b[i*4 + j]), j)``.
"""

from __future__ import annotations

from . import expr as E

__all__ = ["expr_to_str", "op_to_str"]

_SHORT_DTYPE = {
    "int8": "i8",
    "uint8": "u8",
    "int16": "i16",
    "uint16": "u16",
    "int32": "i32",
    "int64": "i64",
    "float16": "fp16",
    "float32": "fp32",
    "float64": "fp64",
    "bool": "bool",
}


def _short(dtype) -> str:
    return _SHORT_DTYPE.get(dtype.name, dtype.name)


def expr_to_str(expr: "E.Expr") -> str:
    """Render an expression in DSL-like syntax."""
    if isinstance(expr, E.Var):
        return expr.name
    if isinstance(expr, E.Const):
        return str(expr.value)
    if isinstance(expr, E.Cast):
        return f"{_short(expr.dtype)}({expr_to_str(expr.value)})"
    if isinstance(expr, E.BinaryOp):
        if expr.opcode in ("min", "max"):
            return f"{expr.opcode}({expr_to_str(expr.a)}, {expr_to_str(expr.b)})"
        return f"({expr_to_str(expr.a)} {expr.opcode} {expr_to_str(expr.b)})"
    if isinstance(expr, E.Compare):
        return f"({expr_to_str(expr.a)} {expr.op} {expr_to_str(expr.b)})"
    if isinstance(expr, E.Select):
        return (
            f"select({expr_to_str(expr.cond)}, {expr_to_str(expr.true_value)}, "
            f"{expr_to_str(expr.false_value)})"
        )
    if isinstance(expr, E.TensorLoad):
        idx = ", ".join(expr_to_str(i) for i in expr.indices)
        return f"{expr.tensor.name}[{idx}]"
    if isinstance(expr, E.Reduce):
        axes = ", ".join(ax.name for ax in expr.axes)
        return f"{expr.combiner}({expr_to_str(expr.source)}, [{axes}])"
    if isinstance(expr, E.Ramp):
        return f"ramp({expr_to_str(expr.base)}, {expr.stride}, {expr.lanes})"
    if isinstance(expr, E.Broadcast):
        return f"bcast({expr_to_str(expr.value)}, {expr.lanes})"
    if isinstance(expr, E.Shuffle):
        return "concat(" + ", ".join(expr_to_str(v) for v in expr.vectors) + ")"
    if isinstance(expr, E.Call):
        args = ", ".join(expr_to_str(a) for a in expr.args)
        return f"{expr.name}({args})"
    return object.__repr__(expr)


def op_to_str(op) -> str:
    """Render a ComputeOp as an assignment statement like the paper's listings."""
    from .compute import ComputeOp

    if not isinstance(op, ComputeOp):
        return repr(op)
    indices = ", ".join(ax.name for ax in op.axes)
    assign = "+=" if op.accumulate else "="
    header_lines = []
    for t in op.input_tensors:
        header_lines.append(
            f"{t.name} = tensor({t.shape}, {_short(t.dtype)})"
        )
    for ax in op.axes:
        header_lines.append(f"{ax.name} = loop_axis(0, {ax.extent})")
    for ax in op.reduce_axes:
        header_lines.append(f"{ax.name} = reduce_axis(0, {ax.extent})")
    body = f"{op.output.name}[{indices}] {assign} {expr_to_str(op.body)}"
    return "\n".join(header_lines + [body])
