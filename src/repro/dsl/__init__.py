"""``repro.dsl`` — the tensor domain-specific language.

This subpackage is the stand-in for TVM's tensor expression DSL: declare
placeholder tensors, loop and reduce axes, and computed tensors whose bodies
are expression trees.  The Inspector and Rewriter of UNIT operate on the
:class:`~repro.dsl.compute.ComputeOp` data structure produced here.
"""

from .axis import AxisKind, IterAxis, loop_axis, reduce_axis
from .compute import ComputeOp, Operation, PlaceholderOp, compute
from .dtype import (
    DType,
    bool_,
    float16,
    float32,
    float64,
    from_string,
    int16,
    int32,
    int64,
    int8,
    uint16,
    uint8,
)
from .expr import (
    Add,
    BinaryOp,
    Broadcast,
    Call,
    Cast,
    Compare,
    Const,
    Expr,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Ramp,
    Reduce,
    Select,
    Shuffle,
    Sub,
    TensorLoad,
    Var,
    as_expr,
    cast,
    const,
    extract_linear,
    free_vars,
    max_reduce,
    min_reduce,
    post_order,
    simplify,
    structural_equal,
    substitute,
    sum_reduce,
    tensors_referenced,
)
from .printer import expr_to_str, op_to_str
from .tensor import Tensor, placeholder, tensor

__all__ = [
    # dtype
    "DType",
    "int8",
    "uint8",
    "int16",
    "uint16",
    "int32",
    "int64",
    "float16",
    "float32",
    "float64",
    "bool_",
    "from_string",
    # expr
    "Expr",
    "Var",
    "Const",
    "Cast",
    "BinaryOp",
    "Add",
    "Sub",
    "Mul",
    "FloorDiv",
    "Mod",
    "Min",
    "Max",
    "Compare",
    "Select",
    "TensorLoad",
    "Reduce",
    "Ramp",
    "Broadcast",
    "Shuffle",
    "Call",
    "const",
    "as_expr",
    "cast",
    "sum_reduce",
    "max_reduce",
    "min_reduce",
    "post_order",
    "free_vars",
    "tensors_referenced",
    "structural_equal",
    "substitute",
    "simplify",
    "extract_linear",
    # axis
    "AxisKind",
    "IterAxis",
    "loop_axis",
    "reduce_axis",
    # tensor
    "Tensor",
    "placeholder",
    "tensor",
    # compute
    "Operation",
    "PlaceholderOp",
    "ComputeOp",
    "compute",
    # printer
    "expr_to_str",
    "op_to_str",
]
