"""Data types used throughout the tensor DSL, tensor IR, and simulators.

The paper's tensorized instructions are *mixed precision*: the elementwise
operands use a narrow type (``int8``, ``uint8``, ``fp16``) while accumulation
happens in a wider type (``int32``, ``fp32``).  Types carry their bit width and
numpy equivalent so that the interpreter can execute programs exactly and the
hardware simulators can reason about register/vector widths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DType",
    "int8",
    "uint8",
    "int16",
    "uint16",
    "int32",
    "int64",
    "float16",
    "float32",
    "float64",
    "bool_",
    "from_string",
    "common_type",
]


@dataclass(frozen=True)
class DType:
    """A scalar data type.

    Attributes
    ----------
    kind:
        One of ``"int"``, ``"uint"``, ``"float"``, ``"bool"``.
    bits:
        Bit width of a single scalar element.
    """

    kind: str
    bits: int

    def __post_init__(self) -> None:
        if self.kind not in ("int", "uint", "float", "bool"):
            raise ValueError(f"unknown dtype kind: {self.kind!r}")
        if self.bits not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported bit width: {self.bits}")

    # -- naming ---------------------------------------------------------
    @property
    def name(self) -> str:
        """The canonical textual name, e.g. ``"int8"`` or ``"float32"``."""
        if self.kind == "bool":
            return "bool"
        return f"{self.kind}{self.bits}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def __repr__(self) -> str:
        return f"DType({self.name})"

    # -- classification -------------------------------------------------
    @property
    def is_integer(self) -> bool:
        return self.kind in ("int", "uint")

    @property
    def is_signed(self) -> bool:
        return self.kind in ("int", "float")

    @property
    def is_float(self) -> bool:
        return self.kind == "float"

    @property
    def is_bool(self) -> bool:
        return self.kind == "bool"

    @property
    def bytes(self) -> int:
        """Storage size in bytes (bool is stored as one byte)."""
        return max(self.bits, 8) // 8

    # -- numpy bridge ----------------------------------------------------
    @property
    def np_dtype(self) -> np.dtype:
        """The numpy dtype used to execute this type exactly.

        ``float16`` is executed as numpy ``float16`` so rounding behaviour of
        mixed-precision instructions is observable in tests.
        """
        if self.kind == "bool":
            return np.dtype(np.bool_)
        return np.dtype(f"{self.kind}{self.bits}")

    # -- value range ------------------------------------------------------
    @property
    def min_value(self) -> float:
        if self.kind == "bool":
            return 0
        if self.kind == "uint":
            return 0
        if self.kind == "int":
            return -(2 ** (self.bits - 1))
        return float(np.finfo(self.np_dtype).min)

    @property
    def max_value(self) -> float:
        if self.kind == "bool":
            return 1
        if self.kind == "uint":
            return 2**self.bits - 1
        if self.kind == "int":
            return 2 ** (self.bits - 1) - 1
        return float(np.finfo(self.np_dtype).max)

    def can_hold(self, other: "DType") -> bool:
        """Whether every value of ``other`` is exactly representable in self."""
        if self == other:
            return True
        if self.is_float and other.is_float:
            return self.bits >= other.bits
        if self.is_float and other.is_integer:
            # float mantissa bits: fp16=11, fp32=24, fp64=53
            mantissa = {16: 11, 32: 24, 64: 53}[self.bits]
            return mantissa >= other.bits
        if self.is_integer and other.is_integer:
            if self.kind == other.kind:
                return self.bits >= other.bits
            if self.kind == "int" and other.kind == "uint":
                return self.bits > other.bits
            return False
        return False


# Canonical singletons -------------------------------------------------------
int8 = DType("int", 8)
uint8 = DType("uint", 8)
int16 = DType("int", 16)
uint16 = DType("uint", 16)
int32 = DType("int", 32)
int64 = DType("int", 64)
float16 = DType("float", 16)
float32 = DType("float", 32)
float64 = DType("float", 64)
bool_ = DType("bool", 1)

_BY_NAME = {
    t.name: t
    for t in (
        int8,
        uint8,
        int16,
        uint16,
        int32,
        int64,
        float16,
        float32,
        float64,
        bool_,
    )
}
# Convenience aliases matching the paper's notation.
_BY_NAME.update(
    {
        "i8": int8,
        "u8": uint8,
        "i16": int16,
        "u16": uint16,
        "i32": int32,
        "i64": int64,
        "fp16": float16,
        "fp32": float32,
        "fp64": float64,
        "f16": float16,
        "f32": float32,
        "f64": float64,
    }
)


def from_string(name) -> DType:
    """Resolve a dtype from its name (``"int8"``, ``"fp32"``, ``"u8"``, ...)."""
    if isinstance(name, DType):
        return name
    try:
        return _BY_NAME[str(name)]
    except KeyError as exc:
        raise ValueError(f"unknown dtype name: {name!r}") from exc


def common_type(a: DType, b: DType) -> DType:
    """The implicit promotion type of a binary arithmetic operation.

    The tensor DSL deliberately does *not* auto-promote mixed-precision
    operands (the point of the paper is that the cast must be explicit), so
    this is only used for same-kind widening, comparisons and constants.
    """
    if a == b:
        return a
    if a.is_float or b.is_float:
        bits = max(a.bits if a.is_float else 0, b.bits if b.is_float else 0, 32)
        return DType("float", bits)
    if a.is_integer and b.is_integer:
        kind = "int" if ("int" in (a.kind, b.kind)) else "uint"
        return DType(kind, max(a.bits, b.bits))
    raise TypeError(f"no common type for {a} and {b}")
