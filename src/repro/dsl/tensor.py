"""Tensors of the tensor DSL.

A :class:`Tensor` is a multi-dimensional array with a static shape and a
scalar element type.  Placeholder tensors are the inputs of a tensor
operation; computed tensors are produced by :func:`repro.dsl.compute.compute`.
Indexing a tensor with loop axes or index expressions produces a
:class:`~repro.dsl.expr.TensorLoad` expression, exactly as written in the
paper's Figure 4/5 listings (``a[i*4+j]``, ``b[r, s, k, rc]``, ...).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from .dtype import DType, from_string
from .expr import Expr, TensorLoad, as_expr

__all__ = ["Tensor", "placeholder", "tensor"]


class Tensor:
    """A statically shaped, typed multi-dimensional array."""

    def __init__(
        self,
        shape: Sequence[int],
        dtype,
        name: str = "tensor",
        op=None,
    ) -> None:
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        if any(s <= 0 for s in self.shape):
            raise ValueError(f"tensor {name!r} has non-positive dimension: {self.shape}")
        self.dtype: DType = from_string(dtype)
        self.name = name
        self.op = op

    # -- basic metadata ---------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def size_bytes(self) -> int:
        """Storage footprint in bytes (used by the cache/memory models)."""
        return self.num_elements * self.dtype.bytes

    @property
    def is_placeholder(self) -> bool:
        from .compute import PlaceholderOp

        return self.op is None or isinstance(self.op, PlaceholderOp)

    # -- indexing ---------------------------------------------------------
    def __getitem__(self, indices) -> TensorLoad:
        if not isinstance(indices, tuple):
            indices = (indices,)
        exprs = [self._coerce_index(i) for i in indices]
        return TensorLoad(self, exprs)

    @staticmethod
    def _coerce_index(index) -> Expr:
        # Loop axes are used directly as indices in the DSL listings.
        from .axis import IterAxis

        if isinstance(index, IterAxis):
            return index.var
        return as_expr(index)

    def __repr__(self) -> str:
        return f"Tensor({self.name}, shape={self.shape}, dtype={self.dtype.name})"


def placeholder(shape: Sequence[int], dtype, name: str = "placeholder") -> Tensor:
    """Declare an input tensor.

    Mirrors the paper's ``a = tensor((64,), u8)``.
    """
    from .compute import PlaceholderOp

    t = Tensor(shape, dtype, name)
    t.op = PlaceholderOp(t)
    return t


# The paper's listings use the name ``tensor`` for input declarations.
tensor = placeholder
