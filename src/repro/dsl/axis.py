"""Iteration axes (loop variables) of the tensor DSL.

The paper distinguishes *data parallel* axes (``loop_axis``) from *reduction*
axes (``reduce_axis``); only axes with the same annotation can be mapped onto
each other by the Inspector (Section III-B).
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from .expr import Var
from .dtype import int32

__all__ = ["AxisKind", "IterAxis", "loop_axis", "reduce_axis"]


class AxisKind(Enum):
    """Annotation of an iteration axis."""

    DATA_PARALLEL = "data_parallel"
    REDUCE = "reduce"


class IterAxis:
    """An iteration axis: a loop variable with an extent and an annotation.

    Attributes
    ----------
    var:
        The :class:`~repro.dsl.expr.Var` bound in expressions.
    extent:
        The trip count (loops are canonical: ``for v in range(extent)``).
    kind:
        Whether the axis is data-parallel or a reduction.
    """

    _counter = 0

    def __init__(self, extent: int, kind: AxisKind, name: Optional[str] = None) -> None:
        if int(extent) <= 0:
            raise ValueError(f"axis extent must be positive, got {extent}")
        IterAxis._counter += 1
        if name is None:
            prefix = "i" if kind == AxisKind.DATA_PARALLEL else "r"
            name = f"{prefix}{IterAxis._counter}"
        self.name = name
        self.extent = int(extent)
        self.kind = kind
        self.var = Var(name, int32)

    # -- predicates -------------------------------------------------------
    @property
    def is_reduce(self) -> bool:
        return self.kind == AxisKind.REDUCE

    @property
    def is_data_parallel(self) -> bool:
        return self.kind == AxisKind.DATA_PARALLEL

    def __repr__(self) -> str:
        tag = "reduce" if self.is_reduce else "parallel"
        return f"IterAxis({self.name}, extent={self.extent}, {tag})"

    # Axes participate in index expressions directly by exposing their Var
    # through arithmetic operators.
    def __add__(self, other):
        return self.var + _unwrap(other)

    def __radd__(self, other):
        return _unwrap(other) + self.var

    def __sub__(self, other):
        return self.var - _unwrap(other)

    def __rsub__(self, other):
        return _unwrap(other) - self.var

    def __mul__(self, other):
        return self.var * _unwrap(other)

    def __rmul__(self, other):
        return _unwrap(other) * self.var

    def __floordiv__(self, other):
        return self.var // _unwrap(other)

    def __mod__(self, other):
        return self.var % _unwrap(other)


def _unwrap(value):
    return value.var if isinstance(value, IterAxis) else value


def loop_axis(start: int, stop: Optional[int] = None, name: Optional[str] = None) -> IterAxis:
    """Declare a data-parallel axis.

    Mirrors the paper's ``loop_axis(0, 16)`` notation; the one-argument form
    ``loop_axis(16)`` is also accepted.  Only canonical (0-based) ranges are
    supported, matching the tensor-IR constraint.
    """
    extent = _extent(start, stop)
    return IterAxis(extent, AxisKind.DATA_PARALLEL, name)


def reduce_axis(start: int, stop: Optional[int] = None, name: Optional[str] = None) -> IterAxis:
    """Declare a reduction axis (``reduce_axis(0, 4)`` in the paper)."""
    extent = _extent(start, stop)
    return IterAxis(extent, AxisKind.REDUCE, name)


def _extent(start: int, stop: Optional[int]) -> int:
    if stop is None:
        return int(start)
    if int(start) != 0:
        raise ValueError("axes must start at 0 (canonical loops)")
    return int(stop)
