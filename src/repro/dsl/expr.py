"""Expression tree of the tensor DSL.

Expressions are what appear on the right-hand side of a ``compute`` definition
(Figure 4/5 of the paper): loop variables, tensor loads, casts, arithmetic and
reductions.  The Inspector (``repro.inspector``) walks these trees to match a
tensor operation against a tensorized instruction, so the node set is kept
small and explicit.

All nodes are immutable; construct new nodes instead of mutating.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from .dtype import DType, bool_, common_type, float32, from_string, int32

__all__ = [
    "Expr",
    "Var",
    "Const",
    "Cast",
    "BinaryOp",
    "Add",
    "Sub",
    "Mul",
    "FloorDiv",
    "Mod",
    "Min",
    "Max",
    "Compare",
    "Select",
    "TensorLoad",
    "Reduce",
    "Ramp",
    "Broadcast",
    "Shuffle",
    "Call",
    "const",
    "as_expr",
    "cast",
    "sum_reduce",
    "max_reduce",
    "min_reduce",
    "post_order",
    "free_vars",
    "tensors_referenced",
    "structural_hash",
    "canonical_hash",
    "arith_signature",
    "structural_equal",
    "substitute",
    "simplify",
    "extract_linear",
    "ExprCacheStats",
    "expr_cache_stats",
    "reset_expr_cache_stats",
    "expr_cache_epoch",
    "clear_expr_caches",
]

ExprLike = Union["Expr", int, float, bool]


class Expr:
    """Base class of all DSL expressions."""

    dtype: DType

    # -- operator overloading -------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        return Add(self, as_expr(other, self.dtype))

    def __radd__(self, other: ExprLike) -> "Expr":
        return Add(as_expr(other, self.dtype), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return Sub(self, as_expr(other, self.dtype))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return Sub(as_expr(other, self.dtype), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return Mul(self, as_expr(other, self.dtype))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return Mul(as_expr(other, self.dtype), self)

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return FloorDiv(self, as_expr(other, self.dtype))

    def __mod__(self, other: ExprLike) -> "Expr":
        return Mod(self, as_expr(other, self.dtype))

    def __neg__(self) -> "Expr":
        return Sub(Const(0, self.dtype), self)

    # Comparisons build Compare nodes (not booleans), used by Select.
    def equal(self, other: ExprLike) -> "Expr":
        return Compare("==", self, as_expr(other, self.dtype))

    def __lt__(self, other: ExprLike) -> "Expr":
        return Compare("<", self, as_expr(other, self.dtype))

    def __le__(self, other: ExprLike) -> "Expr":
        return Compare("<=", self, as_expr(other, self.dtype))

    def __gt__(self, other: ExprLike) -> "Expr":
        return Compare(">", self, as_expr(other, self.dtype))

    def __ge__(self, other: ExprLike) -> "Expr":
        return Compare(">=", self, as_expr(other, self.dtype))

    # -- helpers ----------------------------------------------------------
    def astype(self, dtype) -> "Expr":
        return cast(dtype, self)

    @property
    def children(self) -> Tuple["Expr", ...]:
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .printer import expr_to_str

        return expr_to_str(self)

    # Expressions are identity-hashable; use structural_equal for structure.
    __hash__ = object.__hash__


class Var(Expr):
    """A scalar variable — usually a loop iteration variable.

    Variables compare by identity: two distinct ``Var("i")`` objects are
    different variables.  This mirrors TVM, where ``IterVar``s are objects.
    """

    _counter = 0

    def __init__(self, name: str, dtype=int32) -> None:
        self.name = name
        self.dtype = from_string(dtype)
        Var._counter += 1
        self._uid = Var._counter


class Const(Expr):
    """A scalar constant."""

    def __init__(self, value, dtype=None) -> None:
        if dtype is None:
            if isinstance(value, bool):
                dtype = bool_
            elif isinstance(value, int):
                dtype = int32
            else:
                dtype = float32
        self.dtype = from_string(dtype)
        if self.dtype.is_bool:
            self.value = bool(value)
        elif self.dtype.is_integer:
            self.value = int(value)
        else:
            self.value = float(value)


class Cast(Expr):
    """An explicit type conversion, e.g. ``i32(a[i])`` in Figure 4."""

    def __init__(self, dtype, value: Expr) -> None:
        self.dtype = from_string(dtype)
        self.value = value

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.value,)


class BinaryOp(Expr):
    """Base class for arithmetic binary operators."""

    opcode: str = "?"

    def __init__(self, a: Expr, b: Expr) -> None:
        self.a = a
        self.b = b
        self.dtype = common_type(a.dtype, b.dtype)

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.a, self.b)


class Add(BinaryOp):
    opcode = "+"


class Sub(BinaryOp):
    opcode = "-"


class Mul(BinaryOp):
    opcode = "*"


class FloorDiv(BinaryOp):
    opcode = "//"


class Mod(BinaryOp):
    opcode = "%"


class Min(BinaryOp):
    opcode = "min"


class Max(BinaryOp):
    opcode = "max"


class Compare(Expr):
    """A comparison, yielding a boolean."""

    def __init__(self, op: str, a: Expr, b: Expr) -> None:
        if op not in ("==", "!=", "<", "<=", ">", ">="):
            raise ValueError(f"unknown comparison operator {op!r}")
        self.op = op
        self.a = a
        self.b = b
        self.dtype = bool_

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.a, self.b)


class Select(Expr):
    """``cond ? true_value : false_value``."""

    def __init__(self, cond: Expr, true_value: Expr, false_value: Expr) -> None:
        self.cond = cond
        self.true_value = true_value
        self.false_value = false_value
        self.dtype = common_type(true_value.dtype, false_value.dtype)

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.cond, self.true_value, self.false_value)


class TensorLoad(Expr):
    """A read of one element of a tensor, e.g. ``a[x + r, y + s, rc]``."""

    def __init__(self, tensor, indices: Sequence[ExprLike]) -> None:
        self.tensor = tensor
        self.indices = tuple(as_expr(i, int32) for i in indices)
        if len(self.indices) != len(tensor.shape):
            raise ValueError(
                f"tensor {tensor.name!r} has {len(tensor.shape)} dimensions, "
                f"got {len(self.indices)} indices"
            )
        self.dtype = tensor.dtype

    @property
    def children(self) -> Tuple[Expr, ...]:
        return self.indices


class Reduce(Expr):
    """A reduction over one or more reduce axes.

    ``combiner`` is one of ``"sum"``, ``"max"``, ``"min"``.  ``source`` is the
    expression accumulated for each point of the reduction domain spanned by
    ``axes`` (which must all be reduce axes).
    """

    COMBINERS = ("sum", "max", "min")

    def __init__(self, combiner: str, source: Expr, axes: Sequence) -> None:
        if combiner not in self.COMBINERS:
            raise ValueError(f"unknown reduction combiner {combiner!r}")
        axes = tuple(axes)
        if not axes:
            raise ValueError("reduction requires at least one axis")
        for ax in axes:
            if not getattr(ax, "is_reduce", False):
                raise ValueError(f"axis {ax!r} is not a reduce axis")
        self.combiner = combiner
        self.source = source
        self.axes = axes
        self.dtype = source.dtype

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.source,)


class Ramp(Expr):
    """A vector of ``lanes`` consecutive values ``base + i*stride`` (codegen)."""

    def __init__(self, base: Expr, stride: int, lanes: int) -> None:
        self.base = base
        self.stride = int(stride)
        self.lanes = int(lanes)
        self.dtype = base.dtype

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.base,)


class Broadcast(Expr):
    """A scalar value replicated across ``lanes`` vector lanes (codegen)."""

    def __init__(self, value: Expr, lanes: int) -> None:
        self.value = value
        self.lanes = int(lanes)
        self.dtype = value.dtype

    @property
    def children(self) -> Tuple[Expr, ...]:
        return (self.value,)


class Shuffle(Expr):
    """Concatenation of vectors — models the unroll-and-concatenate operand rule."""

    def __init__(self, vectors: Sequence[Expr]) -> None:
        self.vectors = tuple(vectors)
        if not self.vectors:
            raise ValueError("Shuffle requires at least one vector")
        self.dtype = self.vectors[0].dtype

    @property
    def children(self) -> Tuple[Expr, ...]:
        return self.vectors


class Call(Expr):
    """A call to a named intrinsic, e.g. ``x86.avx512.vpdpbusd``."""

    def __init__(self, name: str, args: Sequence[Expr], dtype) -> None:
        self.name = name
        self.args = tuple(args)
        self.dtype = from_string(dtype)

    @property
    def children(self) -> Tuple[Expr, ...]:
        return self.args


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------


def const(value, dtype=None) -> Const:
    """Create a constant expression."""
    return Const(value, dtype)


def as_expr(value: ExprLike, dtype=None) -> Expr:
    """Coerce a Python number, iteration axis, or Expr into an Expr."""
    if isinstance(value, Expr):
        return value
    # Iteration axes (repro.dsl.axis.IterAxis) stand for their loop variable.
    if isinstance(getattr(value, "var", None), Var):
        return value.var
    if isinstance(value, bool):
        return Const(value, bool_)
    if isinstance(value, int):
        return Const(value, int32 if dtype is None or not from_string(dtype).is_integer else dtype)
    if isinstance(value, float):
        return Const(value, float32 if dtype is None or not from_string(dtype).is_float else dtype)
    raise TypeError(f"cannot convert {value!r} to an expression")


def cast(dtype, value: ExprLike) -> Expr:
    """Explicit cast; folds away no-op casts and constant casts."""
    dtype = from_string(dtype)
    value = as_expr(value)
    if value.dtype == dtype:
        return value
    if isinstance(value, Const):
        return Const(value.value, dtype)
    return Cast(dtype, value)


def sum_reduce(source: Expr, axes) -> Reduce:
    """``sum(source)`` over the given reduce axes (Figure 4's ``sum``)."""
    return Reduce("sum", source, _as_axis_list(axes))


def max_reduce(source: Expr, axes) -> Reduce:
    return Reduce("max", source, _as_axis_list(axes))


def min_reduce(source: Expr, axes) -> Reduce:
    return Reduce("min", source, _as_axis_list(axes))


def _as_axis_list(axes) -> List:
    if isinstance(axes, (list, tuple)):
        return list(axes)
    return [axes]


# ---------------------------------------------------------------------------
# Interning: cached structural hashes and memoized traversals
#
# Expression trees are immutable, so every derived quantity — the post-order
# node list, the structural hash, the simplified form, the affine
# decomposition — can be computed once and attached to the node.  The hot
# paths of the repository (the Inspector's isomorphism matching, the
# Rewriter's candidate generation, the vectorized execution engine's affine
# analysis) re-visit the same subtrees thousands of times; these memos turn
# those re-walks into dictionary lookups.
# ---------------------------------------------------------------------------


@dataclass
class ExprCacheStats:
    """Hit/miss counters for the expression-level memo caches."""

    simplify_hits: int = 0
    simplify_misses: int = 0
    linear_hits: int = 0
    linear_misses: int = 0
    equal_fast_paths: int = 0
    equal_full_walks: int = 0

    @staticmethod
    def _rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def simplify_hit_rate(self) -> float:
        return self._rate(self.simplify_hits, self.simplify_misses)

    @property
    def linear_hit_rate(self) -> float:
        return self._rate(self.linear_hits, self.linear_misses)

    @property
    def equal_fast_path_rate(self) -> float:
        return self._rate(self.equal_fast_paths, self.equal_full_walks)

    def as_dict(self) -> dict:
        return {
            "simplify_hits": self.simplify_hits,
            "simplify_misses": self.simplify_misses,
            "simplify_hit_rate": self.simplify_hit_rate,
            "linear_hits": self.linear_hits,
            "linear_misses": self.linear_misses,
            "linear_hit_rate": self.linear_hit_rate,
            "equal_fast_paths": self.equal_fast_paths,
            "equal_full_walks": self.equal_full_walks,
            "equal_fast_path_rate": self.equal_fast_path_rate,
        }


_CACHE_STATS = ExprCacheStats()

# Per-node memos are bounded so a long-lived node cannot accumulate entries
# for arbitrarily many peers / variable sets (LRU-by-reset: clear when full).
_MEMO_CAP = 64


def expr_cache_stats() -> ExprCacheStats:
    """The live hit/miss counters of the expression memo caches."""
    return _CACHE_STATS


def reset_expr_cache_stats() -> None:
    """Zero the counters (the per-node memos themselves stay valid)."""
    global _CACHE_STATS
    for f in (
        "simplify_hits",
        "simplify_misses",
        "linear_hits",
        "linear_misses",
        "equal_fast_paths",
        "equal_full_walks",
    ):
        setattr(_CACHE_STATS, f, 0)


# The expression-cache *epoch* lets downstream derived caches (most notably
# the executable-plan cache in ``repro.tir.plan``) invalidate themselves when
# the interning layer is cleared: a cached plan bakes in analyses derived
# from interned expressions, so it must not outlive them.
_CACHE_EPOCH = 0


def expr_cache_epoch() -> int:
    """Monotonic counter bumped by :func:`clear_expr_caches`."""
    return _CACHE_EPOCH


def clear_expr_caches() -> None:
    """Invalidate the expression-cache layer.

    Per-node memos live on the (immutable) nodes themselves and stay
    individually correct, so they are left in place; what this call does is
    zero the hit/miss counters and bump the cache *epoch*, which tells every
    derived cache keyed on interned expression state — e.g. the process-wide
    :class:`repro.tir.plan.PlanCache` — to drop its entries.
    """
    global _CACHE_EPOCH
    _CACHE_EPOCH += 1
    reset_expr_cache_stats()


def structural_hash(expr: Expr) -> int:
    """A hash consistent with :func:`structural_equal`.

    ``structural_equal(a, b, var_map)`` (for *any* variable mapping) implies
    ``structural_hash(a) == structural_hash(b)``; the converse need not hold.
    Variables therefore hash uniformly — the hash captures tree topology,
    opcodes, constants and tensor identities, which is what makes it a sound
    O(1) reject fast-path.  Cached on the node (trees are immutable).
    """
    cached = expr.__dict__.get("_shash")
    if cached is not None:
        return cached
    h = _structural_hash_impl(expr)
    expr._shash = h
    return h


def _structural_hash_impl(e: Expr) -> int:
    if isinstance(e, Var):
        return hash(("var",))
    if isinstance(e, Const):
        return hash(("const", e.dtype.name, e.value))
    if isinstance(e, Cast):
        return hash(("cast", e.dtype.name, structural_hash(e.value)))
    if isinstance(e, BinaryOp):
        return hash(
            ("bin", e.opcode, structural_hash(e.a), structural_hash(e.b))
        )
    if isinstance(e, Compare):
        return hash(("cmp", e.op, structural_hash(e.a), structural_hash(e.b)))
    if isinstance(e, Select):
        return hash(("select",) + tuple(structural_hash(c) for c in e.children))
    if isinstance(e, TensorLoad):
        return hash(
            ("load", id(e.tensor)) + tuple(structural_hash(i) for i in e.indices)
        )
    if isinstance(e, Reduce):
        return hash(("reduce", e.combiner, len(e.axes), structural_hash(e.source)))
    if isinstance(e, Ramp):
        return hash(("ramp", e.stride, e.lanes, structural_hash(e.base)))
    if isinstance(e, Broadcast):
        return hash(("bcast", e.lanes, structural_hash(e.value)))
    if isinstance(e, Shuffle):
        return hash(("shuffle",) + tuple(structural_hash(v) for v in e.vectors))
    if isinstance(e, Call):
        return hash(
            ("call", e.name, e.dtype.name) + tuple(structural_hash(a) for a in e.args)
        )
    raise TypeError(f"unhandled node type {type(e).__name__}")


def canonical_hash(expr: Expr, var_ids: dict, tensor_ids: dict) -> int:
    """A structural hash that is stable *across* expression trees.

    :func:`structural_hash` keys tensors by object identity, which is exactly
    right inside one function but useless for recognising that two separately
    lowered functions are the same program.  ``canonical_hash`` instead maps
    variables and tensors through caller-provided id dictionaries (typically
    binding order for variables and parameter position for tensors), so two
    structurally identical functions — different ``Var``/``Tensor`` objects,
    same program — hash identically.  This is the key of the executable-plan
    cache (:mod:`repro.tir.plan`).

    Variables or tensors absent from the dictionaries hash to a fixed bucket;
    the plan cache always confirms a hash hit with a full structural-equality
    walk, so collisions cost time, never correctness.
    """
    if isinstance(expr, Var):
        return hash(("cvar", var_ids.get(expr, -1)))
    if isinstance(expr, Const):
        return hash(("cconst", expr.dtype.name, expr.value))
    if isinstance(expr, Cast):
        return hash(("ccast", expr.dtype.name, canonical_hash(expr.value, var_ids, tensor_ids)))
    if isinstance(expr, BinaryOp):
        return hash(
            (
                "cbin",
                expr.opcode,
                canonical_hash(expr.a, var_ids, tensor_ids),
                canonical_hash(expr.b, var_ids, tensor_ids),
            )
        )
    if isinstance(expr, Compare):
        return hash(
            (
                "ccmp",
                expr.op,
                canonical_hash(expr.a, var_ids, tensor_ids),
                canonical_hash(expr.b, var_ids, tensor_ids),
            )
        )
    if isinstance(expr, Select):
        return hash(
            ("cselect",)
            + tuple(canonical_hash(c, var_ids, tensor_ids) for c in expr.children)
        )
    if isinstance(expr, TensorLoad):
        t = expr.tensor
        tkey = tensor_ids.get(t)
        if tkey is None:
            # Unregistered tensors (e.g. intrinsic register descriptions,
            # which are process-wide singletons) key by their metadata.
            tkey = ("ext", t.name, t.shape, t.dtype.name)
        return hash(
            ("cload", tkey)
            + tuple(canonical_hash(i, var_ids, tensor_ids) for i in expr.indices)
        )
    if isinstance(expr, Reduce):
        inner = dict(var_ids)
        for ax in expr.axes:
            inner[ax.var] = len(inner)
        return hash(
            (
                "creduce",
                expr.combiner,
                tuple(ax.extent for ax in expr.axes),
                canonical_hash(expr.source, inner, tensor_ids),
            )
        )
    if isinstance(expr, Ramp):
        return hash(
            ("cramp", expr.stride, expr.lanes, canonical_hash(expr.base, var_ids, tensor_ids))
        )
    if isinstance(expr, Broadcast):
        return hash(("cbcast", expr.lanes, canonical_hash(expr.value, var_ids, tensor_ids)))
    if isinstance(expr, Shuffle):
        return hash(
            ("cshuffle",)
            + tuple(canonical_hash(v, var_ids, tensor_ids) for v in expr.vectors)
        )
    if isinstance(expr, Call):
        return hash(
            ("ccall", expr.name, expr.dtype.name)
            + tuple(canonical_hash(a, var_ids, tensor_ids) for a in expr.args)
        )
    raise TypeError(f"unhandled node type {type(expr).__name__}")


def arith_signature(expr: Expr) -> int:
    """A topology/dtype/opcode signature for arithmetic-isomorphism matching.

    Two expressions whose signatures differ can never be arithmetically
    isomorphic in the sense of the Inspector's Algorithm 1: the signature
    folds exactly the properties the recursive match requires at every node
    (data type, leaf-vs-interior topology, cast targets and binary opcodes)
    while abstracting everything register binding is allowed to vary (which
    tensor a leaf loads, its index expressions, constant values).  Cached on
    the node.
    """
    cached = expr.__dict__.get("_asig")
    if cached is not None:
        return cached
    if isinstance(expr, (TensorLoad, Const)):
        sig = hash(("leaf", expr.dtype.name))
    elif isinstance(expr, Cast):
        sig = hash(("cast", expr.dtype.name, arith_signature(expr.value)))
    elif isinstance(expr, BinaryOp):
        sig = hash(
            (
                "bin",
                expr.opcode,
                expr.dtype.name,
                arith_signature(expr.a),
                arith_signature(expr.b),
            )
        )
    else:
        sig = hash(
            (type(expr).__name__, expr.dtype.name)
            + tuple(arith_signature(c) for c in expr.children)
        )
    expr._asig = sig
    return sig


# ---------------------------------------------------------------------------
# Traversal and analysis
# ---------------------------------------------------------------------------


def post_order(expr: Expr) -> Iterator[Expr]:
    """Yield every node of the tree in post-order (children first).

    The node list is computed once per root and cached on it, so repeated
    analyses over the same tree (``free_vars``, ``tensors_referenced``, the
    engine's affine checks) do not re-walk it.
    """
    cached = expr.__dict__.get("_post_cache")
    if cached is None:
        cached = tuple(_post_order_walk(expr))
        expr._post_cache = cached
    return iter(cached)


def _post_order_walk(expr: Expr) -> Iterator[Expr]:
    for child in expr.children:
        yield from _post_order_walk(child)
    yield expr


def free_vars(expr: Expr) -> List[Var]:
    """All distinct Vars referenced by ``expr`` (in first-appearance order)."""
    seen: List[Var] = []
    for node in post_order(expr):
        if isinstance(node, Var) and node not in seen:
            seen.append(node)
    return seen


def tensors_referenced(expr: Expr) -> List:
    """All distinct tensors loaded by ``expr`` (first-appearance order)."""
    seen: List = []
    for node in post_order(expr):
        if isinstance(node, TensorLoad) and node.tensor not in seen:
            seen.append(node.tensor)
    return seen


def structural_equal(a: Expr, b: Expr, var_map: Optional[dict] = None) -> bool:
    """Structural equality of two expressions.

    ``var_map`` optionally maps variables of ``a`` onto variables of ``b``;
    when omitted variables must be identical objects.

    Identity-mode comparisons (no variable mapping in effect) are memoized:
    object identity and the cached structural hash short-circuit most calls,
    and full-walk verdicts are remembered per node pair, so the Inspector's
    repeated matching of the same subtrees costs O(1) after the first walk.
    """
    if not var_map:
        if a is b:
            _CACHE_STATS.equal_fast_paths += 1
            return True
        if structural_hash(a) != structural_hash(b):
            _CACHE_STATS.equal_fast_paths += 1
            return False
        memo = a.__dict__.get("_eq_memo")
        if memo is not None:
            entry = memo.get(id(b))
            if entry is not None and entry[0]() is b:
                _CACHE_STATS.equal_fast_paths += 1
                return entry[1]
        _CACHE_STATS.equal_full_walks += 1
        result = _structural_equal_impl(a, b, {})
        if memo is None:
            memo = a._eq_memo = {}
        elif len(memo) >= _MEMO_CAP:
            memo.clear()
        try:
            memo[id(b)] = (weakref.ref(b), result)
        except TypeError:  # pragma: no cover - non-weakrefable peer
            pass
        return result
    return _structural_equal_impl(a, b, var_map)


def _structural_equal_impl(a: Expr, b: Expr, var_map: dict) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, Var):
        return var_map.get(a, a) is b
    if isinstance(a, Const):
        return a.dtype == b.dtype and a.value == b.value
    if isinstance(a, Cast):
        return a.dtype == b.dtype and structural_equal(a.value, b.value, var_map)
    if isinstance(a, BinaryOp):
        return (
            a.opcode == b.opcode
            and structural_equal(a.a, b.a, var_map)
            and structural_equal(a.b, b.b, var_map)
        )
    if isinstance(a, Compare):
        return (
            a.op == b.op
            and structural_equal(a.a, b.a, var_map)
            and structural_equal(a.b, b.b, var_map)
        )
    if isinstance(a, Select):
        return all(
            structural_equal(x, y, var_map)
            for x, y in zip(a.children, b.children)
        )
    if isinstance(a, TensorLoad):
        if a.tensor is not b.tensor or len(a.indices) != len(b.indices):
            return False
        return all(
            structural_equal(x, y, var_map) for x, y in zip(a.indices, b.indices)
        )
    if isinstance(a, Reduce):
        if a.combiner != b.combiner or len(a.axes) != len(b.axes):
            return False
        extended = dict(var_map)
        for ax_a, ax_b in zip(a.axes, b.axes):
            extended[ax_a.var] = ax_b.var
        return structural_equal(a.source, b.source, extended)
    if isinstance(a, (Ramp, Broadcast, Shuffle, Call)):
        if isinstance(a, Ramp) and (a.stride != b.stride or a.lanes != b.lanes):
            return False
        if isinstance(a, Broadcast) and a.lanes != b.lanes:
            return False
        if isinstance(a, Call) and (a.name != b.name or a.dtype != b.dtype):
            return False
        if len(a.children) != len(b.children):
            return False
        return all(
            structural_equal(x, y, var_map) for x, y in zip(a.children, b.children)
        )
    raise TypeError(f"unhandled node type {type(a).__name__}")


def substitute(expr: Expr, mapping: dict) -> Expr:
    """Replace variables (keys) with expressions (values) throughout ``expr``."""
    if isinstance(expr, Var):
        replacement = mapping.get(expr)
        return replacement if replacement is not None else expr
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Cast):
        return cast(expr.dtype, substitute(expr.value, mapping))
    if isinstance(expr, BinaryOp):
        return type(expr)(substitute(expr.a, mapping), substitute(expr.b, mapping))
    if isinstance(expr, Compare):
        return Compare(expr.op, substitute(expr.a, mapping), substitute(expr.b, mapping))
    if isinstance(expr, Select):
        return Select(
            substitute(expr.cond, mapping),
            substitute(expr.true_value, mapping),
            substitute(expr.false_value, mapping),
        )
    if isinstance(expr, TensorLoad):
        return TensorLoad(expr.tensor, [substitute(i, mapping) for i in expr.indices])
    if isinstance(expr, Reduce):
        return Reduce(expr.combiner, substitute(expr.source, mapping), expr.axes)
    if isinstance(expr, Ramp):
        return Ramp(substitute(expr.base, mapping), expr.stride, expr.lanes)
    if isinstance(expr, Broadcast):
        return Broadcast(substitute(expr.value, mapping), expr.lanes)
    if isinstance(expr, Shuffle):
        return Shuffle([substitute(v, mapping) for v in expr.vectors])
    if isinstance(expr, Call):
        return Call(expr.name, [substitute(a, mapping) for a in expr.args], expr.dtype)
    raise TypeError(f"unhandled node type {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Simplification
# ---------------------------------------------------------------------------


def simplify(expr: Expr) -> Expr:
    """Lightweight constant folding and algebraic identities.

    This is not a general simplifier; it covers what the lowering pipeline and
    the access analysis need: ``x+0``, ``x*1``, ``x*0``, constant folding of
    integer arithmetic, and nested cast collapsing.

    Results are memoized on the node (trees are immutable), keyed by node
    identity — an LRU whose entries live exactly as long as the subtree they
    describe.  Hit rates are tracked in :func:`expr_cache_stats`.
    """
    if isinstance(expr, (Var, Const)):
        return expr
    cached = expr.__dict__.get("_simplify_cache")
    if cached is not None:
        _CACHE_STATS.simplify_hits += 1
        return cached
    _CACHE_STATS.simplify_misses += 1
    result = _simplify_impl(expr)
    expr._simplify_cache = result
    result._simplify_cache = result  # simplify is idempotent
    return result


def _simplify_impl(expr: Expr) -> Expr:
    if isinstance(expr, Cast):
        inner = simplify(expr.value)
        return cast(expr.dtype, inner)
    if isinstance(expr, BinaryOp):
        a = simplify(expr.a)
        b = simplify(expr.b)
        if isinstance(a, Const) and isinstance(b, Const):
            return _fold_binary(type(expr), a, b)
        if isinstance(expr, Add):
            if _is_zero(a):
                return b
            if _is_zero(b):
                return a
        if isinstance(expr, Sub) and _is_zero(b):
            return a
        if isinstance(expr, Mul):
            if _is_zero(a) or _is_zero(b):
                return Const(0, expr.dtype)
            if _is_one(a):
                return b
            if _is_one(b):
                return a
        if isinstance(expr, FloorDiv) and _is_one(b):
            return a
        if isinstance(expr, Mod) and _is_one(b):
            return Const(0, expr.dtype)
        return type(expr)(a, b)
    if isinstance(expr, Compare):
        a, b = simplify(expr.a), simplify(expr.b)
        if isinstance(a, Const) and isinstance(b, Const):
            ops = {
                "==": a.value == b.value,
                "!=": a.value != b.value,
                "<": a.value < b.value,
                "<=": a.value <= b.value,
                ">": a.value > b.value,
                ">=": a.value >= b.value,
            }
            return Const(ops[expr.op], bool_)
        return Compare(expr.op, a, b)
    if isinstance(expr, Select):
        cond = simplify(expr.cond)
        if isinstance(cond, Const):
            return simplify(expr.true_value if cond.value else expr.false_value)
        return Select(cond, simplify(expr.true_value), simplify(expr.false_value))
    if isinstance(expr, TensorLoad):
        return TensorLoad(expr.tensor, [simplify(i) for i in expr.indices])
    if isinstance(expr, Reduce):
        return Reduce(expr.combiner, simplify(expr.source), expr.axes)
    if isinstance(expr, Ramp):
        return Ramp(simplify(expr.base), expr.stride, expr.lanes)
    if isinstance(expr, Broadcast):
        return Broadcast(simplify(expr.value), expr.lanes)
    if isinstance(expr, Shuffle):
        return Shuffle([simplify(v) for v in expr.vectors])
    if isinstance(expr, Call):
        return Call(expr.name, [simplify(a) for a in expr.args], expr.dtype)
    return expr


def _is_zero(e: Expr) -> bool:
    return isinstance(e, Const) and e.value == 0


def _is_one(e: Expr) -> bool:
    return isinstance(e, Const) and e.value == 1


def _fold_binary(cls, a: Const, b: Const) -> Const:
    dtype = common_type(a.dtype, b.dtype)
    x, y = a.value, b.value
    if cls is Add:
        return Const(x + y, dtype)
    if cls is Sub:
        return Const(x - y, dtype)
    if cls is Mul:
        return Const(x * y, dtype)
    if cls is FloorDiv:
        return Const(x // y, dtype)
    if cls is Mod:
        return Const(x % y, dtype)
    if cls is Min:
        return Const(min(x, y), dtype)
    if cls is Max:
        return Const(max(x, y), dtype)
    raise TypeError(f"cannot fold {cls.__name__}")


# ---------------------------------------------------------------------------
# Linear (affine) form extraction — used by the access-pattern analysis and
# the operand-generation rules (strides of the tensorized loop variables).
# ---------------------------------------------------------------------------


def extract_linear(expr: Expr, variables: Iterable[Var]) -> Optional[Tuple[dict, int]]:
    """Express ``expr`` as ``sum(coeff[v] * v) + constant`` over ``variables``.

    Returns ``(coefficients, constant)`` or ``None`` if the expression is not
    affine in the given variables (e.g. contains ``v * w`` or a non-linear
    function).  Variables not listed are treated as symbolic *parameters* only
    when they never appear — any unknown variable makes the result ``None``.

    Decompositions are memoized per node and per variable set (a bounded
    per-node cache); the returned coefficient dict is always a fresh copy, so
    callers may mutate it freely.
    """
    variables = list(variables)
    cache_key = tuple(variables)
    cache = expr.__dict__.get("_linear_cache")
    if cache is not None and cache_key in cache:
        _CACHE_STATS.linear_hits += 1
        hit = cache[cache_key]
        return None if hit is None else (dict(hit[0]), hit[1])
    _CACHE_STATS.linear_misses += 1

    def walk(node: Expr) -> Optional[Tuple[dict, int]]:
        if isinstance(node, Const):
            if not node.dtype.is_integer and not node.dtype.is_bool:
                return None
            return {}, int(node.value)
        if isinstance(node, Var):
            if node in variables:
                return {node: 1}, 0
            return None
        if isinstance(node, Cast):
            return walk(node.value)
        if isinstance(node, Add):
            lhs, rhs = walk(node.a), walk(node.b)
            if lhs is None or rhs is None:
                return None
            return _merge(lhs, rhs, 1)
        if isinstance(node, Sub):
            lhs, rhs = walk(node.a), walk(node.b)
            if lhs is None or rhs is None:
                return None
            return _merge(lhs, rhs, -1)
        if isinstance(node, Mul):
            lhs, rhs = walk(node.a), walk(node.b)
            if lhs is None or rhs is None:
                return None
            lc, lk = lhs
            rc, rk = rhs
            if lc and rc:
                return None  # product of two variable terms: non-affine
            if lc:
                scale, (coeffs, k) = rk, (lc, lk)
                if rc:
                    return None
            else:
                scale, (coeffs, k) = lk, (rc, rk)
            return {v: c * scale for v, c in coeffs.items()}, k * scale
        return None

    def _merge(lhs, rhs, sign):
        lc, lk = lhs
        rc, rk = rhs
        coeffs = dict(lc)
        for v, c in rc.items():
            coeffs[v] = coeffs.get(v, 0) + sign * c
        coeffs = {v: c for v, c in coeffs.items() if c != 0}
        return coeffs, lk + sign * rk

    result = walk(simplify(expr))
    if cache is None:
        cache = expr._linear_cache = {}
    elif len(cache) >= _MEMO_CAP:
        cache.clear()
    cache[cache_key] = None if result is None else (dict(result[0]), result[1])
    return result
