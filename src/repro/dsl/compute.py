"""Tensor operations (the ``ComputeOp`` data structure of Section II-C.2).

A :class:`ComputeOp` captures everything the Inspector and Rewriter need about
a tensor operation: the declared output axes, the reduction axes, the
expression tree of the body, and the referenced input tensors.  It is the
analysis-friendly counterpart of the imperative tensor IR (``repro.tir``).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from .axis import AxisKind, IterAxis, loop_axis
from .dtype import from_string
from .expr import (
    Expr,
    Reduce,
    TensorLoad,
    free_vars,
    post_order,
    tensors_referenced,
)
from .tensor import Tensor

__all__ = ["Operation", "PlaceholderOp", "ComputeOp", "compute"]


class Operation:
    """Base class of all tensor operations."""

    name: str

    @property
    def input_tensors(self) -> List[Tensor]:
        raise NotImplementedError

    @property
    def output(self) -> Tensor:
        raise NotImplementedError


class PlaceholderOp(Operation):
    """The trivial operation that produces an input tensor."""

    def __init__(self, tensor: Tensor) -> None:
        self.name = tensor.name
        self._tensor = tensor

    @property
    def input_tensors(self) -> List[Tensor]:
        return []

    @property
    def output(self) -> Tensor:
        return self._tensor

    def __repr__(self) -> str:
        return f"PlaceholderOp({self._tensor!r})"


class ComputeOp(Operation):
    """A tensor operation described by axes and an expression body.

    Attributes
    ----------
    axes:
        The data-parallel output axes, one per output dimension.
    body:
        The expression computed for each output point.  It may contain a
        :class:`~repro.dsl.expr.Reduce` node.
    accumulate:
        When ``True``, the operation *updates* its output in place
        (``c[i, j] += ...``), i.e. the accumulator register and the output
        register are the same.  This models the Tensor Core constraint
        discussed under Figure 4(c).
    """

    def __init__(
        self,
        name: str,
        axes: Sequence[IterAxis],
        body: Expr,
        accumulate: bool = False,
        output_dtype=None,
    ) -> None:
        self.name = name
        self.axes = list(axes)
        for ax in self.axes:
            if ax.is_reduce:
                raise ValueError(f"output axis {ax.name} must be data parallel")
        self.body = body
        self.accumulate = bool(accumulate)
        dtype = from_string(output_dtype) if output_dtype is not None else body.dtype
        shape = tuple(ax.extent for ax in self.axes)
        self._output = Tensor(shape, dtype, name, op=self)
        self._validate()

    # -- derived structure ------------------------------------------------
    @property
    def reduce_axes(self) -> List[IterAxis]:
        """All reduction axes appearing in the body (in first-use order)."""
        found: List[IterAxis] = []
        for node in post_order(self.body):
            if isinstance(node, Reduce):
                for ax in node.axes:
                    if ax not in found:
                        found.append(ax)
        return found

    @property
    def all_axes(self) -> List[IterAxis]:
        """Data-parallel axes followed by reduction axes."""
        return list(self.axes) + self.reduce_axes

    @property
    def input_tensors(self) -> List[Tensor]:
        tensors = [t for t in tensors_referenced(self.body) if t is not self._output]
        return tensors

    @property
    def output(self) -> Tensor:
        return self._output

    @property
    def has_reduction(self) -> bool:
        return bool(self.reduce_axes) or self.accumulate

    # -- validation ---------------------------------------------------------
    def _validate(self) -> None:
        axis_vars = {ax.var for ax in self.axes} | {ax.var for ax in self.reduce_axes}
        for var in free_vars(self.body):
            if var not in axis_vars:
                raise ValueError(
                    f"operation {self.name!r}: body references unbound variable "
                    f"{var.name!r}"
                )
        # Reduce nodes may not be nested inside other expressions' reduces.
        def check_nesting(expr: Expr, inside_reduce: bool) -> None:
            if isinstance(expr, Reduce):
                if inside_reduce:
                    raise ValueError("nested reductions are not supported")
                check_nesting(expr.source, True)
                return
            for child in expr.children:
                check_nesting(child, inside_reduce)

        check_nesting(self.body, False)

    def __repr__(self) -> str:
        return (
            f"ComputeOp({self.name}, out_shape={self._output.shape}, "
            f"dtype={self._output.dtype.name}, "
            f"reduce={[ax.name for ax in self.reduce_axes]})"
        )


def compute(
    shape: Sequence[int],
    fcompute: Callable[..., Expr],
    name: str = "compute",
    accumulate: bool = False,
    output_dtype=None,
    axis_names: Optional[Sequence[str]] = None,
) -> Tensor:
    """Declare a computed tensor.

    ``fcompute`` receives one data-parallel :class:`IterAxis` per output
    dimension and returns the body expression, which may contain
    :func:`~repro.dsl.expr.sum_reduce` over reduction axes created by the
    caller.  Example (the VNNI semantics of Figure 4(a))::

        a = placeholder((64,), "uint8", "a")
        b = placeholder((64,), "int8", "b")
        c = placeholder((16,), "int32", "c")
        j = reduce_axis(0, 4, "j")
        d = compute(
            (16,),
            lambda i: c[i] + sum_reduce(cast("int32", a[i * 4 + j]) *
                                        cast("int32", b[i * 4 + j]), j),
            name="d",
        )
    """
    shape = tuple(int(s) for s in shape)
    if axis_names is None:
        axis_names = [f"{name}_i{k}" for k in range(len(shape))]
    axes = [loop_axis(0, s, n) for s, n in zip(shape, axis_names)]
    body = fcompute(*axes)
    if not isinstance(body, Expr):
        raise TypeError("fcompute must return a DSL expression")
    op = ComputeOp(name, axes, body, accumulate=accumulate, output_dtype=output_dtype)
    return op.output
