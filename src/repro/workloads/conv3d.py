"""3-D convolution workloads (the extensibility study of Section VI-C).

The paper takes every 2-D convolution of ResNet-18, converts it to a 3-D
convolution (adding a depth dimension), and maps Intel VNNI onto it without
any change to UNIT — the point being that a new *operation* needs no new
compiler work.  These generators reproduce that conversion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..dsl import Tensor, cast, compute, placeholder, reduce_axis, sum_reduce
from .conv2d import Conv2DParams

__all__ = ["Conv3DParams", "conv3d_ncdhwc", "conv3d_from_conv2d"]


@dataclass(frozen=True)
class Conv3DParams:
    """Shape parameters of one 3-D convolution layer."""

    in_channels: int
    in_depth: int
    in_height: int
    in_width: int
    out_channels: int
    kernel: int  # cubic kernel: KD = KH = KW
    stride: int = 1
    name: str = "conv3d"

    @property
    def out_depth(self) -> int:
        return (self.in_depth - self.kernel) // self.stride + 1

    @property
    def out_height(self) -> int:
        return (self.in_height - self.kernel) // self.stride + 1

    @property
    def out_width(self) -> int:
        return (self.in_width - self.kernel) // self.stride + 1

    @property
    def macs(self) -> int:
        return (
            self.out_depth
            * self.out_height
            * self.out_width
            * self.out_channels
            * self.in_channels
            * self.kernel**3
        )


def conv3d_from_conv2d(params: Conv2DParams, depth: int = 8) -> Conv3DParams:
    """The paper's conversion: add a depth dimension to a 2-D layer."""
    return Conv3DParams(
        in_channels=params.in_channels,
        in_depth=depth,
        in_height=params.in_height,
        in_width=params.in_width,
        out_channels=params.out_channels,
        kernel=params.kernel,
        stride=params.stride,
        name=params.name.replace("conv2d", "conv3d") + "_3d",
    )


def conv3d_ncdhwc(
    params: Conv3DParams,
    lanes: int = 16,
    reduction: int = 4,
    in_dtype: str = "uint8",
    weight_dtype: str = "int8",
    acc_dtype: str = "int32",
) -> Tensor:
    """3-D convolution in the blocked channel layout (NCDHW[x]c)."""
    c_pad = _round_up(params.in_channels, reduction)
    k_pad = _round_up(params.out_channels, lanes)
    c_outer = c_pad // reduction
    k_outer = k_pad // lanes
    kk = params.kernel
    stride = params.stride

    data = placeholder(
        (c_outer, params.in_depth, params.in_height, params.in_width, reduction),
        in_dtype,
        "data",
    )
    weight = placeholder(
        (k_outer, c_outer, kk, kk, kk, lanes, reduction), weight_dtype, "weight"
    )
    rco = reduce_axis(0, c_outer, "rco")
    rci = reduce_axis(0, reduction, "rci")
    rd = reduce_axis(0, kk, "rd")
    rr = reduce_axis(0, kk, "rh")
    rs = reduce_axis(0, kk, "rw")
    return compute(
        (k_outer, params.out_depth, params.out_height, params.out_width, lanes),
        lambda ko, od, oy, ox, ki: sum_reduce(
            cast(acc_dtype, data[rco, od * stride + rd, oy * stride + rr, ox * stride + rs, rci])
            * cast(acc_dtype, weight[ko, rco, rd, rr, rs, ki, rci]),
            [rco, rd, rr, rs, rci],
        ),
        name=params.name,
        axis_names=["ko", "od", "oh", "ow", "ki"],
    )


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple
