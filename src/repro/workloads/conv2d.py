"""2-D convolution workload generators.

Two formulations are provided:

* :func:`conv2d_hwc` — the data-layout of the paper's Figure 5 walkthrough
  (HWC activations, RSKC weights), used to demonstrate and test the Inspector.
* :func:`conv2d_nchwc` — the blocked ``NCHW[x]c`` / ``KCRS[y]k[x]c`` layout
  that the evaluated models use after the graph-level layout pass
  (Section V-C): the innermost dimensions are padded/blocked so the channel
  loops tile perfectly by the instruction's lanes, which is what makes VNNI /
  DOT applicable without residue guards.
* :func:`conv2d_gemm` — the implicit-GEMM formulation used on the GPU, where
  the spatial output positions form one data-parallel dimension and the
  ``C*R*S`` reduction forms the other, matching the Tensor Core's 16×16×16
  matrix-multiply structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..dsl import (
    Tensor,
    cast,
    compute,
    placeholder,
    reduce_axis,
    sum_reduce,
)

__all__ = ["Conv2DParams", "conv2d_hwc", "conv2d_nchwc", "conv2d_gemm", "conv2d_macs"]


@dataclass(frozen=True)
class Conv2DParams:
    """Shape parameters of one convolution layer (Table I's columns).

    ``in_height``/``in_width`` are the input feature-map sizes (IHW),
    ``in_channels`` is C, ``out_channels`` is K, ``kernel`` is R = S and
    ``stride`` applies to both spatial dimensions.
    """

    in_channels: int
    in_height: int
    in_width: int
    out_channels: int
    kernel: int
    stride: int = 1
    padding: int = 0
    name: str = "conv2d"

    @property
    def out_height(self) -> int:
        return (self.in_height + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def out_width(self) -> int:
        return (self.in_width + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of the layer (batch size 1)."""
        return (
            self.out_height
            * self.out_width
            * self.out_channels
            * self.in_channels
            * self.kernel
            * self.kernel
        )

    @property
    def input_bytes_int8(self) -> int:
        return self.in_height * self.in_width * self.in_channels

    @property
    def weight_bytes_int8(self) -> int:
        return self.kernel * self.kernel * self.out_channels * self.in_channels

    @property
    def output_elements(self) -> int:
        return self.out_height * self.out_width * self.out_channels

    def describe(self) -> str:
        return (
            f"{self.name}: C={self.in_channels} IHW={self.in_height} "
            f"K={self.out_channels} R=S={self.kernel} stride={self.stride} "
            f"OHW={self.out_height}"
        )


def conv2d_macs(params: Conv2DParams) -> int:
    return params.macs


def conv2d_hwc(
    params: Conv2DParams,
    in_dtype: str = "uint8",
    weight_dtype: str = "int8",
    acc_dtype: str = "int32",
) -> Tensor:
    """Convolution in the HWC / RSKC layout of Figure 5 (stride 1, no padding)."""
    if params.stride != 1 or params.padding != 0:
        raise ValueError("conv2d_hwc models the Figure 5 walkthrough: stride 1, no padding")
    h, w, c = params.in_height, params.in_width, params.in_channels
    k, r = params.out_channels, params.kernel
    data = placeholder((h, w, c), in_dtype, "data")
    weight = placeholder((r, r, k, c), weight_dtype, "weight")
    rco = reduce_axis(0, c, "rc")
    rr = reduce_axis(0, r, "r")
    rs = reduce_axis(0, r, "s")
    return compute(
        (params.out_height, params.out_width, k),
        lambda x, y, kk: sum_reduce(
            cast(acc_dtype, data[x + rr, y + rs, rco])
            * cast(acc_dtype, weight[rr, rs, kk, rco]),
            [rr, rs, rco],
        ),
        name=params.name,
        axis_names=["x", "y", "k"],
    )


def conv2d_nchwc(
    params: Conv2DParams,
    lanes: int = 16,
    reduction: int = 4,
    in_dtype: str = "uint8",
    weight_dtype: str = "int8",
    acc_dtype: str = "int32",
) -> Tensor:
    """Convolution in the blocked NCHW[x]c layout used for CPU inference.

    ``lanes`` is the instruction's output-lane count ([x] = 16 for VNNI,
    4 for ARM DOT) and ``reduction`` its horizontal width ([y] = 4 for both).
    Channel counts are padded up to multiples of the block sizes, mirroring
    the graph-level padding pass.
    """
    c_pad = _round_up(params.in_channels, reduction)
    k_pad = _round_up(params.out_channels, lanes)
    c_outer = c_pad // reduction
    k_outer = k_pad // lanes
    ih = params.in_height + 2 * params.padding
    iw = params.in_width + 2 * params.padding
    oh, ow = params.out_height, params.out_width
    kk = params.kernel
    stride = params.stride

    # data: [C_outer, H, W, c_inner], weight: [K_outer, C_outer, R, S, k, c]
    data = placeholder((c_outer, ih, iw, reduction), in_dtype, "data")
    weight = placeholder(
        (k_outer, c_outer, kk, kk, lanes, reduction), weight_dtype, "weight"
    )
    rco = reduce_axis(0, c_outer, "rco")
    rci = reduce_axis(0, reduction, "rci")
    rr = reduce_axis(0, kk, "r")
    rs = reduce_axis(0, kk, "s")
    return compute(
        (k_outer, oh, ow, lanes),
        lambda ko, y, x, ki: sum_reduce(
            cast(acc_dtype, data[rco, y * stride + rr, x * stride + rs, rci])
            * cast(acc_dtype, weight[ko, rco, rr, rs, ki, rci]),
            [rco, rr, rs, rci],
        ),
        name=params.name,
        axis_names=["ko", "oh", "ow", "ki"],
    )


def conv2d_gemm(
    params: Conv2DParams,
    tile: int = 16,
    in_dtype: str = "float16",
    weight_dtype: str = "float16",
    acc_dtype: str = "float32",
) -> Tensor:
    """Implicit-GEMM convolution for the GPU / Tensor Core path.

    The output spatial positions (OH·OW, padded to a multiple of ``tile``)
    form the M dimension, the output channels the N dimension, and C·R·S the
    K (reduction) dimension.  The input operand is the im2col view of the
    activations, produced by the graph-level layout pass.
    """
    m = _round_up(params.out_height * params.out_width, tile)
    n = _round_up(params.out_channels, tile)
    k = _round_up(params.in_channels * params.kernel * params.kernel, tile)
    data = placeholder((m, k), in_dtype, "data_im2col")
    weight = placeholder((k, n), weight_dtype, "weight_matrix")
    rk = reduce_axis(0, k, "rk")
    return compute(
        (m, n),
        lambda i, j: sum_reduce(
            cast(acc_dtype, data[i, rk]) * cast(acc_dtype, weight[rk, j]), rk
        ),
        name=params.name,
        axis_names=["m", "n"],
    )


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple
