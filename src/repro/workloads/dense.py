"""Dense / matrix-multiplication workload generators.

Fully-connected layers are the other tensorization target of the paper's
models (the classifier heads).  ``dense_int8`` matches the VNNI/DOT data
types; ``matmul_fp16`` matches Tensor Core; ``matmul_fp32`` is the plain SIMD
baseline form used by the Figure 1 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dsl import Tensor, cast, compute, placeholder, reduce_axis, sum_reduce

__all__ = ["DenseParams", "dense_int8", "matmul_fp16", "matmul_fp32", "matmul_int8"]


@dataclass(frozen=True)
class DenseParams:
    """A dense layer: ``out[batch, out_features] = data @ weight^T``."""

    batch: int
    in_features: int
    out_features: int
    name: str = "dense"

    @property
    def macs(self) -> int:
        return self.batch * self.in_features * self.out_features


def dense_int8(
    params: DenseParams,
    lanes: int = 16,
    reduction: int = 4,
    in_dtype: str = "uint8",
    weight_dtype: str = "int8",
) -> Tensor:
    """Quantized dense layer in the blocked layout (output channels padded).

    ``in_dtype``/``weight_dtype`` default to the VNNI operand types; the ARM
    DOT instructions take int8×int8 (``sdot``) or uint8×uint8 (``udot``).
    """
    n = _round_up(params.out_features, lanes)
    k = _round_up(params.in_features, reduction)
    data = placeholder((params.batch, k), in_dtype, "data")
    weight = placeholder((n, k), weight_dtype, "weight")
    rk = reduce_axis(0, k, "rk")
    return compute(
        (params.batch, n),
        lambda b, j: sum_reduce(
            cast("int32", data[b, rk]) * cast("int32", weight[j, rk]), rk
        ),
        name=params.name,
        axis_names=["b", "j"],
    )


def matmul_int8(m: int, n: int, k: int, name: str = "matmul_i8") -> Tensor:
    """Quantized matrix multiplication C[m, n] = A[m, k] · B[n, k]^T."""
    a = placeholder((m, k), "uint8", "A")
    b = placeholder((n, k), "int8", "B")
    rk = reduce_axis(0, k, "rk")
    return compute(
        (m, n),
        lambda i, j: sum_reduce(cast("int32", a[i, rk]) * cast("int32", b[j, rk]), rk),
        name=name,
        axis_names=["i", "j"],
    )


def matmul_fp16(m: int, n: int, k: int, name: str = "matmul_fp16") -> Tensor:
    """Mixed-precision matmul (fp16 operands, fp32 accumulation) for Tensor Core."""
    a = placeholder((m, k), "float16", "A")
    b = placeholder((k, n), "float16", "B")
    rk = reduce_axis(0, k, "rk")
    return compute(
        (m, n),
        lambda i, j: sum_reduce(
            cast("float32", a[i, rk]) * cast("float32", b[rk, j]), rk
        ),
        name=name,
        axis_names=["i", "j"],
    )


def matmul_fp32(m: int, n: int, k: int, name: str = "matmul_fp32") -> Tensor:
    """Single-precision matmul (the non-tensorized baseline form)."""
    a = placeholder((m, k), "float32", "A")
    b = placeholder((k, n), "float32", "B")
    rk = reduce_axis(0, k, "rk")
    return compute(
        (m, n),
        lambda i, j: sum_reduce(a[i, rk] * b[rk, j], rk),
        name=name,
        axis_names=["i", "j"],
    )


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple
