"""Table I: the 16 representative convolution layers of the ablation study.

These are the layers used in Figures 10 and 11 — chosen by the authors from
the 148 distinct convolution workloads in the evaluated models to cover
diverse input shapes, kernel sizes and strides.  The values below are copied
verbatim from Table I of the paper.
"""

from __future__ import annotations

from typing import Dict, List

from .conv2d import Conv2DParams

__all__ = ["TABLE1_LAYERS", "table1_layer", "table1_as_rows"]

# Columns of Table I: C, IHW, K, R=S, stride, OHW (OHW is derived and used as
# a cross-check in the tests).
_TABLE1_RAW = [
    # (index, C, IHW, K, R=S, stride, OHW)
    (1, 288, 35, 384, 3, 2, 17),
    (2, 160, 9, 224, 3, 1, 7),
    (3, 1056, 7, 192, 1, 1, 7),
    (4, 80, 73, 192, 3, 1, 71),
    (5, 128, 16, 128, 3, 1, 14),
    (6, 192, 16, 192, 3, 1, 14),
    (7, 256, 16, 256, 3, 1, 14),
    (8, 1024, 14, 512, 1, 1, 14),
    (9, 128, 16, 160, 3, 1, 14),
    (10, 576, 14, 192, 1, 1, 14),
    (11, 96, 16, 128, 3, 1, 14),
    (12, 1024, 14, 256, 1, 1, 14),
    (13, 576, 14, 128, 1, 1, 14),
    (14, 64, 29, 96, 3, 1, 27),
    (15, 64, 56, 128, 1, 2, 28),
    (16, 608, 14, 192, 1, 1, 14),
]


def _make(index: int, c: int, ihw: int, k: int, r: int, stride: int, ohw: int) -> Conv2DParams:
    return Conv2DParams(
        in_channels=c,
        in_height=ihw,
        in_width=ihw,
        out_channels=k,
        kernel=r,
        stride=stride,
        padding=0,
        name=f"table1_layer{index}",
    )


TABLE1_LAYERS: List[Conv2DParams] = [_make(*row) for row in _TABLE1_RAW]

# Expected output sizes straight from the paper, for cross-checking.
TABLE1_EXPECTED_OHW: Dict[int, int] = {row[0]: row[6] for row in _TABLE1_RAW}


def table1_layer(index: int) -> Conv2DParams:
    """The layer with the given 1-based Table I index."""
    if not 1 <= index <= len(TABLE1_LAYERS):
        raise IndexError(f"Table I has layers 1..{len(TABLE1_LAYERS)}, got {index}")
    return TABLE1_LAYERS[index - 1]


def table1_as_rows() -> List[Dict[str, int]]:
    """Table I as a list of dict rows (what the benchmark harness prints)."""
    rows = []
    for i, layer in enumerate(TABLE1_LAYERS, start=1):
        rows.append(
            {
                "layer": i,
                "C": layer.in_channels,
                "IHW": layer.in_height,
                "K": layer.out_channels,
                "R=S": layer.kernel,
                "stride": layer.stride,
                "OHW": layer.out_height,
                "MACs": layer.macs,
            }
        )
    return rows
