"""``repro.workloads`` — tensor-operation generators used in the evaluation.

Convolutions (Figure 5 layout, the blocked NCHW[x]c CPU layout, the
implicit-GEMM GPU formulation), dense/matmul layers, 3-D convolutions
(Section VI-C), and the 16 representative layers of Table I.
"""

from .conv2d import Conv2DParams, conv2d_gemm, conv2d_hwc, conv2d_macs, conv2d_nchwc
from .conv3d import Conv3DParams, conv3d_from_conv2d, conv3d_ncdhwc
from .dense import DenseParams, dense_int8, matmul_fp16, matmul_fp32, matmul_int8
from .table1 import TABLE1_EXPECTED_OHW, TABLE1_LAYERS, table1_as_rows, table1_layer

__all__ = [
    "Conv2DParams",
    "conv2d_hwc",
    "conv2d_nchwc",
    "conv2d_gemm",
    "conv2d_macs",
    "Conv3DParams",
    "conv3d_from_conv2d",
    "conv3d_ncdhwc",
    "DenseParams",
    "dense_int8",
    "matmul_fp16",
    "matmul_fp32",
    "matmul_int8",
    "TABLE1_LAYERS",
    "TABLE1_EXPECTED_OHW",
    "table1_layer",
    "table1_as_rows",
]
