"""Arithmetic isomorphism between expression trees (Algorithm 1).

The Inspector's first step checks that (part of) the tensor operation is
*arithmetically equivalent* to the tensorized instruction: the two expression
trees must have the same topology, the same opcodes, and the same data type at
every node.  Leaves bind instruction registers to operation data sources, with
the constraint that one register cannot correspond to two different sources.

Both programs are first normalised into their *update form*:
``output[axes] = accumulator + elementwise_expression`` — the form drawn in
Figure 5(b).1 — so VNNI-style descriptions (separate init register ``c``) and
Tensor Core-style descriptions (``+=``) are matched uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dsl.compute import ComputeOp
from ..dsl.expr import (
    Add,
    BinaryOp,
    Cast,
    Const,
    Expr,
    Max,
    Min,
    Reduce,
    TensorLoad,
    arith_signature,
)
from ..dsl.tensor import Tensor

__all__ = ["UpdateForm", "update_form", "IsomorphismResult", "match_isomorphism"]


@dataclass
class UpdateForm:
    """The normalised "update statement" view of a tensor operation."""

    op: ComputeOp
    store: TensorLoad  # the written element, as a load-like reference
    value: Expr  # the right-hand side of the update


def update_form(op: ComputeOp) -> UpdateForm:
    """Normalise ``op`` into its update form.

    For a reduction ``out[...] = rest + sum(src)`` the update is
    ``out[...] = rest + src`` when an explicit accumulator expression ``rest``
    is present (the VNNI/DOT descriptions), and ``out[...] = out[...] + src``
    otherwise (ordinary compute definitions and ``+=`` accumulate operations).
    Operations without any reduction keep their body unchanged.
    """
    store = TensorLoad(op.output, [ax.var for ax in op.axes])
    body = op.body

    reduce_node, rest = _split_reduce(body)
    if reduce_node is None:
        if op.accumulate:
            return UpdateForm(op, store, Add(store, body))
        return UpdateForm(op, store, body)
    if reduce_node.combiner != "sum":
        # Horizontal max/min reductions exist (pooling) but no evaluated
        # tensorized instruction computes them; keep the form anyway.
        combiner_cls = {"max": Max, "min": Min}[reduce_node.combiner]
        return UpdateForm(op, store, combiner_cls(store, reduce_node.source))
    accumulator: Expr = rest if rest is not None and not op.accumulate else store
    if op.accumulate:
        accumulator = store
    return UpdateForm(op, store, Add(accumulator, reduce_node.source))


def _split_reduce(body: Expr) -> Tuple[Optional[Reduce], Optional[Expr]]:
    if isinstance(body, Reduce):
        return body, None
    if isinstance(body, Add):
        if isinstance(body.b, Reduce):
            return body.b, body.a
        if isinstance(body.a, Reduce):
            return body.a, body.b
    return None, None


@dataclass
class IsomorphismResult:
    """Outcome of Algorithm 1.

    Attributes
    ----------
    matched:
        Whether the two trees are arithmetically isomorphic.
    register_bindings:
        Instruction register tensor → operation tensor (or constant value).
    load_pairs:
        ``(instruction_load, operation_load)`` pairs for every matched leaf,
        including the pair of store targets.  These feed the array-access
        isomorphism check and, later, the operand-generation rules.
    reason:
        Human-readable explanation when the match fails.
    """

    matched: bool
    register_bindings: Dict[Tensor, object] = field(default_factory=dict)
    load_pairs: List[Tuple[TensorLoad, TensorLoad]] = field(default_factory=list)
    reason: str = ""


def match_isomorphism(instr_op: ComputeOp, prog_op: ComputeOp) -> IsomorphismResult:
    """Run Algorithm 1 on the instruction and program update forms."""
    instr = update_form(instr_op)
    prog = update_form(prog_op)

    result = IsomorphismResult(matched=False)

    # The store targets must agree in dtype and also bind the destination
    # register to the program's output buffer.
    if instr.store.dtype != prog.store.dtype:
        result.reason = (
            f"output dtype mismatch: instruction accumulates in "
            f"{instr.store.dtype.name}, operation in {prog.store.dtype.name}"
        )
        return result
    # O(1) reject fast-path: the cached arithmetic signature folds exactly
    # the topology/dtype/opcode properties the recursive match requires, so
    # differing signatures can never match.  This is what lets the Inspector
    # scan a whole instruction registry without re-walking the program tree.
    if arith_signature(instr.value) != arith_signature(prog.value):
        result.reason = (
            "arithmetic signature mismatch (tree topology, dtype or opcode)"
        )
        return result

    bindings: Dict[Tensor, object] = {}
    load_pairs: List[Tuple[TensorLoad, TensorLoad]] = []
    _bind_leaf(instr.store, prog.store, bindings, load_pairs)

    ok, reason = _inspect(instr.value, prog.value, bindings, load_pairs)
    if not ok:
        result.reason = reason
        return result

    return IsomorphismResult(True, bindings, load_pairs, "")


def _inspect(
    a: Expr,
    b: Expr,
    bindings: Dict[Tensor, object],
    load_pairs: List[Tuple[TensorLoad, TensorLoad]],
) -> Tuple[bool, str]:
    """The recursive core of Algorithm 1.

    ``a`` comes from the instruction, ``b`` from the operation.
    """
    if a.dtype != b.dtype:
        return False, f"dtype mismatch: {a.dtype.name} vs {b.dtype.name}"

    a_leaf, b_leaf = _is_leaf(a), _is_leaf(b)
    if a_leaf and b_leaf:
        return _match_leaves(a, b, bindings, load_pairs)
    if a_leaf != b_leaf:
        return False, "tree topology mismatch (leaf vs non-leaf)"

    if isinstance(a, Cast) and isinstance(b, Cast):
        if a.dtype != b.dtype:
            return False, "cast target mismatch"
        return _inspect(a.value, b.value, bindings, load_pairs)
    if isinstance(a, BinaryOp) and isinstance(b, BinaryOp):
        if a.opcode != b.opcode:
            return False, f"opcode mismatch: {a.opcode} vs {b.opcode}"
        ok, reason = _inspect(a.a, b.a, bindings, load_pairs)
        if not ok:
            return False, reason
        return _inspect(a.b, b.b, bindings, load_pairs)
    return False, (
        f"unsupported/unequal node kinds: {type(a).__name__} vs {type(b).__name__}"
    )


def _is_leaf(expr: Expr) -> bool:
    return isinstance(expr, (TensorLoad, Const))


def _match_leaves(
    a: Expr,
    b: Expr,
    bindings: Dict[Tensor, object],
    load_pairs: List[Tuple[TensorLoad, TensorLoad]],
) -> Tuple[bool, str]:
    if isinstance(a, Const):
        # A constant in the instruction description must match an identical
        # constant in the program (rare; e.g. fixed shift amounts).
        if isinstance(b, Const) and b.value == a.value:
            return True, ""
        return False, "instruction constant does not match operation leaf"
    assert isinstance(a, TensorLoad)
    if isinstance(b, Const):
        # A register operand fed by a program constant: allowed, the register
        # simply corresponds to that constant (Section III-B.2 footnote).
        bound = bindings.get(a.tensor)
        if bound is None:
            bindings[a.tensor] = ("const", b.value)
            return True, ""
        if bound == ("const", b.value):
            return True, ""
        return False, (
            f"register {a.tensor.name!r} already bound to {bound!r}, "
            f"cannot also be constant {b.value!r}"
        )
    return _bind_leaf(a, b, bindings, load_pairs)


def _bind_leaf(
    a: TensorLoad,
    b: TensorLoad,
    bindings: Dict[Tensor, object],
    load_pairs: List[Tuple[TensorLoad, TensorLoad]],
) -> Tuple[bool, str]:
    bound = bindings.get(a.tensor)
    if bound is None:
        bindings[a.tensor] = b.tensor
    elif bound is not b.tensor:
        return False, (
            f"register {a.tensor.name!r} corresponds to multiple data sources "
            f"({getattr(bound, 'name', bound)!r} and {b.tensor.name!r})"
        )
    load_pairs.append((a, b))
    return True, ""
