"""``repro.inspector`` — applicability detection (Section III-B).

Decides whether a tensorized instruction can execute (part of) a tensor
operation, via arithmetic isomorphism of expression trees (Algorithm 1) and
array-access isomorphism over enumerated loop mappings.
"""

from .access import (
    LoopMapping,
    check_mapping,
    enumerate_mappings,
    feasible_mappings,
)
from .inspector import (
    InspectionResult,
    Inspector,
    applicable_intrinsics,
    inspect_applicability,
)
from .isomorphism import (
    IsomorphismResult,
    UpdateForm,
    match_isomorphism,
    update_form,
)

__all__ = [
    "LoopMapping",
    "enumerate_mappings",
    "check_mapping",
    "feasible_mappings",
    "InspectionResult",
    "Inspector",
    "inspect_applicability",
    "applicable_intrinsics",
    "IsomorphismResult",
    "UpdateForm",
    "match_isomorphism",
    "update_form",
]
