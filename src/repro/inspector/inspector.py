"""The Inspector: applicability detection for tensorized instructions.

Given a tensor operation and a tensorized instruction (both as ComputeOps),
the Inspector answers *whether* and *how* the instruction can execute part of
the operation:

1. arithmetic isomorphism of the expression trees (Algorithm 1);
2. array-access isomorphism, which enumerates feasible loop mappings.

The first feasible mapping (in innermost-first order) is the greedy default
used for code generation; all feasible mappings are also exposed because the
paper leaves the choice as a dimension of the tuning space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..dsl.compute import ComputeOp
from ..isa.intrinsic import TensorIntrinsic
from ..isa.registry import intrinsics_for_target
from .access import LoopMapping, check_mapping, enumerate_mappings, feasible_mappings
from .isomorphism import IsomorphismResult, match_isomorphism

__all__ = ["InspectionResult", "Inspector", "inspect_applicability", "applicable_intrinsics"]


@dataclass
class InspectionResult:
    """Everything the Rewriter needs to tensorize an operation."""

    operation: ComputeOp
    intrinsic: TensorIntrinsic
    applicable: bool
    isomorphism: Optional[IsomorphismResult] = None
    mappings: List[LoopMapping] = field(default_factory=list)
    reason: str = ""

    @property
    def mapping(self) -> LoopMapping:
        """The greedily chosen (innermost, best-locality) feasible mapping."""
        if not self.mappings:
            raise ValueError("operation is not tensorizable with this instruction")
        return self.mappings[0]

    def __repr__(self) -> str:
        status = "applicable" if self.applicable else f"not applicable ({self.reason})"
        return (
            f"InspectionResult({self.operation.name} x {self.intrinsic.name}: {status}, "
            f"{len(self.mappings)} feasible mapping(s))"
        )


class Inspector:
    """Applicability detection pass (Section III-B)."""

    def __init__(self, intrinsic: TensorIntrinsic) -> None:
        self.intrinsic = intrinsic

    def inspect(self, operation: ComputeOp) -> InspectionResult:
        """Run both inspection steps on ``operation``."""
        iso = match_isomorphism(self.intrinsic.op, operation)
        if not iso.matched:
            return InspectionResult(
                operation,
                self.intrinsic,
                applicable=False,
                isomorphism=iso,
                reason=f"arithmetic isomorphism failed: {iso.reason}",
            )
        mappings = feasible_mappings(operation, self.intrinsic.op, iso)
        if not mappings:
            total = len(enumerate_mappings(operation, self.intrinsic.op))
            return InspectionResult(
                operation,
                self.intrinsic,
                applicable=False,
                isomorphism=iso,
                reason=(
                    f"no feasible loop mapping (tried {total} candidate "
                    f"mappings; data-access isomorphism failed for all)"
                ),
            )
        return InspectionResult(
            operation,
            self.intrinsic,
            applicable=True,
            isomorphism=iso,
            mappings=mappings,
        )


def inspect_applicability(operation_or_tensor, intrinsic: TensorIntrinsic) -> InspectionResult:
    """Convenience wrapper around :class:`Inspector`."""
    op = getattr(operation_or_tensor, "op", operation_or_tensor)
    return Inspector(intrinsic).inspect(op)


def applicable_intrinsics(operation_or_tensor, target: str) -> List[InspectionResult]:
    """Inspect the operation against every instruction registered for ``target``.

    Returns the applicable results only, mixed-precision tensorized
    instructions first (they execute more MACs per instruction).
    """
    op = getattr(operation_or_tensor, "op", operation_or_tensor)
    results = []
    for intrin in intrinsics_for_target(target):
        res = Inspector(intrin).inspect(op)
        if res.applicable:
            results.append(res)
    results.sort(key=lambda r: r.intrinsic.macs_per_call, reverse=True)
    return results
