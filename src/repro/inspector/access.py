"""Array-access isomorphism: enumerating and checking loop mappings.

After arithmetic isomorphism succeeds, the Inspector must decide *which* loop
levels of the tensor operation are executed by the instruction.  It enumerates
candidate mappings ``f : A -> B`` from operation loops (A) onto instruction
loops (B) — only loops with the same annotation may map to each other — and
accepts a mapping iff, for every matched pair of memory accesses ``(u, v)``
(``u`` from the operation, ``v`` from the instruction),

    S'(u) ⊆ S(v)   where   S'(u) = { f(x) | x ∈ S(u) ∩ A }

(Section III-B.2).  If ``S'(u)`` is a *strict* subset, the data must be
broadcast across the missing instruction loops; if the condition fails, one
register lane would correspond to several memory addresses and the mapping is
rejected.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..dsl.axis import IterAxis
from ..dsl.compute import ComputeOp
from ..dsl.expr import Expr, TensorLoad, Var, free_vars
from .isomorphism import IsomorphismResult

__all__ = ["LoopMapping", "enumerate_mappings", "check_mapping", "feasible_mappings"]


@dataclass
class LoopMapping:
    """A candidate assignment of operation loops to instruction loops."""

    # Operation axis -> instruction axis (the paper's f : A -> B).
    axis_map: Dict[IterAxis, IterAxis] = field(default_factory=dict)

    @property
    def op_axes(self) -> List[IterAxis]:
        return list(self.axis_map.keys())

    @property
    def instr_axes(self) -> List[IterAxis]:
        return list(self.axis_map.values())

    def broadcast_axes(self, load_pairs) -> Dict[TensorLoad, List[IterAxis]]:
        """For each instruction load, the instruction axes along which the
        program data must be broadcast (S(v) \\ S'(u))."""
        out: Dict[TensorLoad, List[IterAxis]] = {}
        for instr_load, prog_load in load_pairs:
            s_v = _axis_set(instr_load, self.instr_axes)
            s_prime = self._image(prog_load)
            out[instr_load] = [ax for ax in self.instr_axes if ax in s_v and ax not in s_prime]
        return out

    def _image(self, prog_load: TensorLoad) -> Set[IterAxis]:
        vars_in_u = set()
        for idx in prog_load.indices:
            vars_in_u.update(free_vars(idx))
        return {
            self.axis_map[ax]
            for ax in self.axis_map
            if ax.var in vars_in_u
        }

    def __repr__(self) -> str:
        pairs = ", ".join(f"{a.name}->{b.name}" for a, b in self.axis_map.items())
        return f"LoopMapping({pairs})"


def _axis_set(load: TensorLoad, axes: Iterable[IterAxis]) -> Set[IterAxis]:
    """The set of given axes whose variables appear in the load's indices."""
    axes = list(axes)
    vars_in = set()
    for idx in load.indices:
        vars_in.update(free_vars(idx))
    return {ax for ax in axes if ax.var in vars_in}


def enumerate_mappings(
    prog_op: ComputeOp, instr_op: ComputeOp, innermost_first: bool = True
) -> List[LoopMapping]:
    """Enumerate all type-respecting injective mappings of instruction loops.

    Every instruction loop must be assigned exactly one distinct operation
    loop of the same kind (data-parallel or reduction).  Candidates are
    ordered so that mappings using the operation's innermost dimensions come
    first — the greedy preference described in Section IV-A (better data
    locality for inner dimensions).
    """
    prog_dp = list(prog_op.axes)
    prog_red = list(prog_op.reduce_axes)
    instr_dp = list(instr_op.axes)
    instr_red = list(instr_op.reduce_axes)

    if len(prog_dp) < len(instr_dp) or len(prog_red) < len(instr_red):
        return []

    if innermost_first:
        # Prefer operation loops that are declared later (innermost).
        prog_dp_order = list(reversed(prog_dp))
        prog_red_order = list(reversed(prog_red))
    else:
        prog_dp_order = prog_dp
        prog_red_order = prog_red

    mappings: List[LoopMapping] = []
    for dp_choice in itertools.permutations(prog_dp_order, len(instr_dp)):
        for red_choice in itertools.permutations(prog_red_order, len(instr_red)):
            axis_map: Dict[IterAxis, IterAxis] = {}
            for prog_ax, instr_ax in zip(dp_choice, instr_dp):
                axis_map[prog_ax] = instr_ax
            for prog_ax, instr_ax in zip(red_choice, instr_red):
                axis_map[prog_ax] = instr_ax
            mappings.append(LoopMapping(axis_map))
    return mappings


def check_mapping(
    mapping: LoopMapping,
    iso: IsomorphismResult,
    instr_op: ComputeOp,
) -> Tuple[bool, str]:
    """Check the feasibility condition ``S'(u) ⊆ S(v)`` for every access pair."""
    instr_axes = instr_op.all_axes
    mapped_op_axes = mapping.axis_map
    for instr_load, prog_load in iso.load_pairs:
        s_v = _axis_set(instr_load, instr_axes)
        # S(u) ∩ A, then its image through f.
        vars_in_u: Set[Var] = set()
        for idx in prog_load.indices:
            vars_in_u.update(free_vars(idx))
        s_prime = {
            mapped_op_axes[ax] for ax in mapped_op_axes if ax.var in vars_in_u
        }
        if not s_prime.issubset(s_v):
            missing = ", ".join(ax.name for ax in s_prime - s_v)
            return False, (
                f"access {prog_load.tensor.name!r} varies along instruction "
                f"loops [{missing}] that the register operand "
                f"{instr_load.tensor.name!r} does not index — one lane would "
                f"correspond to multiple addresses"
            )
    return True, ""


def feasible_mappings(
    prog_op: ComputeOp, instr_op: ComputeOp, iso: IsomorphismResult
) -> List[LoopMapping]:
    """All feasible loop mappings, in locality-preference order."""
    result = []
    for mapping in enumerate_mappings(prog_op, instr_op):
        ok, _ = check_mapping(mapping, iso, instr_op)
        if ok:
            result.append(mapping)
    return result
