"""Inception family (inception-bn and inception-v3).

``inception-bn`` is the batch-normalised GoogLeNet (Inception-v2 in the MXNet
model zoo naming); ``inception-v3`` follows the Szegedy et al. v3 design with
its factorised 5×5 → two 3×3 and 7×1/1×7 modules.  The channel configurations
follow the published architectures; auxiliary classifier heads are omitted
(they are not executed at inference time).
"""

from __future__ import annotations

from typing import List, Sequence

from ..graph.ir import Graph, TensorShape
from .builder import GraphBuilder

__all__ = ["inception_bn", "inception_v3"]


# ---------------------------------------------------------------------------
# Inception-BN (GoogLeNet with batch norm)
# ---------------------------------------------------------------------------

def _bn_module(
    builder: GraphBuilder,
    c1: int,
    c3r: int,
    c3: int,
    c5r: int,
    c5: int,
    pool_proj: int,
    stride: int = 1,
) -> str:
    """One Inception-BN mixed module (1x1 / 3x3 / double-3x3 / pool branches)."""
    source = builder.last
    branches: List[str] = []
    if c1 > 0:
        branches.append(builder.conv(c1, 1, source=source, prefix="mix1x1"))
    b3 = builder.conv(c3r, 1, source=source, prefix="mix3r")
    branches.append(builder.conv(c3, 3, stride=stride, source=b3, prefix="mix3"))
    b5 = builder.conv(c5r, 1, source=source, prefix="mix5r")
    b5 = builder.conv(c5, 3, source=b5, prefix="mix5a")
    branches.append(builder.conv(c5, 3, stride=stride, source=b5, prefix="mix5b"))
    if pool_proj > 0:
        pooled = builder.pool("avg", 3, stride=stride, padding=1, source=source)
        branches.append(builder.conv(pool_proj, 1, source=pooled, prefix="mixpool"))
    else:
        branches.append(builder.pool("max", 3, stride=stride, padding=1, source=source))
    return builder.concat(branches)


def inception_bn() -> Graph:
    """Inception-BN (the MXNet model zoo's bn-GoogLeNet)."""
    builder = GraphBuilder("inception-bn", TensorShape(3, 224, 224))
    builder.conv(64, 7, stride=2, padding=3)
    builder.pool("max", 3, 2, 1)
    builder.conv(64, 1)
    builder.conv(192, 3)
    builder.pool("max", 3, 2, 1)
    # 3a, 3b, 3c (stride 2)
    _bn_module(builder, 64, 64, 64, 64, 96, 32)
    _bn_module(builder, 64, 64, 96, 64, 96, 64)
    _bn_module(builder, 0, 128, 160, 64, 96, 0, stride=2)
    # 4a-4e (4e stride 2)
    _bn_module(builder, 224, 64, 96, 96, 128, 128)
    _bn_module(builder, 192, 96, 128, 96, 128, 128)
    _bn_module(builder, 160, 128, 160, 128, 160, 128)
    _bn_module(builder, 96, 128, 192, 160, 192, 128)
    _bn_module(builder, 0, 128, 192, 192, 256, 0, stride=2)
    # 5a, 5b
    _bn_module(builder, 352, 192, 320, 160, 224, 128)
    _bn_module(builder, 352, 192, 320, 192, 224, 128)
    return builder.classifier(1000)


# ---------------------------------------------------------------------------
# Inception-v3
# ---------------------------------------------------------------------------

def _v3_module_a(builder: GraphBuilder, pool_features: int) -> str:
    source = builder.last
    b1 = builder.conv(64, 1, source=source)
    b5 = builder.conv(48, 1, source=source)
    b5 = builder.conv(64, 5, source=b5, padding=2)
    b3 = builder.conv(64, 1, source=source)
    b3 = builder.conv(96, 3, source=b3)
    b3 = builder.conv(96, 3, source=b3)
    bp = builder.pool("avg", 3, 1, 1, source=source)
    bp = builder.conv(pool_features, 1, source=bp)
    return builder.concat([b1, b5, b3, bp])


def _v3_module_b(builder: GraphBuilder) -> str:
    """Grid-size reduction 35x35 -> 17x17."""
    source = builder.last
    b3 = builder.conv(384, 3, stride=2, padding=0, source=source)
    bd = builder.conv(64, 1, source=source)
    bd = builder.conv(96, 3, source=bd)
    bd = builder.conv(96, 3, stride=2, padding=0, source=bd)
    bp = builder.pool("max", 3, 2, 0, source=source)
    return builder.concat([b3, bd, bp])


def _v3_module_c(builder: GraphBuilder, c7: int) -> str:
    source = builder.last
    b1 = builder.conv(192, 1, source=source)
    # The 1×7 / 7×1 factorised pairs are modelled as 3×3 convolutions with the
    # same channel flow (14 vs 9 MACs per output point — the closest square
    # kernel; the graph IR tracks square kernels only).
    b7 = builder.conv(c7, 1, source=source)
    b7 = builder.conv(c7, 3, source=b7)
    b7 = builder.conv(192, 3, source=b7)
    b77 = builder.conv(c7, 1, source=source)
    b77 = builder.conv(c7, 3, source=b77)
    b77 = builder.conv(c7, 3, source=b77)
    b77 = builder.conv(c7, 3, source=b77)
    b77 = builder.conv(192, 3, source=b77)
    bp = builder.pool("avg", 3, 1, 1, source=source)
    bp = builder.conv(192, 1, source=bp)
    return builder.concat([b1, b7, b77, bp])


def _v3_module_d(builder: GraphBuilder) -> str:
    """Grid-size reduction 17x17 -> 8x8."""
    source = builder.last
    b3 = builder.conv(192, 1, source=source)
    b3 = builder.conv(320, 3, stride=2, padding=0, source=b3)
    b7 = builder.conv(192, 1, source=source)
    b7 = builder.conv(192, 3, source=b7)  # factorised 1x7 + 7x1 pair
    b7 = builder.conv(192, 3, source=b7)
    b7 = builder.conv(192, 3, stride=2, padding=0, source=b7)
    bp = builder.pool("max", 3, 2, 0, source=source)
    return builder.concat([b3, b7, bp])


def _v3_module_e(builder: GraphBuilder) -> str:
    source = builder.last
    b1 = builder.conv(320, 1, source=source)
    b3 = builder.conv(384, 1, source=source)
    b3a = builder.conv(384, 3, source=b3)
    b3b = builder.conv(384, 3, source=b3)
    bd = builder.conv(448, 1, source=source)
    bd = builder.conv(384, 3, source=bd)
    bda = builder.conv(384, 3, source=bd)
    bdb = builder.conv(384, 3, source=bd)
    bp = builder.pool("avg", 3, 1, 1, source=source)
    bp = builder.conv(192, 1, source=bp)
    return builder.concat([b1, b3a, b3b, bda, bdb, bp])


def inception_v3() -> Graph:
    """Inception-v3 (299×299 input, factorised convolutions)."""
    builder = GraphBuilder("inception-v3", TensorShape(3, 299, 299))
    builder.conv(32, 3, stride=2, padding=0)
    builder.conv(32, 3, padding=0)
    builder.conv(64, 3)
    builder.pool("max", 3, 2, 0)
    builder.conv(80, 1, padding=0)
    builder.conv(192, 3, padding=0)
    builder.pool("max", 3, 2, 0)
    _v3_module_a(builder, 32)
    _v3_module_a(builder, 64)
    _v3_module_a(builder, 64)
    _v3_module_b(builder)
    _v3_module_c(builder, 128)
    _v3_module_c(builder, 160)
    _v3_module_c(builder, 160)
    _v3_module_c(builder, 192)
    _v3_module_d(builder)
    _v3_module_e(builder)
    _v3_module_e(builder)
    return builder.classifier(1000)
