"""The model zoo used by the end-to-end experiments (Section V-C).

Nine models, matching the x-axes of Figures 8, 9 and 12:
resnet-18, resnet-50, resnet-50_v1b, inception-bn, inception-v3, resnet-101,
resnet-152, mobilenet-v1, mobilenet-v2.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..graph.ir import Graph
from .inception import inception_bn, inception_v3
from .mobilenet import mobilenet_v1, mobilenet_v2
from .resnet import resnet101, resnet152, resnet18, resnet50, resnet50_v1b

__all__ = ["MODEL_ZOO", "EVALUATED_MODELS", "get_model", "all_models"]

MODEL_ZOO: Dict[str, Callable[[], Graph]] = {
    "resnet-18": resnet18,
    "resnet-50": resnet50,
    "resnet-50_v1b": resnet50_v1b,
    "inception-bn": inception_bn,
    "inception-v3": inception_v3,
    "resnet-101": resnet101,
    "resnet-152": resnet152,
    "mobilenet-v1": mobilenet_v1,
    "mobilenet-v2": mobilenet_v2,
}

# The order the paper's figures use on the x axis.
EVALUATED_MODELS: List[str] = list(MODEL_ZOO.keys())

_CACHE: Dict[str, Graph] = {}


def get_model(name: str, fresh: bool = False) -> Graph:
    """Build (or fetch a cached copy of) a model graph by its figure name."""
    if name not in MODEL_ZOO:
        raise KeyError(f"unknown model {name!r}; known: {EVALUATED_MODELS}")
    if fresh:
        return MODEL_ZOO[name]()
    if name not in _CACHE:
        _CACHE[name] = MODEL_ZOO[name]()
    return _CACHE[name]


def all_models(fresh: bool = False) -> Dict[str, Graph]:
    """All nine evaluated models, keyed by name."""
    return {name: get_model(name, fresh=fresh) for name in EVALUATED_MODELS}
