"""``repro.models`` — the DNN model zoo of the evaluation.

ResNet-18/50/50_v1b/101/152, Inception-BN, Inception-v3, MobileNet-v1/v2,
built as graph-IR DAGs with the published layer configurations.
"""

from .builder import GraphBuilder
from .inception import inception_bn, inception_v3
from .mobilenet import mobilenet_v1, mobilenet_v2
from .resnet import resnet101, resnet152, resnet18, resnet50, resnet50_v1b
from .zoo import EVALUATED_MODELS, MODEL_ZOO, all_models, get_model

__all__ = [
    "GraphBuilder",
    "resnet18",
    "resnet50",
    "resnet50_v1b",
    "resnet101",
    "resnet152",
    "inception_bn",
    "inception_v3",
    "mobilenet_v1",
    "mobilenet_v2",
    "MODEL_ZOO",
    "EVALUATED_MODELS",
    "get_model",
    "all_models",
]
