"""ResNet family (resnet-18 / 50 / 50_v1b / 101 / 152).

Layer configurations follow the original architecture (He et al.) and the
GluonCV "v1b" variant, which moves the stride-2 downsampling from the first
1×1 convolution of a bottleneck to its 3×3 convolution — the distinction that
makes ``resnet-50`` and ``resnet-50_v1b`` separate bars in the paper's
end-to-end figures.
"""

from __future__ import annotations

from typing import List

from ..graph.ir import Graph, TensorShape
from .builder import GraphBuilder

__all__ = ["resnet18", "resnet50", "resnet50_v1b", "resnet101", "resnet152"]

_STAGE_CHANNELS = [64, 128, 256, 512]


def _stem(builder: GraphBuilder) -> None:
    builder.conv(64, kernel=7, stride=2, padding=3, prefix="stem_conv")
    builder.pool("max", kernel=3, stride=2, padding=1)


def _basic_block(builder: GraphBuilder, channels: int, stride: int) -> None:
    identity = builder.last
    builder.conv(channels, kernel=3, stride=stride)
    out = builder.conv(channels, kernel=3, stride=1, relu=False)
    if stride != 1 or _input_channels(builder, identity) != channels:
        identity = builder.conv(
            channels, kernel=1, stride=stride, source=identity, relu=False, prefix="downsample"
        )
    builder.add(out, identity)


def _bottleneck_block(
    builder: GraphBuilder, channels: int, stride: int, v1b: bool = False
) -> None:
    identity = builder.last
    expansion = channels * 4
    # v1 puts the stride on the first 1x1 conv, v1b on the 3x3 conv.
    builder.conv(channels, kernel=1, stride=1 if v1b else stride)
    builder.conv(channels, kernel=3, stride=stride if v1b else 1)
    out = builder.conv(expansion, kernel=1, stride=1, relu=False)
    if stride != 1 or _input_channels(builder, identity) != expansion:
        identity = builder.conv(
            expansion, kernel=1, stride=stride, source=identity, relu=False, prefix="downsample"
        )
    builder.add(out, identity)


def _input_channels(builder: GraphBuilder, name: str) -> int:
    return builder.graph.output_shape(name).channels


def _resnet(name: str, block: str, layers: List[int], v1b: bool = False) -> Graph:
    builder = GraphBuilder(name, TensorShape(3, 224, 224))
    _stem(builder)
    for stage, (channels, blocks) in enumerate(zip(_STAGE_CHANNELS, layers)):
        for b in range(blocks):
            stride = 2 if (stage > 0 and b == 0) else 1
            if block == "basic":
                _basic_block(builder, channels, stride)
            else:
                _bottleneck_block(builder, channels, stride, v1b=v1b)
    return builder.classifier(1000)


def resnet18() -> Graph:
    """ResNet-18 (basic blocks, [2, 2, 2, 2])."""
    return _resnet("resnet-18", "basic", [2, 2, 2, 2])


def resnet50() -> Graph:
    """ResNet-50 (bottleneck blocks, [3, 4, 6, 3])."""
    return _resnet("resnet-50", "bottleneck", [3, 4, 6, 3])


def resnet50_v1b() -> Graph:
    """ResNet-50 v1b (stride on the 3×3 convolution of each bottleneck)."""
    return _resnet("resnet-50_v1b", "bottleneck", [3, 4, 6, 3], v1b=True)


def resnet101() -> Graph:
    """ResNet-101 (bottleneck blocks, [3, 4, 23, 3])."""
    return _resnet("resnet-101", "bottleneck", [3, 4, 23, 3])


def resnet152() -> Graph:
    """ResNet-152 (bottleneck blocks, [3, 8, 36, 3])."""
    return _resnet("resnet-152", "bottleneck", [3, 8, 36, 3])
