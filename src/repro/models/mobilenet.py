"""MobileNet-v1 and MobileNet-v2.

MobileNets alternate depthwise convolutions (not tensorizable — no channel
reduction) with 1×1 pointwise convolutions (tensorizable and the bulk of the
MACs), which is why they still benefit from VNNI/DOT in the end-to-end
figures, though less than the ResNet/Inception models.
"""

from __future__ import annotations

from ..graph.ir import Graph, TensorShape
from .builder import GraphBuilder

__all__ = ["mobilenet_v1", "mobilenet_v2"]

# (pointwise output channels, depthwise stride) per separable block of v1.
_V1_BLOCKS = [
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
]

# (expansion factor, output channels, repeats, first stride) per v2 stage.
_V2_STAGES = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def mobilenet_v1() -> Graph:
    """MobileNet-v1 (width multiplier 1.0, 224×224)."""
    builder = GraphBuilder("mobilenet-v1", TensorShape(3, 224, 224))
    builder.conv(32, 3, stride=2)
    for out_channels, stride in _V1_BLOCKS:
        builder.depthwise(kernel=3, stride=stride)
        builder.conv(out_channels, 1, prefix="pointwise")
    return builder.classifier(1000)


def mobilenet_v2() -> Graph:
    """MobileNet-v2 (inverted residual bottlenecks, width 1.0, 224×224)."""
    builder = GraphBuilder("mobilenet-v2", TensorShape(3, 224, 224))
    builder.conv(32, 3, stride=2)
    in_channels = 32
    for expansion, out_channels, repeats, first_stride in _V2_STAGES:
        for block in range(repeats):
            stride = first_stride if block == 0 else 1
            block_input = builder.last
            hidden = in_channels * expansion
            if expansion != 1:
                builder.conv(hidden, 1, prefix="expand")
            builder.depthwise(kernel=3, stride=stride)
            out = builder.conv(out_channels, 1, relu=False, prefix="project")
            if stride == 1 and in_channels == out_channels:
                builder.add(out, block_input, relu=False)
            in_channels = out_channels
    builder.conv(1280, 1, prefix="head")
    return builder.classifier(1000)
