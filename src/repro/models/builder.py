"""Small helper for assembling model graphs.

The model definitions only need the layer *shapes* (the evaluation estimates
latency, it does not train), so the builder provides the usual macro layers —
conv+BN+ReLU, depthwise separable blocks, residual blocks — and tracks tensor
names so definitions read like the original network descriptions.
"""

from __future__ import annotations

from typing import List, Optional

from ..graph.ir import (
    ConcatNode,
    Conv2DNode,
    DenseNode,
    DepthwiseConv2DNode,
    ElementwiseNode,
    FlattenNode,
    GlobalPoolNode,
    Graph,
    InputNode,
    PoolNode,
    SoftmaxNode,
    TensorShape,
)

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Incrementally build a :class:`~repro.graph.ir.Graph`."""

    def __init__(self, name: str, input_shape: TensorShape = TensorShape(3, 224, 224)) -> None:
        self.graph = Graph(name)
        self._counter = 0
        self.last = self.graph.add(InputNode(name="data", shape=input_shape))

    # -- naming -----------------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"

    # -- primitive layers ---------------------------------------------------
    def conv(
        self,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: Optional[int] = None,
        source: Optional[str] = None,
        relu: bool = True,
        batch_norm: bool = True,
        prefix: str = "conv",
    ) -> str:
        """Convolution followed by (optional) batch-norm and ReLU."""
        if padding is None:
            padding = kernel // 2
        src = source or self.last
        name = self._fresh(prefix)
        self.graph.add(
            Conv2DNode(
                name=name,
                inputs=[src],
                out_channels=out_channels,
                kernel=kernel,
                stride=stride,
                padding=padding,
            )
        )
        out = name
        if batch_norm:
            out = self.elementwise("batch_norm", source=out)
        if relu:
            out = self.elementwise("relu", source=out)
        self.last = out
        return out

    def depthwise(
        self,
        kernel: int = 3,
        stride: int = 1,
        source: Optional[str] = None,
        relu: bool = True,
    ) -> str:
        src = source or self.last
        name = self._fresh("dwconv")
        self.graph.add(
            DepthwiseConv2DNode(
                name=name, inputs=[src], kernel=kernel, stride=stride, padding=kernel // 2
            )
        )
        out = self.elementwise("batch_norm", source=name)
        if relu:
            out = self.elementwise("relu", source=out)
        self.last = out
        return out

    def elementwise(self, kind: str, source: Optional[str] = None, extra: Optional[str] = None) -> str:
        src = source or self.last
        name = self._fresh(kind)
        inputs = [src] if extra is None else [src, extra]
        self.graph.add(ElementwiseNode(name=name, inputs=inputs, kind=kind))
        self.last = name
        return name

    def add(self, a: str, b: str, relu: bool = True) -> str:
        """Residual addition (optionally followed by ReLU)."""
        out = self.elementwise("add", source=a, extra=b)
        if relu:
            out = self.elementwise("relu", source=out)
        self.last = out
        return out

    def pool(self, kind: str = "max", kernel: int = 3, stride: int = 2, padding: int = 1,
             source: Optional[str] = None) -> str:
        src = source or self.last
        name = self._fresh(f"{kind}pool")
        self.graph.add(
            PoolNode(name=name, inputs=[src], kind=kind, kernel=kernel, stride=stride, padding=padding)
        )
        self.last = name
        return name

    def global_pool(self, source: Optional[str] = None) -> str:
        src = source or self.last
        name = self._fresh("global_pool")
        self.graph.add(GlobalPoolNode(name=name, inputs=[src]))
        self.last = name
        return name

    def concat(self, sources: List[str]) -> str:
        name = self._fresh("concat")
        self.graph.add(ConcatNode(name=name, inputs=list(sources)))
        self.last = name
        return name

    def dense(self, out_features: int, source: Optional[str] = None) -> str:
        src = source or self.last
        flat = self._fresh("flatten")
        self.graph.add(FlattenNode(name=flat, inputs=[src]))
        name = self._fresh("fc")
        self.graph.add(DenseNode(name=name, inputs=[flat], out_features=out_features))
        self.last = name
        return name

    def classifier(self, classes: int = 1000, source: Optional[str] = None) -> Graph:
        """Global pooling + dense classifier + softmax, then finish the graph."""
        self.global_pool(source=source)
        self.dense(classes)
        name = self._fresh("softmax")
        self.graph.add(SoftmaxNode(name=name, inputs=[self.last]))
        self.last = name
        return self.finish()

    def finish(self) -> Graph:
        self.graph.infer_shapes()
        return self.graph
