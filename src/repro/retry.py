"""The one retry/backoff policy for every unreliable edge in the repo.

Before this module, each tier that could fail transiently grew its own
ad-hoc recovery loop: :class:`~repro.service.client.ServiceClient` slept a
*linear* ``retry_backoff_s * attempt``, :class:`RemoteSession` kept a fixed
reconnect cooldown, and :class:`~repro.rewriter.store.FileLock` spun on a
constant poll interval.  Three loops, three sets of constants, none of them
jittered — so a fleet of clients that lost the daemon together retried in
lockstep and hammered it back down together.

:class:`RetryPolicy` replaces all of them with one immutable value object:

* **capped exponential backoff** — ``base_delay_s * multiplier**(n-1)``
  clipped to ``max_delay_s``;
* **deterministic jitter** — each delay is shrunk by up to ``jitter`` of
  itself using a hash of ``(seed, attempt)``, not a global RNG, so two
  policies with different seeds decorrelate while any single schedule is
  exactly reproducible (the chaos suite depends on that);
* **per-op deadlines** — ``deadline_s`` bounds the *total* time spent
  across attempts, independent of the attempt cap (``max_attempts=None``
  means deadline-only, which is how the file lock uses it);
* **transient-vs-fatal classification** — :meth:`classify` decides which
  exceptions are worth another attempt; everything not explicitly listed
  as transient is fatal, because retrying a logic error only hides it.

:class:`CircuitBreaker` builds the degradation side on top of the same
backoff schedule: after ``failure_threshold`` consecutive failures the
breaker opens and stays open for an *escalating* reset timeout
(``policy.backoff_s(trips)``), then admits a single half-open probe whose
outcome either closes it or re-opens it for longer.  ``trip(forever=True)``
is the terminal state for failures that cannot heal within a process (a
protocol version mismatch).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Type

__all__ = ["RetryPolicy", "CircuitBreaker"]


def _unit_interval(seed: int, attempt: int) -> float:
    """A deterministic sample in ``[0, 1)`` from ``(seed, attempt)``.

    ``hashlib`` rather than ``random``: the schedule must not depend on —
    or perturb — any global RNG state, and must be identical across
    processes and Python invocations (``hash()`` is salted).
    """
    blob = f"{seed}:{attempt}".encode("ascii")
    return int.from_bytes(hashlib.md5(blob).digest()[:8], "big") / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """An immutable retry schedule: how often, how long, and for what.

    ``max_attempts`` counts *total* tries (so ``max_attempts=1`` means no
    retry at all); ``None`` leaves the count unbounded and lets
    ``deadline_s`` be the only stop condition.  ``jitter`` is the fraction
    of each delay that deterministic jitter may shave off; ``seed``
    decorrelates independent retriers (the file lock seeds with its pid so
    contending processes do not poll in phase).
    """

    max_attempts: Optional[int] = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25
    deadline_s: Optional[float] = None
    transient: Tuple[Type[BaseException], ...] = (OSError, TimeoutError)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1 (or None)")
        if self.max_attempts is None and self.deadline_s is None:
            raise ValueError(
                "an unbounded policy needs a deadline_s (otherwise it never stops)"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    # -- the schedule ---------------------------------------------------------
    def backoff_s(self, attempt: int) -> float:
        """The delay before retry number ``attempt`` (1-based).

        Capped exponential, then jittered *downward* so the cap is a true
        upper bound: ``delay * (1 - jitter * u)`` with ``u`` drawn
        deterministically from ``(seed, attempt)``.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        # The exponent is clamped: past ~2**128 the delay is pinned at the
        # cap anyway, and an unbounded float power would overflow first.
        raw = min(
            self.base_delay_s * self.multiplier ** min(attempt - 1, 128),
            self.max_delay_s,
        )
        if self.jitter <= 0.0:
            return raw
        return raw * (1.0 - self.jitter * _unit_interval(self.seed, attempt))

    def classify(self, exc: BaseException) -> str:
        """``"transient"`` (worth retrying) or ``"fatal"`` (re-raise now)."""
        return "transient" if isinstance(exc, self.transient) else "fatal"

    def attempts(
        self,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> Iterator[int]:
        """Yield attempt indices ``0, 1, ...``, sleeping the backoff between.

        The generator stops (without sleeping) when the attempt cap is
        reached or when the next backoff would land past ``deadline_s``;
        a pending delay is clipped to the time remaining so the deadline
        is honoured to within one sleep, never overshot by a full backoff.
        """
        start = clock()
        attempt = 0
        while True:
            yield attempt
            attempt += 1
            if self.max_attempts is not None and attempt >= self.max_attempts:
                return
            delay = self.backoff_s(attempt)
            if self.deadline_s is not None:
                remaining = self.deadline_s - (clock() - start)
                if remaining <= 0.0:
                    return
                delay = min(delay, remaining)
            sleep(delay)

    def call(
        self,
        fn: Callable[[], object],
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
    ) -> object:
        """Run ``fn`` under this policy.

        Fatal exceptions propagate immediately; transient ones are retried
        on the schedule and the *last* one is re-raised when attempts (or
        the deadline) run out.
        """
        last: Optional[BaseException] = None
        for attempt in self.attempts(sleep=sleep, clock=clock):
            if attempt and on_retry is not None and last is not None:
                on_retry(attempt, last)
            try:
                return fn()
            except Exception as exc:
                if self.classify(exc) != "transient":
                    raise
                last = exc
        assert last is not None
        raise last


class CircuitBreaker:
    """Consecutive-failure breaker with escalating half-open probes.

    States (:attr:`state`):

    * ``"closed"`` — requests flow; ``failure_threshold`` *consecutive*
      failures trip it open;
    * ``"open"`` — :meth:`allow` is False until the reset timeout expires.
      The timeout escalates with consecutive trips on the shared
      :class:`RetryPolicy` schedule (``reset_timeout_s`` doubling up to
      ``max_reset_timeout_s``), so a dependency that keeps failing is
      probed less and less often;
    * ``"half_open"`` — the timeout expired; :meth:`allow` is True again so
      callers issue a probe.  :meth:`record_success` closes the breaker and
      resets the escalation; :meth:`record_failure` re-opens it for longer.

    ``trip(forever=True)`` opens the breaker permanently — the caller has
    classified the failure as unrecoverable within this process.

    Not thread-safe by itself; :class:`RemoteSession` owns one per session
    (sessions are documented single-threaded).
    """

    def __init__(
        self,
        failure_threshold: int = 1,
        reset_timeout_s: float = 5.0,
        max_reset_timeout_s: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
        seed: int = 0,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.failure_threshold = failure_threshold
        self._backoff = RetryPolicy(
            max_attempts=None,
            base_delay_s=reset_timeout_s,
            max_delay_s=max_reset_timeout_s,
            multiplier=2.0,
            jitter=0.0,
            deadline_s=float("inf"),
            seed=seed,
        )
        self._clock = clock
        self._open = False
        self._opened_until = 0.0
        self.permanent = False
        self.failures = 0  # consecutive, since the last success/trip
        self.trips = 0  # consecutive, since the last success
        self.opens = 0  # lifetime count, for summaries
        self.successes = 0

    @property
    def state(self) -> str:
        if self.permanent:
            return "open"
        if not self._open:
            return "closed"
        return "open" if self._clock() < self._opened_until else "half_open"

    def allow(self) -> bool:
        """Whether a request may be issued right now (open blocks; half-open
        admits probes — every caller that arrives after the timeout may
        probe, and the first definitive outcome settles the state)."""
        return self.state != "open"

    def reset_timeout_s(self) -> float:
        """The reset timeout the *next* trip would impose."""
        return self._backoff.backoff_s(self.trips + 1)

    def record_success(self) -> None:
        self.successes += 1
        self.failures = 0
        self.trips = 0
        self._open = False

    def record_failure(self) -> None:
        self.failures += 1
        # A failed half-open probe re-opens immediately: the threshold
        # gates the first trip, not the re-trips.
        if self._open or self.failures >= self.failure_threshold:
            self.trip()

    def trip(self, forever: bool = False) -> None:
        """Open the breaker now (escalating timeout), or permanently."""
        self.opens += 1
        self._open = True
        if forever:
            self.permanent = True
            self._opened_until = float("inf")
            return
        self.trips += 1
        self._opened_until = self._clock() + self._backoff.backoff_s(self.trips)
        self.failures = 0

    def summary(self) -> str:
        return (
            f"CircuitBreaker[{self.state}]: {self.failures} failures, "
            f"{self.opens} opens, {self.successes} successes"
            + (", permanent" if self.permanent else "")
        )
