"""Plain SIMD (non-tensorized) vector FMA instructions.

These are *not* mixed-precision tensorized instructions: they perform
elementwise multiply-accumulate with no horizontal reduction.  They exist to
model the baseline code paths of the evaluation — AVX-512 fp32 FMA (what
oneDNN fp32 kernels and the non-VNNI TVM schedules bottleneck on), fp16 vector
arithmetic without Tensor Core support (the Figure 1 experiment), and ARM
NEON MLA (the TVM-NEON baseline of Figure 12).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..dsl import cast, compute, placeholder
from .intrinsic import IntrinsicPerf, TensorIntrinsic

__all__ = ["make_avx512_fma_fp32", "make_avx512_fma_int8_via_widen", "make_neon_mla_int8"]


def _fma_hw(prefix: str, acc_np):
    # Elementwise, hence naturally batch-polymorphic (leading batch axes).
    def impl(operands: Dict[str, np.ndarray]) -> np.ndarray:
        a = operands[f"{prefix}_a"].astype(acc_np)
        b = operands[f"{prefix}_b"].astype(acc_np)
        c = operands[f"{prefix}_c"].astype(acc_np)
        return (c + a * b).astype(acc_np)

    return impl


def _make_fma(
    name: str,
    prefix: str,
    lanes: int,
    in_dtype: str,
    acc_dtype: str,
    target: str,
    perf: IntrinsicPerf,
    description: str,
) -> TensorIntrinsic:
    a = placeholder((lanes,), in_dtype, f"{prefix}_a")
    b = placeholder((lanes,), in_dtype, f"{prefix}_b")
    c = placeholder((lanes,), acc_dtype, f"{prefix}_c")
    d = compute(
        (lanes,),
        lambda i: c[i] + cast(acc_dtype, a[i]) * cast(acc_dtype, b[i]),
        name=f"{prefix}_d",
        axis_names=[f"{prefix}_i"],
    )
    import numpy as np

    acc_np = {"float32": np.float32, "int32": np.int32, "float16": np.float16}[acc_dtype]
    return TensorIntrinsic(
        name=name,
        op=d.op,
        target=target,
        perf=perf,
        hardware_impl=_fma_hw(prefix, acc_np),
        description=description,
        batchable=True,
    )


def make_avx512_fma_fp32() -> TensorIntrinsic:
    """AVX-512 fp32 fused multiply-add: 16 lanes, no horizontal reduction."""
    return _make_fma(
        "x86.avx512.fma.fp32",
        "fma32",
        16,
        "float32",
        "float32",
        "x86",
        IntrinsicPerf(latency_cycles=4.0, throughput_per_cycle=2.0, issue_ports=2),
        "16-lane fp32 FMA (the SIMD baseline the paper compares VNNI against)",
    )


def make_avx512_fma_int8_via_widen() -> TensorIntrinsic:
    """The int8 path *without* VNNI: widen to int32 then vector MAC.

    Executing quantized MACs without VNNI costs extra widening instructions;
    this intrinsic models the per-element semantics while the CPU cost model
    charges the additional casting overhead (the Figure 1 phenomenon for
    integer types).
    """
    return _make_fma(
        "x86.avx512.mac.int8.widened",
        "maci8",
        16,
        "int8",
        "int32",
        "x86",
        IntrinsicPerf(latency_cycles=5.0, throughput_per_cycle=1.0, issue_ports=2),
        "16-lane int8 MAC emulated through widening (no VNNI)",
    )


def make_neon_mla_int8() -> TensorIntrinsic:
    """ARM NEON 128-bit MLA on widened int8 operands (the TVM-NEON baseline)."""
    return _make_fma(
        "arm.neon.mla.int8.widened",
        "mlai8",
        4,
        "int8",
        "int32",
        "arm",
        IntrinsicPerf(latency_cycles=4.0, throughput_per_cycle=2.0, issue_ports=2),
        "4-lane int32 MLA on widened int8 operands (no DOT)",
    )
