"""The unified tensorized-instruction abstraction (Section III-A).

A :class:`TensorIntrinsic` packages three things:

1. its **semantics**, written as a small tensor-DSL program — exactly the
   listings of Figure 4 (this is what the Inspector matches against);
2. its **hardware model** — an exact lane-by-lane numpy implementation used by
   the interpreter as the golden functional model of the instruction;
3. its **performance characteristics** — issue latency/throughput, number of
   MAC lanes, register width — consumed by the hardware simulators.

The abstraction is what makes UNIT "unified": adding a new instruction means
writing one new description, not a new compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..dsl.axis import IterAxis
from ..dsl.compute import ComputeOp
from ..dsl.dtype import DType
from ..dsl.tensor import Tensor
from ..tir import execute, lower

__all__ = ["TensorIntrinsic", "IntrinsicPerf", "dot_product_grid"]


def dot_product_grid(a_name: str, b_name: str):
    """A grid-form *contribution* model for accumulator dot products.

    Implements the :attr:`TensorIntrinsic.grid_impl` contract for every
    instruction of the family ``d[i] = c[i] + sum_j a[f(i,j)] * b[g(i,j)]``:
    given the ``a``/``b`` operands evaluated pointwise on ``lead + iteration
    axes`` grids (possibly zero-stride broadcast views — they are consumed
    without materialisation), it returns the accumulator *contribution*
    ``sum_j a*b`` with the requested leading axes folded into the same exact
    int32 accumulation.  Every 8/16-bit product and reduction-width sum fits
    int32, so the fused ``einsum`` is bit-identical to the per-call hardware
    model under wraparound integer addition.
    """

    def impl(operands: Dict[str, np.ndarray], reduce_axes=()) -> np.ndarray:
        a = operands[a_name]
        b = operands[b_name]
        nd = a.ndim
        reduced = set(reduce_axes)
        subs = list(range(nd))
        keep = [d for d in range(nd - 2) if d not in reduced]
        return np.einsum(a, subs, b, subs, keep + [nd - 2], dtype=np.int32)

    return impl


@dataclass(frozen=True)
class IntrinsicPerf:
    """Performance characteristics used by the analytical machine models.

    Attributes
    ----------
    latency_cycles:
        Result latency of one instruction (creates the RAW-hazard penalty the
        CPU tuner's unrolling hides — Section III-C).
    throughput_per_cycle:
        How many of these instructions one core / one sub-core unit can issue
        per cycle when the pipeline is saturated.
    issue_ports:
        Number of execution ports/units able to execute the instruction.
    """

    latency_cycles: float = 4.0
    throughput_per_cycle: float = 1.0
    issue_ports: int = 1


class TensorIntrinsic:
    """A tensorized (or vector) instruction described in the tensor DSL."""

    def __init__(
        self,
        name: str,
        op: ComputeOp,
        target: str,
        llvm_intrinsic: str = "",
        perf: Optional[IntrinsicPerf] = None,
        hardware_impl: Optional[Callable[[Dict[str, np.ndarray]], np.ndarray]] = None,
        description: str = "",
        batchable: bool = False,
        grid_impl: Optional[Callable] = None,
    ) -> None:
        self.name = name
        self.op = op
        self.target = target
        self.llvm_intrinsic = llvm_intrinsic or name
        self.perf = perf or IntrinsicPerf()
        self.hardware_impl = hardware_impl
        self.description = description
        # Whether ``hardware_impl`` is batch-polymorphic: given operands with
        # one extra leading batch axis it returns the batched result.  Set by
        # the instruction descriptions whose models are written rank-
        # polymorphically; the vectorized engine exploits it.
        self.batchable = batchable
        # Optional *grid-form contribution* model, the fast path of the
        # engine's cross-round batched dispatch.  Contract:
        # ``grid_impl(operands, reduce_axes)`` receives every non-accumulator
        # operand evaluated pointwise on a ``lead + iteration-axes`` grid
        # (arrays may be zero-stride broadcast views; implementations must
        # consume them without materialising, e.g. through ``einsum``), and
        # returns the accumulator *contribution* — the instruction's output
        # with a zeroed accumulator — summed over the leading ``reduce_axes``
        # (which are dropped from the result) in the output register layout.
        # Only sound for instructions whose accumulation is exact under
        # reordering (integer wraparound); see ``dot_product_grid``.
        self.grid_impl = grid_impl

    # -- structural views --------------------------------------------------
    @property
    def output(self) -> Tensor:
        return self.op.output

    @property
    def input_tensors(self) -> List[Tensor]:
        return self.op.input_tensors

    @property
    def axes(self) -> List[IterAxis]:
        """All iteration axes of the instruction's DSL description."""
        return self.op.all_axes

    @property
    def data_parallel_axes(self) -> List[IterAxis]:
        return list(self.op.axes)

    @property
    def reduce_axes(self) -> List[IterAxis]:
        return self.op.reduce_axes

    @property
    def output_lanes(self) -> int:
        """Number of output elements produced per instruction."""
        return self.op.output.num_elements

    @property
    def reduction_width(self) -> int:
        """Number of elements accumulated horizontally per output lane."""
        width = 1
        for ax in self.reduce_axes:
            width *= ax.extent
        return width

    @property
    def macs_per_call(self) -> int:
        """Multiply-accumulate operations executed by one instruction."""
        return self.output_lanes * self.reduction_width

    @property
    def operand_dtypes(self) -> List[DType]:
        return [t.dtype for t in self.input_tensors]

    @property
    def output_dtype(self) -> DType:
        return self.op.output.dtype

    @property
    def is_mixed_precision(self) -> bool:
        """Whether the accumulation dtype is wider than the operand dtypes."""
        narrow = [d for d in self.operand_dtypes if d != self.output_dtype]
        return any(d.bits < self.output_dtype.bits for d in narrow)

    @property
    def accumulate(self) -> bool:
        """Whether the destination register is also the accumulator source."""
        return self.op.accumulate

    # -- functional execution ----------------------------------------------
    def execute(self, operands: Dict[str, np.ndarray]) -> np.ndarray:
        """Execute the instruction on register contents.

        ``operands`` maps the DSL operand tensor names to numpy arrays with the
        register shapes.  Returns the destination register contents.  Uses the
        hand-written hardware model when available, otherwise falls back to
        interpreting the DSL description (both paths are cross-checked in the
        test suite).
        """
        self._check_operands(operands)
        if self.hardware_impl is not None:
            return self.hardware_impl(operands)
        return self.reference(operands)

    def execute_batch(self, operands: Dict[str, np.ndarray], batch: int) -> np.ndarray:
        """Execute the instruction over a whole batch of register sets.

        ``operands`` maps operand names to arrays of shape ``(batch, *reg)``.
        Batch-polymorphic hardware models run in one call; others fall back
        to a per-point loop, which still spares the caller all per-lane
        Python evaluation.  Returns ``(batch, *out_reg)``.
        """
        out_shape = (batch,) + self.output.shape
        if self.hardware_impl is not None and self.batchable:
            result = np.asarray(self.hardware_impl(operands))
            if result.shape != out_shape:  # pragma: no cover - model bug guard
                raise ValueError(
                    f"{self.name}: batched hardware model returned shape "
                    f"{result.shape}, expected {out_shape}"
                )
            return result
        result = np.empty(out_shape, dtype=self.output.dtype.np_dtype)
        for i in range(batch):
            result[i] = self.execute({k: v[i] for k, v in operands.items()})
        return result

    def reference(self, operands: Dict[str, np.ndarray]) -> np.ndarray:
        """Execute the instruction by interpreting its DSL description."""
        self._check_operands(operands)
        func = lower(self.op, name=f"{self.op.name}_ref")
        buffers = {}
        for tensor in func.inputs:
            buffers[tensor] = np.ascontiguousarray(
                operands[tensor.name], dtype=tensor.dtype.np_dtype
            )
        out = func.output
        if self.accumulate:
            init = operands.get(out.name)
            if init is None:
                init = np.zeros(out.shape, dtype=out.dtype.np_dtype)
            buffers[out] = np.array(init, dtype=out.dtype.np_dtype, copy=True)
        else:
            buffers[out] = np.zeros(out.shape, dtype=out.dtype.np_dtype)
        return execute(func, buffers)

    def _check_operands(self, operands: Dict[str, np.ndarray]) -> None:
        for tensor in self.input_tensors:
            if tensor.name not in operands:
                raise KeyError(f"{self.name}: missing operand {tensor.name!r}")
            got = operands[tensor.name]
            if tuple(np.shape(got)) != tensor.shape:
                raise ValueError(
                    f"{self.name}: operand {tensor.name!r} has shape "
                    f"{np.shape(got)}, expected {tensor.shape}"
                )

    def __repr__(self) -> str:
        ins = ", ".join(f"{t.name}:{t.dtype.name}x{t.num_elements}" for t in self.input_tensors)
        return (
            f"TensorIntrinsic({self.name}, [{ins}] -> "
            f"{self.output_dtype.name}x{self.output_lanes}, target={self.target})"
        )
