"""Registry of tensorized instructions.

UNIT's extensibility story (Section VI-C) is that supporting a new
instruction only requires registering its DSL description.  The registry keeps
the instructions addressable by name and by hardware target so the Inspector
can enumerate candidates for a given platform.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .arm_dot import make_sdot, make_udot
from .intrinsic import TensorIntrinsic
from .simd import (
    make_avx512_fma_fp32,
    make_avx512_fma_int8_via_widen,
    make_neon_mla_int8,
)
from .tensor_core import make_wmma_16x16x16
from .vnni import make_vpdpbusd, make_vpdpwssd

__all__ = [
    "register_intrinsic",
    "get_intrinsic",
    "list_intrinsics",
    "intrinsics_for_target",
    "default_intrinsic_for_target",
]

_FACTORIES: Dict[str, Callable[[], TensorIntrinsic]] = {}
_CACHE: Dict[str, TensorIntrinsic] = {}


def register_intrinsic(name: str, factory: Callable[[], TensorIntrinsic]) -> None:
    """Register a new tensorized instruction under ``name``.

    Registering twice with the same name overwrites the previous entry (useful
    for experimenting with alternative descriptions in tests).
    """
    _FACTORIES[name] = factory
    _CACHE.pop(name, None)


def get_intrinsic(name: str) -> TensorIntrinsic:
    """Fetch (and lazily instantiate) a registered instruction by name."""
    if name not in _FACTORIES:
        raise KeyError(
            f"unknown tensorized instruction {name!r}; known: {sorted(_FACTORIES)}"
        )
    if name not in _CACHE:
        _CACHE[name] = _FACTORIES[name]()
    return _CACHE[name]


def list_intrinsics() -> List[str]:
    """All registered instruction names."""
    return sorted(_FACTORIES)


def intrinsics_for_target(target: str) -> List[TensorIntrinsic]:
    """All instructions whose hardware target matches ``target``."""
    result = []
    for name in list_intrinsics():
        intrin = get_intrinsic(name)
        if intrin.target == target:
            result.append(intrin)
    return result


def default_intrinsic_for_target(target: str) -> TensorIntrinsic:
    """The flagship mixed-precision instruction of each evaluated platform."""
    defaults = {
        "x86": "x86.avx512.vpdpbusd",
        "arm": "arm.neon.sdot",
        "cuda": "nvvm.wmma.m16n16k16.mma.row.row.f32.f32",
    }
    if target not in defaults:
        raise KeyError(f"no default tensorized instruction for target {target!r}")
    return get_intrinsic(defaults[target])


# -- built-in registrations ---------------------------------------------------
register_intrinsic("x86.avx512.vpdpbusd", make_vpdpbusd)
register_intrinsic("x86.avx512.vpdpwssd", make_vpdpwssd)
register_intrinsic("arm.neon.sdot", make_sdot)
register_intrinsic("arm.neon.udot", make_udot)
register_intrinsic("nvvm.wmma.m16n16k16.mma.row.row.f32.f32", make_wmma_16x16x16)
register_intrinsic("x86.avx512.fma.fp32", make_avx512_fma_fp32)
register_intrinsic("x86.avx512.mac.int8.widened", make_avx512_fma_int8_via_widen)
register_intrinsic("arm.neon.mla.int8.widened", make_neon_mla_int8)
