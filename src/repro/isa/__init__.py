"""``repro.isa`` — tensorized instructions as tensor-DSL programs.

Each supported instruction (Intel VNNI, ARM DOT, Nvidia Tensor Core WMMA, and
the plain-SIMD baselines) is described by a :class:`TensorIntrinsic`: its
semantics as a small DSL program, an exact numpy hardware model, and the
performance characteristics the machine simulators consume.
"""

from .arm_dot import DOT_LANES, DOT_REDUCTION, make_sdot, make_udot
from .intrinsic import IntrinsicPerf, TensorIntrinsic
from .registry import (
    default_intrinsic_for_target,
    get_intrinsic,
    intrinsics_for_target,
    list_intrinsics,
    register_intrinsic,
)
from .simd import (
    make_avx512_fma_fp32,
    make_avx512_fma_int8_via_widen,
    make_neon_mla_int8,
)
from .tensor_core import WMMA_K, WMMA_M, WMMA_N, make_wmma_16x16x16
from .vnni import VNNI_LANES, VNNI_REDUCTION, make_vpdpbusd, make_vpdpwssd

__all__ = [
    "TensorIntrinsic",
    "IntrinsicPerf",
    "register_intrinsic",
    "get_intrinsic",
    "list_intrinsics",
    "intrinsics_for_target",
    "default_intrinsic_for_target",
    "make_vpdpbusd",
    "make_vpdpwssd",
    "make_sdot",
    "make_udot",
    "make_wmma_16x16x16",
    "make_avx512_fma_fp32",
    "make_avx512_fma_int8_via_widen",
    "make_neon_mla_int8",
    "VNNI_LANES",
    "VNNI_REDUCTION",
    "DOT_LANES",
    "DOT_REDUCTION",
    "WMMA_M",
    "WMMA_N",
    "WMMA_K",
]
