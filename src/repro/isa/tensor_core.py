"""Nvidia Tensor Core WMMA instruction (Figure 2(b)/4(c)).

``wmma.m16n16k16`` performs ``C += A @ B`` on 16×16 tiles where A and B hold
fp16 values and C accumulates in fp32.  The key structural difference from the
CPU instructions (noted under Figure 4(c)) is that the accumulator register is
also the destination register, so the DSL description uses the accumulate
(``+=``) form and an arbitrary initial accumulator cannot be supplied
separately — a constraint the Inspector honours when matching.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..dsl import cast, compute, placeholder, reduce_axis, sum_reduce
from .intrinsic import IntrinsicPerf, TensorIntrinsic

__all__ = ["make_wmma_16x16x16", "WMMA_M", "WMMA_N", "WMMA_K"]

WMMA_M = 16
WMMA_N = 16
WMMA_K = 16


def _wmma_hw(operands: Dict[str, np.ndarray]) -> np.ndarray:
    """Exact model: fp16 operands, fp32 multiply-accumulate.

    Real Tensor Cores multiply fp16 values exactly (fp16→fp32 conversion is
    lossless) and add in fp32, which is what this model does.  ``@`` performs
    a stacked matmul when the operands carry leading batch axes, so the model
    is batch-polymorphic for the vectorized engine.
    """
    a = operands["wmma_a"].astype(np.float32)
    b = operands["wmma_b"].astype(np.float32)
    c = operands["wmma_c"].astype(np.float32)
    return c + a @ b


def make_wmma_16x16x16() -> TensorIntrinsic:
    """The ``nvvm.wmma.m16n16k16.mma.row.row.f32.f32`` instruction."""
    a = placeholder((WMMA_M, WMMA_K), "float16", "wmma_a")
    b = placeholder((WMMA_K, WMMA_N), "float16", "wmma_b")
    k = reduce_axis(0, WMMA_K, "wmma_k")
    c = compute(
        (WMMA_M, WMMA_N),
        lambda i, j: sum_reduce(cast("float32", a[i, k]) * cast("float32", b[k, j]), k),
        name="wmma_c",
        accumulate=True,
        output_dtype="float32",
        axis_names=["wmma_i", "wmma_j"],
    )
    return TensorIntrinsic(
        name="nvvm.wmma.m16n16k16.mma.row.row.f32.f32",
        op=c.op,
        target="cuda",
        llvm_intrinsic="llvm.nvvm.wmma.m16n16k16.mma.row.row.f32.f32",
        perf=IntrinsicPerf(latency_cycles=8.0, throughput_per_cycle=1.0, issue_ports=2),
        hardware_impl=_wmma_hw,
        description="16x16x16 fp16 matrix multiply-accumulate into fp32",
        batchable=True,
    )
