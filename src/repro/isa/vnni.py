"""Intel VNNI (Vector Neural Network Instructions) descriptions.

``vpdpbusd`` (Figure 2(a)/4(a) of the paper): three 512-bit source registers —
64 lanes of uint8, 64 lanes of int8 and 16 lanes of int32 — producing 16 int32
lanes where ``d[i] = c[i] + sum_{j<4} u8(a[4i+j]) * i8(b[4i+j])``.

``vpdpwssd`` is the 16-bit variant (32 × int16 inputs, reduction width 2); the
paper does not evaluate it but lists exactly this kind of addition as the
"moderate effort" extensibility story, so it is included here and covered by
tests.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..dsl import cast, compute, placeholder, reduce_axis, sum_reduce
from .intrinsic import IntrinsicPerf, TensorIntrinsic, dot_product_grid

__all__ = ["make_vpdpbusd", "make_vpdpwssd", "VNNI_LANES", "VNNI_REDUCTION"]

VNNI_LANES = 16
VNNI_REDUCTION = 4


def _vpdpbusd_hw(operands: Dict[str, np.ndarray]) -> np.ndarray:
    """Exact lane-by-lane model of ``vpdpbusd`` (u8 × s8 → s32, width 4).

    Rank-polymorphic: leading batch axes on every operand are carried
    through, so the vectorized engine can execute whole rounds of calls in
    one invocation.  The dot products accumulate in int32 via ``einsum``
    (exact: every u8 × s8 product and 4-wide sum fits int32), which skips
    the widened product temporaries of the naive formulation — the batched
    engine's hottest loop.
    """
    a = operands["vnni_a"]
    b = operands["vnni_b"]
    c = operands["vnni_c"].astype(np.int32)
    prod = np.einsum(
        "...ij,...ij->...i",
        a.reshape(a.shape[:-1] + (VNNI_LANES, VNNI_REDUCTION)),
        b.reshape(b.shape[:-1] + (VNNI_LANES, VNNI_REDUCTION)),
        dtype=np.int32,
    )
    return (c + prod).astype(np.int32)


def make_vpdpbusd() -> TensorIntrinsic:
    """The AVX512-VNNI ``vpdpbusd`` instruction as a tensor-DSL program."""
    a = placeholder((VNNI_LANES * VNNI_REDUCTION,), "uint8", "vnni_a")
    b = placeholder((VNNI_LANES * VNNI_REDUCTION,), "int8", "vnni_b")
    c = placeholder((VNNI_LANES,), "int32", "vnni_c")
    j = reduce_axis(0, VNNI_REDUCTION, "vnni_j")
    d = compute(
        (VNNI_LANES,),
        lambda i: c[i]
        + sum_reduce(
            cast("int32", a[i * VNNI_REDUCTION + j]) * cast("int32", b[i * VNNI_REDUCTION + j]),
            j,
        ),
        name="vnni_d",
        axis_names=["vnni_i"],
    )
    return TensorIntrinsic(
        name="x86.avx512.vpdpbusd",
        op=d.op,
        target="x86",
        llvm_intrinsic="llvm.x86.avx512.vpdpbusd.512",
        perf=IntrinsicPerf(latency_cycles=5.0, throughput_per_cycle=1.0, issue_ports=2),
        hardware_impl=_vpdpbusd_hw,
        grid_impl=dot_product_grid("vnni_a", "vnni_b"),
        description="u8 x s8 dot-product into s32, 16 lanes, reduction width 4",
        batchable=True,
    )


def _vpdpwssd_hw(operands: Dict[str, np.ndarray]) -> np.ndarray:
    """Exact model of ``vpdpwssd`` (s16 × s16 → s32, width 2)."""
    a = operands["vnni16_a"].astype(np.int32)
    b = operands["vnni16_b"].astype(np.int32)
    c = operands["vnni16_c"].astype(np.int32)
    prod = (a * b).reshape(a.shape[:-1] + (VNNI_LANES, 2)).sum(axis=-1)
    return (c + prod).astype(np.int32)


def make_vpdpwssd() -> TensorIntrinsic:
    """The AVX512-VNNI ``vpdpwssd`` (int16) instruction."""
    a = placeholder((VNNI_LANES * 2,), "int16", "vnni16_a")
    b = placeholder((VNNI_LANES * 2,), "int16", "vnni16_b")
    c = placeholder((VNNI_LANES,), "int32", "vnni16_c")
    j = reduce_axis(0, 2, "vnni16_j")
    d = compute(
        (VNNI_LANES,),
        lambda i: c[i]
        + sum_reduce(cast("int32", a[i * 2 + j]) * cast("int32", b[i * 2 + j]), j),
        name="vnni16_d",
        axis_names=["vnni16_i"],
    )
    return TensorIntrinsic(
        name="x86.avx512.vpdpwssd",
        op=d.op,
        target="x86",
        llvm_intrinsic="llvm.x86.avx512.vpdpwssd.512",
        perf=IntrinsicPerf(latency_cycles=5.0, throughput_per_cycle=1.0, issue_ports=2),
        hardware_impl=_vpdpwssd_hw,
        grid_impl=dot_product_grid("vnni16_a", "vnni16_b"),
        description="s16 x s16 dot-product into s32, 16 lanes, reduction width 2",
        batchable=True,
    )
