"""ARM DOT-product instructions (``sdot`` / ``udot``), Figure 4(b).

Each instruction consumes two 128-bit registers of 16 × int8 (or uint8)
values plus a 128-bit accumulator of 4 × int32 values and produces
``d[i] = c[i] + sum_{j<4} a[4i+j] * b[4i+j]``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..dsl import cast, compute, placeholder, reduce_axis, sum_reduce
from .intrinsic import IntrinsicPerf, TensorIntrinsic, dot_product_grid

__all__ = ["make_sdot", "make_udot", "DOT_LANES", "DOT_REDUCTION"]

DOT_LANES = 4
DOT_REDUCTION = 4


def _dot_hw(prefix: str):
    # Rank-polymorphic (leading batch axes pass through) so the vectorized
    # engine can execute whole rounds of calls at once.  The dot products
    # accumulate in int32 via ``einsum`` (exact: every 8-bit product and
    # 4-wide sum fits int32, signed or unsigned), skipping the widened
    # product temporaries of the naive formulation.
    def impl(operands: Dict[str, np.ndarray]) -> np.ndarray:
        a = operands[f"{prefix}_a"]
        b = operands[f"{prefix}_b"]
        c = operands[f"{prefix}_c"].astype(np.int32)
        prod = np.einsum(
            "...ij,...ij->...i",
            a.reshape(a.shape[:-1] + (DOT_LANES, DOT_REDUCTION)),
            b.reshape(b.shape[:-1] + (DOT_LANES, DOT_REDUCTION)),
            dtype=np.int32,
        )
        return (c + prod).astype(np.int32)

    return impl


def _make_dot(name: str, prefix: str, a_dtype: str, b_dtype: str, llvm: str) -> TensorIntrinsic:
    a = placeholder((DOT_LANES * DOT_REDUCTION,), a_dtype, f"{prefix}_a")
    b = placeholder((DOT_LANES * DOT_REDUCTION,), b_dtype, f"{prefix}_b")
    c = placeholder((DOT_LANES,), "int32", f"{prefix}_c")
    j = reduce_axis(0, DOT_REDUCTION, f"{prefix}_j")
    d = compute(
        (DOT_LANES,),
        lambda i: c[i]
        + sum_reduce(
            cast("int32", a[i * DOT_REDUCTION + j]) * cast("int32", b[i * DOT_REDUCTION + j]),
            j,
        ),
        name=f"{prefix}_d",
        axis_names=[f"{prefix}_i"],
    )
    return TensorIntrinsic(
        name=name,
        op=d.op,
        target="arm",
        llvm_intrinsic=llvm,
        perf=IntrinsicPerf(latency_cycles=3.0, throughput_per_cycle=2.0, issue_ports=2),
        hardware_impl=_dot_hw(prefix),
        grid_impl=dot_product_grid(f"{prefix}_a", f"{prefix}_b"),
        description=f"{a_dtype} x {b_dtype} dot-product into int32, 4 lanes, width 4",
        batchable=True,
    )


def make_sdot() -> TensorIntrinsic:
    """Signed int8 dot product (``sdot``)."""
    return _make_dot(
        "arm.neon.sdot", "sdot", "int8", "int8", "llvm.aarch64.neon.sdot.v4i32.v16i8"
    )


def make_udot() -> TensorIntrinsic:
    """Unsigned/signed mixed dot product (``udot``)."""
    return _make_dot(
        "arm.neon.udot", "udot", "uint8", "uint8", "llvm.aarch64.neon.udot.v4i32.v16i8"
    )
