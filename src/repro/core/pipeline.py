"""End-to-end model compilation: UNIT as an operator runner for graph inference.

``UnitCpuRunner`` / ``UnitGpuRunner`` provide per-operator latencies obtained
by tuning UNIT's schedule space on the analytical machine models — they play
the role of the tensorized kernels UNIT generates for each layer of a model.
``compile_model`` applies the graph-level passes (quantization, operator
fusion, layout planning) and aggregates per-operator latencies into the
end-to-end inference latency of Figures 8, 9 and 12.

All runners tune through a :class:`~repro.rewriter.session.TuningSession`:
pass one session to many runners (or to ``compile_model_batch``) and
identical (workload, instruction, machine, search-space) problems are tuned
exactly once, with results optionally persisted to disk between processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..baselines.frameworks import MxnetOneDnnRunner, TvmCudnnRunner
from ..graph.executor import GraphLatencyReport, estimate_graph_latency
from ..graph.fuse import fuse_elementwise
from ..graph.ir import DepthwiseConv2DNode, Graph
from ..graph.layout import plan_layout
from ..graph.quantize import quantize_graph
from ..hwsim.cost import CostBreakdown
from ..hwsim.cpu import CpuKernelModel
from ..hwsim.gpu import GpuKernelModel
from ..hwsim.machine import CASCADE_LAKE, GRAVITON2, V100, CpuSpec, GpuSpec
from ..isa.registry import get_intrinsic
from ..rewriter.cpu_tuner import CpuTuningConfig, cpu_tuning_candidates
from ..rewriter.gpu_tuner import GpuTuningConfig, gpu_tuning_candidates
from ..rewriter.records import TuningKey, params_fingerprint, space_fingerprint
from ..rewriter.session import TuningSession
from ..rewriter.store import ShardedTuningStore
from ..rewriter.tuner import TuningResult
from ..workloads.conv2d import Conv2DParams
from ..workloads.conv3d import Conv3DParams
from ..workloads.dense import DenseParams

__all__ = [
    "UnitCpuRunner",
    "UnitGpuRunner",
    "CompiledModel",
    "compile_model",
    "compile_model_batch",
]


@dataclass
class CompiledModel:
    """The result of compiling one model for one target."""

    name: str
    target: str
    graph: Graph
    report: GraphLatencyReport
    layout_decisions: Dict[str, object] = field(default_factory=dict)

    @property
    def latency_ms(self) -> float:
        return self.report.total_milliseconds

    def run(self, inputs, weights=None, rng=None, keep=(), executor=None):
        """Execute the compiled graph numerically, end to end.

        Runs the (quantized, fused) graph through the memory-planned,
        plan-cached whole-model executor
        (:func:`repro.graph.executor.run_model`): activations share one
        liveness-planned arena and every operator executes through the
        process-wide executable-plan cache, so repeated layer shapes compile
        once.  Pass a :class:`repro.tir.Executor` via ``executor`` to select
        the execution tier and validation policy.  Returns a
        :class:`~repro.graph.executor.ModelRun`.
        """
        from ..graph.executor import run_model

        return run_model(
            self.graph, inputs, weights=weights, rng=rng, keep=keep, executor=executor
        )


class _SessionTunedRunner:
    """Shared tuning plumbing: key construction + session-backed search.

    Subclasses provide ``session``, ``intrin``, ``machine``, ``_space``,
    ``tuning_results``, ``_configs()`` and (for functional validation)
    ``_validation_op(kind, params)``.

    ``tuning_results`` holds trial-level data only for searches performed
    in-process; a record served from a cache loaded off disk carries no
    trials (they are deliberately not persisted), so keys tuned entirely
    from a warm cache are absent from it.

    Validation is governed by a :class:`~repro.tir.ValidationPolicy`
    (``validation=``): under ``SPOT`` every fresh search's winning
    configuration is functionally validated before its record enters the
    cache — the workload is tensorized with that configuration and executed
    through the engine, which must reproduce the reference lowering
    bit-identically for integer kernels, within a tight tolerance for float
    kernels (:func:`repro.core.unit.validate_tensorize`); ``FULL`` validates
    every candidate; ``OFF`` trusts the cost model.  The boolean
    ``validate=`` kwarg is the deprecated spelling of ``SPOT``.
    """

    validate: bool = False
    validation = None

    @staticmethod
    def _resolve_validation(validate, validation, owner: str):
        """Map the (deprecated bool, policy) kwarg pair to one policy."""
        from ..tir.executor import ValidationPolicy

        if validation is not None:
            if validate is not None:
                raise TypeError("pass either validation= or the deprecated validate=")
            return ValidationPolicy.coerce(
                validation,
                default=ValidationPolicy.OFF,
                bool_true=ValidationPolicy.SPOT,
                owner=owner,
            )
        if validate is not None:
            return ValidationPolicy.coerce(
                bool(validate),
                default=ValidationPolicy.OFF,
                bool_true=ValidationPolicy.SPOT,
                owner=owner,
            )
        return ValidationPolicy.OFF

    def _validation_op(self, kind: str, params):
        raise NotImplementedError

    def _validator(self, kind: str, params):
        if not self.validate:
            return None

        def check(config) -> None:
            from .unit import tensorize

            op = self._validation_op(kind, params)
            tensorize(op, self.intrin, config=config, validate=True)

        return check

    def _precheck(self, kind: str, params):
        """The static-verification candidate gate (raise-to-reject).

        Only built when ``validate`` is on: it tensorizes the workload with
        each candidate configuration (no numeric execution) so the rewrite
        passes through :func:`repro.analysis.verify_rewrite` — a candidate
        whose bounds / tile-disjointness / dtype proofs fail is rejected
        before the cost model evaluates it, and counted in
        ``TuningResult.rejected``.
        """
        if not self.validate:
            return None

        def check(config) -> None:
            from .unit import tensorize

            op = self._validation_op(kind, params)
            tensorize(op, self.intrin, config=config, validate=False)

        return check

    def _tuned(self, kind: str, params, evaluate) -> CostBreakdown:
        key = TuningKey(
            kind=kind,
            params=params_fingerprint(params),
            intrinsic=self.intrin.name,
            machine=self.machine.name,
            space=self._space,
        )
        record = self.session.tune(
            key,
            self._configs(),
            evaluate,
            oracle=self._validator(kind, params),
            precheck=self._precheck(kind, params),
            validation=self.validation,
        )
        if record.result is not None:
            self.tuning_results[(kind, params)] = record.result
        return record.breakdown


class UnitCpuRunner(_SessionTunedRunner):
    """UNIT-compiled operators on a CPU (x86 VNNI or ARM DOT).

    ``tuning`` selects how much of the schedule space is explored:
    ``"parallel"`` (only the fuse-and-parallelise step), ``"first_pair"``
    (parallel + unroll with the recommended pair), or ``"full"`` (search the
    tuning pairs, the paper's +Tune configuration).

    ``session`` is the shared tuning session; omit it for a private one.

    ``validation`` selects the :class:`~repro.tir.ValidationPolicy` for
    tuning-time functional checks (``SPOT`` validates the winning
    configuration of every fresh search bit-identically against the
    reference lowering before its record is cached; ``FULL`` validates every
    candidate).  ``validate=True`` is the deprecated boolean spelling of
    ``SPOT``.
    """

    def __init__(
        self,
        machine: CpuSpec = CASCADE_LAKE,
        intrinsic_name: str = "x86.avx512.vpdpbusd",
        tuning: str = "full",
        candidates: Optional[Sequence[CpuTuningConfig]] = None,
        max_candidates: int = 16,
        session: Optional[TuningSession] = None,
        validate: Optional[bool] = None,
        validation=None,
    ) -> None:
        if tuning not in ("parallel", "first_pair", "full"):
            raise ValueError("tuning must be 'parallel', 'first_pair' or 'full'")
        self.machine = machine
        self.intrin = get_intrinsic(intrinsic_name)
        self.model = CpuKernelModel(machine, self.intrin, per_call_overhead_us=0.8)
        self.tuning = tuning
        self.candidates = list(candidates) if candidates is not None else cpu_tuning_candidates(
            max_pairs=max_candidates
        )
        self.session = session if session is not None else TuningSession()
        self.validation = self._resolve_validation(validate, validation, "UnitCpuRunner")
        self.validate = self.validation.value != "off"
        self._space = space_fingerprint(tuning, self._configs())
        self.tuning_results: Dict[object, TuningResult] = {}

    # -- functional validation ---------------------------------------------
    def _validation_op(self, kind: str, params):
        from ..workloads.conv2d import conv2d_nchwc
        from ..workloads.conv3d import conv3d_ncdhwc
        from ..workloads.dense import dense_int8

        lanes = self.intrin.output_lanes
        reduction = self.intrin.reduction_width
        # The narrow (non-accumulator) register dtypes, in operand order:
        # (data, weight) for the dot-product instructions.
        narrow = [
            d.name
            for d in self.intrin.operand_dtypes
            if d.bits < self.intrin.output_dtype.bits
        ]
        in_dt, w_dt = (narrow[0], narrow[1]) if len(narrow) >= 2 else ("uint8", "int8")
        if kind == "conv2d":
            return conv2d_nchwc(
                params, lanes=lanes, reduction=reduction,
                in_dtype=in_dt, weight_dtype=w_dt,
            )
        if kind == "conv3d":
            return conv3d_ncdhwc(
                params, lanes=lanes, reduction=reduction,
                in_dtype=in_dt, weight_dtype=w_dt,
            )
        if kind == "dense":
            return dense_int8(
                params, lanes=lanes, reduction=reduction,
                in_dtype=in_dt, weight_dtype=w_dt,
            )
        raise ValueError(f"no validation workload for kind {kind!r}")

    # -- tuning ------------------------------------------------------------
    def _configs(self) -> List[CpuTuningConfig]:
        if self.tuning == "parallel":
            return [CpuTuningConfig(enable_unroll=False)]
        if self.tuning == "first_pair":
            return [CpuTuningConfig()]
        return self.candidates

    # -- operator latencies ---------------------------------------------------
    def conv2d_latency(self, params: Conv2DParams) -> CostBreakdown:
        return self._tuned("conv2d", params, lambda cfg: self.model.conv2d_latency(params, cfg))

    def conv3d_latency(self, params: Conv3DParams) -> CostBreakdown:
        return self._tuned("conv3d", params, lambda cfg: self.model.conv3d_latency(params, cfg))

    def dense_latency(self, params: DenseParams) -> CostBreakdown:
        return self._tuned("dense", params, lambda cfg: self.model.dense_latency(params, cfg))

    def depthwise_conv2d_latency(self, node: DepthwiseConv2DNode) -> CostBreakdown:
        # Depthwise convolutions have no channel reduction, so the tensorized
        # instruction does not apply; UNIT falls back to plain vector code.
        simd_macs_per_second = (
            self.machine.cores
            * self.machine.fma_ports
            * (self.machine.vector_bytes / 4)
            * self.machine.frequency_ghz
            * 1e9
            * 0.25
        )
        seconds = node.macs / simd_macs_per_second + 1.5e-6
        return CostBreakdown(seconds=seconds, compute_seconds=seconds)

    def elementwise_latency(self) -> CostBreakdown:
        # Elementwise operators are fused into their producers by the graph
        # pass; only a tiny residual dispatch cost remains for the unfused ones.
        return CostBreakdown(seconds=1.0e-6, overhead_seconds=1.0e-6)


class UnitGpuRunner(_SessionTunedRunner):
    """UNIT-compiled operators on the GPU (Tensor Core).

    ``mode`` mirrors the Figure 11 ablation: ``"generic"`` (p×p outer product
    only), ``"fusedim"`` (+ dimension fusion), ``"splitk"`` (+ reduction
    splitting with the fixed factor 64), or ``"tune"`` (search all three).
    """

    def __init__(
        self,
        machine: GpuSpec = V100,
        intrinsic_name: str = "nvvm.wmma.m16n16k16.mma.row.row.f32.f32",
        mode: str = "tune",
        session: Optional[TuningSession] = None,
        validate: Optional[bool] = None,
        validation=None,
    ) -> None:
        if mode not in ("generic", "fusedim", "splitk", "tune"):
            raise ValueError("mode must be 'generic', 'fusedim', 'splitk' or 'tune'")
        self.machine = machine
        self.intrin = get_intrinsic(intrinsic_name)
        self.model = GpuKernelModel(machine, self.intrin)
        self.mode = mode
        self.session = session if session is not None else TuningSession()
        self.validation = self._resolve_validation(validate, validation, "UnitGpuRunner")
        self.validate = self.validation.value != "off"
        self._space = space_fingerprint(mode, self._configs())
        self.tuning_results: Dict[object, TuningResult] = {}

    def _validation_op(self, kind: str, params):
        from ..workloads.conv2d import conv2d_gemm
        from ..workloads.dense import matmul_fp16

        if kind == "conv2d":
            return conv2d_gemm(params)
        if kind == "dense":
            # Pad to the WMMA tile like the graph-level layout pass does.
            def pad16(n: int) -> int:
                return ((max(n, 1) + 15) // 16) * 16

            return matmul_fp16(
                pad16(params.batch),
                pad16(params.out_features),
                pad16(params.in_features),
                name=params.name,
            )
        raise ValueError(f"no validation workload for kind {kind!r}")

    def _configs(self) -> List[GpuTuningConfig]:
        if self.mode == "generic":
            return [GpuTuningConfig(outer_product_p=2)]
        if self.mode == "fusedim":
            return [GpuTuningConfig(outer_product_p=2, fuse_spatial=True)]
        if self.mode == "splitk":
            return [GpuTuningConfig(outer_product_p=2, fuse_spatial=True, split_k=64)]
        return gpu_tuning_candidates()

    def conv2d_latency(self, params: Conv2DParams) -> CostBreakdown:
        return self._tuned("conv2d", params, lambda cfg: self.model.conv2d_latency(params, cfg))

    def dense_latency(self, params: DenseParams) -> CostBreakdown:
        return self._tuned(
            "dense",
            params,
            lambda cfg: self.model.gemm_latency(
                params.batch, params.out_features, params.in_features, cfg
            ),
        )

    def depthwise_conv2d_latency(self, node: DepthwiseConv2DNode) -> CostBreakdown:
        simd_macs = self.machine.fp32_tflops * 1e12 / 2.0 * 0.2
        seconds = node.macs / simd_macs + self.machine.kernel_launch_us * 1e-6
        return CostBreakdown(seconds=seconds, compute_seconds=seconds)

    def elementwise_latency(self) -> CostBreakdown:
        return CostBreakdown(seconds=0.5e-6, overhead_seconds=0.5e-6)


def compile_model(
    graph: Graph,
    target: str = "x86",
    runner=None,
    quantize: bool = True,
    fuse: bool = True,
    session: Optional[TuningSession] = None,
    store=None,
    remote=None,
) -> CompiledModel:
    """Compile a model end to end for ``target`` and estimate its latency.

    ``target`` is one of ``"x86"``, ``"arm"``, ``"cuda"``; ``runner`` may be
    supplied to estimate latency under a baseline library instead of UNIT
    (e.g. :class:`~repro.baselines.frameworks.MxnetOneDnnRunner`).

    ``session`` is forwarded to the default UNIT runner so repeated
    compilations share one tuning cache; it is ignored when an explicit
    ``runner`` is supplied (construct that runner with the session instead).

    ``store`` backs the default session with a
    :class:`~repro.rewriter.store.ShardedTuningStore`, so this compile reads
    records other processes published (e.g. a distributed pre-tuning pass)
    and publishes its own fresh searches for them.

    ``remote`` points the compile at a tuning daemon instead: a
    ``(host, port)`` pair or ``"host:port"`` string naming a
    :class:`~repro.service.server.TuningService`.  Tuning then reads through
    memory -> server -> miss (searches are run server-side, coalesced with
    every other client), and a ``store`` given alongside serves as the local
    fallback while the daemon is unreachable.
    """
    if target not in ("x86", "arm", "cuda"):
        raise ValueError(f"unknown target {target!r}")
    if runner is not None and store is not None:
        raise ValueError(
            "store= only applies to the default UNIT runner; construct the "
            "explicit runner with a store-backed session instead"
        )
    session = _resolve_session(session, store, remote)
    work = graph
    if quantize:
        work = quantize_graph(work, "float16" if target == "cuda" else "int8")
    if fuse:
        work = fuse_elementwise(work)
    if runner is None:
        if target == "x86":
            runner = UnitCpuRunner(CASCADE_LAKE, "x86.avx512.vpdpbusd", session=session)
        elif target == "arm":
            runner = UnitCpuRunner(GRAVITON2, "arm.neon.sdot", session=session)
        else:
            runner = UnitGpuRunner(V100, session=session)
    lanes = 4 if target == "arm" else 16
    layout = plan_layout(work, lanes=lanes, reduction=4) if target != "cuda" else {}
    report = estimate_graph_latency(work, runner)
    return CompiledModel(
        name=graph.name, target=target, graph=work, report=report, layout_decisions=layout
    )


def _resolve_session(
    session: Optional[TuningSession], store, remote=None
) -> Optional[TuningSession]:
    """Combine the ``session=``, ``store=`` and ``remote=`` conveniences.

    ``store`` may be a :class:`ShardedTuningStore` or a path to one (the same
    coercion :class:`~repro.rewriter.workers.DistributedTuner` applies), so
    the mistake surfaces at the API boundary rather than mid-compile.

    ``remote`` is a tuning-daemon address — ``(host, port)`` or
    ``"host:port"`` — and yields a
    :class:`~repro.service.client.RemoteSession`; a ``store`` given
    alongside becomes its offline fallback.  ``remote`` and ``session`` are
    mutually exclusive (a session already encodes where tuning happens).
    """
    if remote is not None:
        if session is not None:
            raise ValueError(
                "pass either remote= or session= (construct a RemoteSession "
                "yourself to customise it), not both"
            )
        from ..service.client import RemoteSession

        if isinstance(remote, str):
            host, _, port = remote.rpartition(":")
            remote = (host or "127.0.0.1", int(port))
        return RemoteSession(remote, fallback_store=store)
    if store is not None and not isinstance(store, ShardedTuningStore):
        store = ShardedTuningStore(store)
    if session is not None:
        if store is not None and session.store is not store:
            raise ValueError(
                "pass either store= or a session constructed with that store, "
                "not a session bound elsewhere"
            )
        return session
    if store is not None:
        return TuningSession(store=store)
    return None


def compile_model_batch(
    models: Iterable[Union[str, Graph]],
    targets: Sequence[str] = ("x86",),
    session: Optional[TuningSession] = None,
    quantize: bool = True,
    fuse: bool = True,
    store=None,
    workers: Optional[int] = None,
    remote=None,
) -> List[CompiledModel]:
    """Compile many models for many targets through one shared tuning session.

    ``models`` may mix model-zoo names and pre-built :class:`Graph` objects;
    either way one graph is built per model and reused across targets (the
    graph passes return target-specialised copies).  Layers repeated across
    models and models repeated across calls hit the shared cache instead of
    re-tuning, which is what makes sweeping the model zoo cheap.  Returns one
    :class:`CompiledModel` per (model, target) pair, model-major.

    ``store`` backs the batch's session with a sharded on-disk store, and
    ``workers > 1`` additionally *pre-tunes* through it in parallel: every
    distinct tunable operator across the whole (model x target) sweep is
    collected, fanned out over that many worker processes
    (:class:`~repro.rewriter.workers.DistributedTuner`), and published into
    the store; the subsequent per-model compiles then run entirely against
    warm records.  Results are bit-identical to the single-process path —
    workers search with the result-deterministic parallel driver.

    ``remote`` points the whole batch at a tuning daemon instead (see
    :func:`compile_model`); the daemon replaces local pre-tuning, so it is
    mutually exclusive with ``workers > 1`` — server-side coalescing already
    ensures each distinct operator is searched once for the whole fleet.
    """
    if remote is not None and workers is not None and workers > 1:
        raise ValueError(
            "workers > 1 spawns local pre-tuning processes, which is "
            "redundant against remote=: the daemon already coalesces and "
            "speculatively pre-tunes; drop workers= or remote="
        )
    session = _resolve_session(session, store, remote)
    if session is None:
        session = TuningSession()
    from ..models.zoo import get_model

    graphs = [
        get_model(model, fresh=True) if isinstance(model, str) else model
        for model in models
    ]
    if workers is not None and workers > 1:
        if session.store is None:
            raise ValueError(
                "workers > 1 requires a sharded store (pass store= or a "
                "store-backed session) so worker processes can share records"
            )
        from ..rewriter.records import params_fingerprint
        from ..rewriter.workers import DistributedTuner, tasks_from_graph

        tasks, seen = [], set()
        for graph in graphs:
            for target in targets:
                for task in tasks_from_graph(
                    graph, target=target, quantize=quantize, fuse=fuse
                ):
                    identity = (
                        task.kind,
                        params_fingerprint(task.params),
                        task.runner,
                        task.machine,
                        task.intrinsic,
                        task.tuning,
                    )
                    if identity not in seen:
                        seen.add(identity)
                        tasks.append(task)
        if tasks:
            # The workers must search exactly as this session would: a
            # strategy mismatch would publish records under keys the
            # session's lookups (see TuningSession._record_key) never hit.
            DistributedTuner(
                session.store,
                workers=workers,
                strategy=session.strategy,
                max_workers=session.max_workers,
                early_exit_k=session.early_exit_k,
            ).run(tasks)

    compiled: List[CompiledModel] = []
    for graph in graphs:
        for target in targets:
            compiled.append(
                compile_model(
                    graph,
                    target=target,
                    quantize=quantize,
                    fuse=fuse,
                    session=session,
                )
            )
    return compiled
