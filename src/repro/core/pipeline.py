"""End-to-end model compilation: UNIT as an operator runner for graph inference.

``UnitCpuRunner`` / ``UnitGpuRunner`` provide per-operator latencies obtained
by tuning UNIT's schedule space on the analytical machine models — they play
the role of the tensorized kernels UNIT generates for each layer of a model.
``compile_model`` applies the graph-level passes (quantization, operator
fusion, layout planning) and aggregates per-operator latencies into the
end-to-end inference latency of Figures 8, 9 and 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..baselines.frameworks import MxnetOneDnnRunner, TvmCudnnRunner
from ..graph.executor import GraphLatencyReport, estimate_graph_latency
from ..graph.fuse import fuse_elementwise
from ..graph.ir import DepthwiseConv2DNode, Graph
from ..graph.layout import plan_layout
from ..graph.quantize import quantize_graph
from ..hwsim.cost import CostBreakdown
from ..hwsim.cpu import CpuKernelModel
from ..hwsim.gpu import GpuKernelModel
from ..hwsim.machine import CASCADE_LAKE, GRAVITON2, V100, CpuSpec, GpuSpec
from ..isa.registry import get_intrinsic
from ..rewriter.cpu_tuner import CpuTuningConfig, cpu_tuning_candidates
from ..rewriter.gpu_tuner import GpuTuningConfig, gpu_tuning_candidates
from ..rewriter.tuner import TuningResult, exhaustive_search
from ..workloads.conv2d import Conv2DParams
from ..workloads.conv3d import Conv3DParams
from ..workloads.dense import DenseParams

__all__ = ["UnitCpuRunner", "UnitGpuRunner", "CompiledModel", "compile_model"]


@dataclass
class CompiledModel:
    """The result of compiling one model for one target."""

    name: str
    target: str
    graph: Graph
    report: GraphLatencyReport
    layout_decisions: Dict[str, object] = field(default_factory=dict)

    @property
    def latency_ms(self) -> float:
        return self.report.total_milliseconds


class UnitCpuRunner:
    """UNIT-compiled operators on a CPU (x86 VNNI or ARM DOT).

    ``tuning`` selects how much of the schedule space is explored:
    ``"parallel"`` (only the fuse-and-parallelise step), ``"first_pair"``
    (parallel + unroll with the recommended pair), or ``"full"`` (search the
    tuning pairs, the paper's +Tune configuration).
    """

    def __init__(
        self,
        machine: CpuSpec = CASCADE_LAKE,
        intrinsic_name: str = "x86.avx512.vpdpbusd",
        tuning: str = "full",
        candidates: Optional[Sequence[CpuTuningConfig]] = None,
        max_candidates: int = 16,
    ) -> None:
        if tuning not in ("parallel", "first_pair", "full"):
            raise ValueError("tuning must be 'parallel', 'first_pair' or 'full'")
        self.machine = machine
        self.intrin = get_intrinsic(intrinsic_name)
        self.model = CpuKernelModel(machine, self.intrin, per_call_overhead_us=0.8)
        self.tuning = tuning
        self.candidates = list(candidates) if candidates is not None else cpu_tuning_candidates(
            max_pairs=max_candidates
        )
        self._cache: Dict[object, CostBreakdown] = {}
        self.tuning_results: Dict[object, TuningResult] = {}

    # -- tuning ------------------------------------------------------------
    def _configs(self) -> List[CpuTuningConfig]:
        if self.tuning == "parallel":
            return [CpuTuningConfig(enable_unroll=False)]
        if self.tuning == "first_pair":
            return [CpuTuningConfig()]
        return self.candidates

    def _tuned(self, key, evaluate) -> CostBreakdown:
        if key in self._cache:
            return self._cache[key]
        result = exhaustive_search(self._configs(), lambda cfg: evaluate(cfg).seconds)
        best = evaluate(result.best_config)
        self._cache[key] = best
        self.tuning_results[key] = result
        return best

    # -- operator latencies ---------------------------------------------------
    def conv2d_latency(self, params: Conv2DParams) -> CostBreakdown:
        key = ("conv2d", params)
        return self._tuned(key, lambda cfg: self.model.conv2d_latency(params, cfg))

    def conv3d_latency(self, params: Conv3DParams) -> CostBreakdown:
        key = ("conv3d", params)
        return self._tuned(key, lambda cfg: self.model.conv3d_latency(params, cfg))

    def dense_latency(self, params: DenseParams) -> CostBreakdown:
        key = ("dense", params)
        return self._tuned(key, lambda cfg: self.model.dense_latency(params, cfg))

    def depthwise_conv2d_latency(self, node: DepthwiseConv2DNode) -> CostBreakdown:
        # Depthwise convolutions have no channel reduction, so the tensorized
        # instruction does not apply; UNIT falls back to plain vector code.
        simd_macs_per_second = (
            self.machine.cores
            * self.machine.fma_ports
            * (self.machine.vector_bytes / 4)
            * self.machine.frequency_ghz
            * 1e9
            * 0.25
        )
        seconds = node.macs / simd_macs_per_second + 1.5e-6
        return CostBreakdown(seconds=seconds, compute_seconds=seconds)

    def elementwise_latency(self) -> CostBreakdown:
        # Elementwise operators are fused into their producers by the graph
        # pass; only a tiny residual dispatch cost remains for the unfused ones.
        return CostBreakdown(seconds=1.0e-6, overhead_seconds=1.0e-6)


class UnitGpuRunner:
    """UNIT-compiled operators on the GPU (Tensor Core).

    ``mode`` mirrors the Figure 11 ablation: ``"generic"`` (p×p outer product
    only), ``"fusedim"`` (+ dimension fusion), ``"splitk"`` (+ reduction
    splitting with the fixed factor 64), or ``"tune"`` (search all three).
    """

    def __init__(
        self,
        machine: GpuSpec = V100,
        intrinsic_name: str = "nvvm.wmma.m16n16k16.mma.row.row.f32.f32",
        mode: str = "tune",
    ) -> None:
        if mode not in ("generic", "fusedim", "splitk", "tune"):
            raise ValueError("mode must be 'generic', 'fusedim', 'splitk' or 'tune'")
        self.machine = machine
        self.intrin = get_intrinsic(intrinsic_name)
        self.model = GpuKernelModel(machine, self.intrin)
        self.mode = mode
        self._cache: Dict[object, CostBreakdown] = {}
        self.tuning_results: Dict[object, TuningResult] = {}

    def _configs(self) -> List[GpuTuningConfig]:
        if self.mode == "generic":
            return [GpuTuningConfig(outer_product_p=2)]
        if self.mode == "fusedim":
            return [GpuTuningConfig(outer_product_p=2, fuse_spatial=True)]
        if self.mode == "splitk":
            return [GpuTuningConfig(outer_product_p=2, fuse_spatial=True, split_k=64)]
        return gpu_tuning_candidates()

    def _tuned(self, key, evaluate) -> CostBreakdown:
        if key in self._cache:
            return self._cache[key]
        result = exhaustive_search(self._configs(), lambda cfg: evaluate(cfg).seconds)
        best = evaluate(result.best_config)
        self._cache[key] = best
        self.tuning_results[key] = result
        return best

    def conv2d_latency(self, params: Conv2DParams) -> CostBreakdown:
        key = ("conv2d", params)
        return self._tuned(key, lambda cfg: self.model.conv2d_latency(params, cfg))

    def dense_latency(self, params: DenseParams) -> CostBreakdown:
        key = ("dense", params)
        return self._tuned(
            key,
            lambda cfg: self.model.gemm_latency(
                params.batch, params.out_features, params.in_features, cfg
            ),
        )

    def depthwise_conv2d_latency(self, node: DepthwiseConv2DNode) -> CostBreakdown:
        simd_macs = self.machine.fp32_tflops * 1e12 / 2.0 * 0.2
        seconds = node.macs / simd_macs + self.machine.kernel_launch_us * 1e-6
        return CostBreakdown(seconds=seconds, compute_seconds=seconds)

    def elementwise_latency(self) -> CostBreakdown:
        return CostBreakdown(seconds=0.5e-6, overhead_seconds=0.5e-6)


def compile_model(
    graph: Graph,
    target: str = "x86",
    runner=None,
    quantize: bool = True,
    fuse: bool = True,
) -> CompiledModel:
    """Compile a model end to end for ``target`` and estimate its latency.

    ``target`` is one of ``"x86"``, ``"arm"``, ``"cuda"``; ``runner`` may be
    supplied to estimate latency under a baseline library instead of UNIT
    (e.g. :class:`~repro.baselines.frameworks.MxnetOneDnnRunner`).
    """
    if target not in ("x86", "arm", "cuda"):
        raise ValueError(f"unknown target {target!r}")
    work = graph
    if quantize:
        work = quantize_graph(work, "float16" if target == "cuda" else "int8")
    if fuse:
        work = fuse_elementwise(work)
    if runner is None:
        if target == "x86":
            runner = UnitCpuRunner(CASCADE_LAKE, "x86.avx512.vpdpbusd")
        elif target == "arm":
            runner = UnitCpuRunner(GRAVITON2, "arm.neon.sdot")
        else:
            runner = UnitGpuRunner(V100)
    lanes = 4 if target == "arm" else 16
    layout = plan_layout(work, lanes=lanes, reduction=4) if target != "cuda" else {}
    report = estimate_graph_latency(work, runner)
    return CompiledModel(
        name=graph.name, target=target, graph=work, report=report, layout_decisions=layout
    )
