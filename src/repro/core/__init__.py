"""``repro.core`` — the UNIT pipeline.

``tensorize()`` compiles one tensor operation with a tensorized instruction
(Inspector → Rewriter → lowering → instruction injection); ``compile_model()``
runs the graph-level passes and estimates end-to-end inference latency via the
machine models; ``experiments`` holds one driver per table/figure of the
paper's evaluation.
"""

from . import experiments
from .pipeline import (
    CompiledModel,
    UnitCpuRunner,
    UnitGpuRunner,
    compile_model,
    compile_model_batch,
)
from .unit import TensorizeResult, select_intrinsic, tensorize, validate_tensorize

__all__ = [
    "tensorize",
    "validate_tensorize",
    "select_intrinsic",
    "TensorizeResult",
    "UnitCpuRunner",
    "UnitGpuRunner",
    "CompiledModel",
    "compile_model",
    "compile_model_batch",
    "experiments",
]
