"""Experiment drivers: one function per table/figure of the paper's evaluation.

Each function returns plain data structures (dictionaries / lists of rows)
that the benchmark harness prints and the test suite asserts the qualitative
shape of — who wins, by roughly what factor, and where the crossovers are.
EXPERIMENTS.md records the paper-reported values next to the measured ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..baselines.cudnn import CuDnnModel
from ..baselines.frameworks import MxnetOneDnnRunner, TvmCudnnRunner
from ..baselines.onednn import OneDnnModel
from ..baselines.tvm_baseline import TvmManualModel, TvmNeonModel
from ..graph.executor import estimate_graph_latency
from ..graph.fuse import fuse_elementwise
from ..graph.quantize import quantize_graph
from ..hwsim.cost import geometric_mean
from ..hwsim.machine import CASCADE_LAKE, GRAVITON2, V100
from ..models.zoo import EVALUATED_MODELS, get_model
from ..rewriter.cpu_tuner import CpuTuningConfig, cpu_tuning_candidates
from ..rewriter.session import TuningSession
from ..rewriter.tuner import exhaustive_search
from ..workloads.conv2d import Conv2DParams
from ..workloads.conv3d import conv3d_from_conv2d
from ..workloads.table1 import TABLE1_LAYERS, table1_as_rows
from .pipeline import UnitCpuRunner, UnitGpuRunner, _resolve_session, compile_model

__all__ = [
    "figure1_fp16_without_tensor_core",
    "figure8_cpu_end_to_end",
    "figure9_gpu_end_to_end",
    "figure10_cpu_ablation",
    "figure11_gpu_ablation",
    "figure12_arm_end_to_end",
    "figure13_conv3d",
    "table1_characteristics",
    "tuning_convergence",
    "resnet18_unique_convs",
    "whole_model_execution",
]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _prepare(graph, dtype: str, fuse: bool):
    g = quantize_graph(graph, dtype)
    if fuse:
        g = fuse_elementwise(g)
    return g


def _e2e_latency(model_name: str, runner, dtype: str, fuse: bool) -> float:
    graph = get_model(model_name, fresh=True)
    g = _prepare(graph, dtype, fuse)
    return estimate_graph_latency(g, runner).total_seconds


def _add_geomean(
    rows: List[Dict], keys: List[str], label_key: str = "model", label: str = "geomean"
) -> Dict:
    """The summary row of a figure: the geomean of ``keys`` over ``rows``.

    All geomean bars route through :func:`repro.hwsim.cost.geometric_mean`
    (one definition of zero/empty handling for the whole suite).
    """
    geo: Dict = {label_key: label}
    for key in keys:
        geo[key] = geometric_mean(r[key] for r in rows)
    return geo


def _session(
    session: Optional[TuningSession], store=None, remote=None
) -> TuningSession:
    """The session a figure driver tunes through.

    Resolution follows the one pipeline-wide rule
    (:func:`repro.core.pipeline._resolve_session`): an explicit ``session``
    wins (conflicting ``session``/``store`` pairs raise rather than silently
    dropping the store); ``remote`` — a tuning-daemon address — yields a
    :class:`~repro.service.client.RemoteSession` so the figure tunes against
    the shared fleet corpus (``store`` then being its offline fallback);
    otherwise ``store`` (typically pre-warmed by a
    :class:`~repro.rewriter.workers.DistributedTuner` pass) backs a fresh
    read-through session, and with none of them the figure tunes privately.
    """
    resolved = _resolve_session(session, store, remote)
    return resolved if resolved is not None else TuningSession()


def resnet18_unique_convs(limit: int = 11) -> List[Conv2DParams]:
    """The distinct convolution shapes of ResNet-18 (used for Figure 13)."""
    graph = get_model("resnet-18", fresh=True)
    graph.infer_shapes()
    seen = []
    for node in graph.conv_nodes():
        params = node.conv_params()
        key = (
            params.in_channels,
            params.in_height,
            params.out_channels,
            params.kernel,
            params.stride,
        )
        if key not in [k for k, _ in seen]:
            seen.append((key, params))
    return [p for _, p in seen[:limit]]


# ---------------------------------------------------------------------------
# Figure 1: fp16 without Tensor Core support vs fp32
# ---------------------------------------------------------------------------

def figure1_fp16_without_tensor_core(models: Optional[List[str]] = None) -> List[Dict]:
    """Relative performance of cuDNN fp16 (no Tensor Core) vs cuDNN fp32.

    Paper observation: blindly using mixed precision without hardware support
    is a *slowdown* (all bars below 1.0).
    """
    models = models or EVALUATED_MODELS
    fp32 = TvmCudnnRunner(mode="fp32")
    fp16 = TvmCudnnRunner(mode="fp16_no_tc")
    rows = []
    for name in models:
        t32 = _e2e_latency(name, fp32, "float16", fuse=True)
        t16 = _e2e_latency(name, fp16, "float16", fuse=True)
        rows.append(
            {
                "model": name,
                "cudnn_fp32_ms": t32 * 1e3,
                "cudnn_fp16_no_tc_ms": t16 * 1e3,
                "relative_fp16_vs_fp32": t32 / t16,
            }
        )
    rows.append(_add_geomean(rows, ["relative_fp16_vs_fp32"]))
    return rows


# ---------------------------------------------------------------------------
# Figure 8: quantized inference on Intel VNNI (CPU end to end)
# ---------------------------------------------------------------------------

def figure8_cpu_end_to_end(
    models: Optional[List[str]] = None,
    session: Optional[TuningSession] = None,
    store=None,
    remote=None,
) -> List[Dict]:
    """MXNet+oneDNN vs hand-written TVM VNNI schedules vs UNIT (bs = 1).

    Pass a shared ``session`` to reuse tuning records across models, figures
    and runs; repeating the figure through a warm session performs zero
    tuning trials.
    """
    models = models or EVALUATED_MODELS
    session = _session(session, store, remote)
    mxnet = MxnetOneDnnRunner(session=session)
    tvm_manual = TvmManualModel.for_x86()
    rows = []
    for name in models:
        unit_runner = UnitCpuRunner(
            CASCADE_LAKE, "x86.avx512.vpdpbusd", tuning="full", session=session
        )
        t_mxnet = _e2e_latency(name, mxnet, "int8", fuse=False)
        t_tvm = _e2e_latency(name, tvm_manual, "int8", fuse=True)
        t_unit = _e2e_latency(name, unit_runner, "int8", fuse=True)
        rows.append(
            {
                "model": name,
                "mxnet_onednn_ms": t_mxnet * 1e3,
                "tvm_ms": t_tvm * 1e3,
                "unit_ms": t_unit * 1e3,
                "rel_mxnet": 1.0,
                "rel_tvm": t_mxnet / t_tvm,
                "rel_unit": t_mxnet / t_unit,
                "unit_vs_tvm": t_tvm / t_unit,
            }
        )
    rows.append(_add_geomean(rows, ["rel_tvm", "rel_unit", "unit_vs_tvm"]))
    return rows


# ---------------------------------------------------------------------------
# Figure 9: mixed-precision inference on Tensor Core (GPU end to end)
# ---------------------------------------------------------------------------

def figure9_gpu_end_to_end(
    models: Optional[List[str]] = None,
    session: Optional[TuningSession] = None,
    store=None,
    remote=None,
) -> List[Dict]:
    """cuDNN fp16 Tensor Core (via TVM offloading) vs UNIT (bs = 1)."""
    models = models or EVALUATED_MODELS
    session = _session(session, store, remote)
    cudnn = TvmCudnnRunner(mode="tensor_core", session=session)
    rows = []
    for name in models:
        unit_runner = UnitGpuRunner(V100, mode="tune", session=session)
        t_cudnn = _e2e_latency(name, cudnn, "float16", fuse=True)
        t_unit = _e2e_latency(name, unit_runner, "float16", fuse=True)
        rows.append(
            {
                "model": name,
                "cudnn_tc_ms": t_cudnn * 1e3,
                "unit_ms": t_unit * 1e3,
                "rel_cudnn": 1.0,
                "rel_unit": t_cudnn / t_unit,
            }
        )
    rows.append(_add_geomean(rows, ["rel_unit"]))
    return rows


# ---------------------------------------------------------------------------
# Figure 10: CPU ablation over the Table I layers
# ---------------------------------------------------------------------------

def figure10_cpu_ablation(
    layers: Optional[List[Conv2DParams]] = None,
    session: Optional[TuningSession] = None,
    store=None,
    remote=None,
) -> List[Dict]:
    """oneDNN vs Parallel vs +Unroll vs +Tune, per Table I layer."""
    layers = layers or TABLE1_LAYERS
    session = _session(session, store, remote)
    onednn = OneDnnModel(CASCADE_LAKE)
    rows = []
    for index, params in enumerate(layers, start=1):
        t_onednn = onednn.conv2d_latency(params).seconds
        variants = {}
        for label, tuning in (("parallel", "parallel"), ("unroll", "first_pair"), ("tune", "full")):
            runner = UnitCpuRunner(
                CASCADE_LAKE, "x86.avx512.vpdpbusd", tuning=tuning, session=session
            )
            variants[label] = runner.conv2d_latency(params).seconds
        rows.append(
            {
                "layer": index,
                "onednn_us": t_onednn * 1e6,
                "parallel_us": variants["parallel"] * 1e6,
                "unroll_us": variants["unroll"] * 1e6,
                "tune_us": variants["tune"] * 1e6,
                "rel_parallel": t_onednn / variants["parallel"],
                "rel_unroll": t_onednn / variants["unroll"],
                "rel_tune": t_onednn / variants["tune"],
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 11: GPU ablation over the Table I layers
# ---------------------------------------------------------------------------

def figure11_gpu_ablation(
    layers: Optional[List[Conv2DParams]] = None,
    session: Optional[TuningSession] = None,
    store=None,
    remote=None,
) -> List[Dict]:
    """cuDNN vs Generic vs +FuseDim vs +SplitK vs +Tune, per Table I layer."""
    layers = layers or TABLE1_LAYERS
    session = _session(session, store, remote)
    cudnn = CuDnnModel(V100)
    rows = []
    for index, params in enumerate(layers, start=1):
        t_cudnn = cudnn.conv2d_tensor_core(params).seconds
        variants = {}
        for label, mode in (
            ("generic", "generic"),
            ("fusedim", "fusedim"),
            ("splitk", "splitk"),
            ("tune", "tune"),
        ):
            runner = UnitGpuRunner(V100, mode=mode, session=session)
            variants[label] = runner.conv2d_latency(params).seconds
        rows.append(
            {
                "layer": index,
                "cudnn_us": t_cudnn * 1e6,
                "generic_us": variants["generic"] * 1e6,
                "fusedim_us": variants["fusedim"] * 1e6,
                "splitk_us": variants["splitk"] * 1e6,
                "tune_us": variants["tune"] * 1e6,
                "rel_generic": t_cudnn / variants["generic"],
                "rel_fusedim": t_cudnn / variants["fusedim"],
                "rel_splitk": t_cudnn / variants["splitk"],
                "rel_tune": t_cudnn / variants["tune"],
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 12: ARM end to end
# ---------------------------------------------------------------------------

def figure12_arm_end_to_end(
    models: Optional[List[str]] = None,
    session: Optional[TuningSession] = None,
    store=None,
    remote=None,
) -> List[Dict]:
    """TVM-NEON vs TVM-Manual (hand-written DOT) vs UNIT on the Graviton2."""
    models = models or EVALUATED_MODELS
    session = _session(session, store, remote)
    neon = TvmNeonModel(GRAVITON2)
    manual = TvmManualModel.for_arm()
    rows = []
    for name in models:
        unit_runner = UnitCpuRunner(GRAVITON2, "arm.neon.sdot", tuning="full", session=session)
        t_neon = _e2e_latency(name, neon, "int8", fuse=True)
        t_manual = _e2e_latency(name, manual, "int8", fuse=True)
        t_unit = _e2e_latency(name, unit_runner, "int8", fuse=True)
        rows.append(
            {
                "model": name,
                "tvm_neon_ms": t_neon * 1e3,
                "tvm_manual_ms": t_manual * 1e3,
                "unit_ms": t_unit * 1e3,
                "rel_neon": 1.0,
                "rel_manual": t_neon / t_manual,
                "rel_unit": t_neon / t_unit,
                "unit_vs_manual": t_manual / t_unit,
            }
        )
    rows.append(_add_geomean(rows, ["rel_manual", "rel_unit", "unit_vs_manual"]))
    return rows


# ---------------------------------------------------------------------------
# Figure 13: 3-D convolution extensibility
# ---------------------------------------------------------------------------

def figure13_conv3d(
    depth: int = 8, session: Optional[TuningSession] = None, store=None, remote=None
) -> List[Dict]:
    """oneDNN vs UNIT on the 3-D versions of ResNet-18's convolutions."""
    session = _session(session, store, remote)
    onednn = OneDnnModel(CASCADE_LAKE)
    runner = UnitCpuRunner(CASCADE_LAKE, "x86.avx512.vpdpbusd", tuning="full", session=session)
    rows = []
    for index, conv2d in enumerate(resnet18_unique_convs()):
        params = conv3d_from_conv2d(conv2d, depth=depth)
        t_onednn = onednn.conv3d_latency(params).seconds
        t_unit = runner.conv3d_latency(params).seconds
        rows.append(
            {
                "layer": index,
                "onednn_us": t_onednn * 1e6,
                "unit_us": t_unit * 1e6,
                "rel_unit": t_onednn / t_unit,
            }
        )
    rows.append(_add_geomean(rows, ["rel_unit"], label_key="layer", label="gmean"))
    return rows


# ---------------------------------------------------------------------------
# Whole-model numeric execution through cached plans (accuracy-path driver)
# ---------------------------------------------------------------------------

def whole_model_execution(
    models: Optional[List[str]] = None,
    input_hw: int = 32,
    seed: int = 0,
) -> List[Dict]:
    """Run whole models numerically through the engine's cached plans.

    The accuracy-figure execution path: every model is executed end to end by
    :func:`repro.graph.executor.run_model` — convolutions and dense layers
    lowered from the DSL, executed by the vectorized engine through the
    process-wide executable-plan cache, activations living in one
    liveness-planned arena.  Models run at a reduced ``input_hw`` so the full
    sweep stays tractable; channel counts (and therefore layer structure) are
    exactly the evaluated models', which is what makes the plan cache's
    repeated-layer hits representative.

    Each row reports the cold and warm wall-clock, the plan-cache hit
    rates, the arena-vs-naive activation memory, and a determinism check
    (two runs must agree bit for bit).
    """
    from ..graph.executor import run_model
    from ..graph.ir import InputNode, rescale_input
    from ..tir.plan import plan_cache

    models = models or ["resnet-18"]
    # The cold numbers must mean what they say even when earlier work in the
    # process already compiled these layers' plans.
    plan_cache().clear()
    rows = []
    for name in models:
        graph = rescale_input(get_model(name, fresh=True), input_hw)
        input_node = next(n for n in graph.nodes if isinstance(n, InputNode))
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(
            (input_node.shape.channels, input_hw, input_hw)
        ).astype(np.float32)
        t0 = time.perf_counter()
        cold = run_model(graph, {input_node.name: x}, rng=np.random.default_rng(seed))
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = run_model(graph, {input_node.name: x}, rng=np.random.default_rng(seed))
        warm_s = time.perf_counter() - t0
        rows.append(
            {
                "model": name,
                "nodes": len(graph),
                "input_hw": input_hw,
                "cold_s": cold_s,
                "warm_s": warm_s,
                "cold_plan_hit_rate": cold.plan_hit_rate,
                "warm_plan_hit_rate": warm.plan_hit_rate,
                "plan_compiles": cold.plan_misses,
                "arena_mb": cold.memory.arena_bytes / 1e6,
                "naive_mb": cold.memory.naive_bytes / 1e6,
                "memory_reuse": cold.memory.reuse_ratio,
                "deterministic": bool(np.array_equal(cold.output, warm.output)),
                "output_checksum": float(np.abs(cold.output).sum()),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table I and the tuning-convergence observation
# ---------------------------------------------------------------------------

def table1_characteristics() -> List[Dict]:
    """The selected convolution layers (straight from Table I)."""
    return table1_as_rows()


def tuning_convergence(layers: Optional[List[Conv2DParams]] = None, max_pairs: int = 16) -> Dict:
    """How quickly the CPU tuning search converges.

    The paper reports that more than half of the kernels are optimal at the
    first tuning pair and more than 95 % within the first eight pairs.
    """
    layers = layers or TABLE1_LAYERS
    from ..hwsim.cpu import CpuKernelModel
    from ..isa.registry import get_intrinsic

    intrin = get_intrinsic("x86.avx512.vpdpbusd")
    model = CpuKernelModel(CASCADE_LAKE, intrin, per_call_overhead_us=0.8)
    candidates = cpu_tuning_candidates(max_pairs=max_pairs)
    ranks = []
    for params in layers:
        result = exhaustive_search(
            candidates, lambda cfg: model.conv2d_latency(params, cfg).seconds
        )
        # A 2% relative tolerance stands in for the profiling noise a physical
        # machine would show between near-identical schedules.
        ranks.append(result.best_rank(tolerance=0.02))
    return {
        "ranks": ranks,
        "optimal_at_first_pair": sum(1 for r in ranks if r == 1) / len(ranks),
        "optimal_within_8_pairs": sum(1 for r in ranks if r <= 8) / len(ranks),
        "num_layers": len(ranks),
        "num_candidates": len(candidates),
    }
