"""The UNIT single-operator pipeline (Figure 3).

``tensorize()`` glues the pieces together for one tensor operation: run the
Inspector to find an applicable instruction and loop mapping, let the Rewriter
reorganize the loops and organise the rest of the nest for the target
(CPU breaking-point strategy or GPU outer-product strategy), lower to tensor
IR, and replace the marked loop nest with the tensorized instruction call.

The result can be executed by the interpreter (functional correctness) and
costed by the machine models (performance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from ..dsl.compute import ComputeOp
from ..dsl.tensor import Tensor
from ..inspector import InspectionResult, applicable_intrinsics, inspect_applicability
from ..isa.intrinsic import TensorIntrinsic
from ..isa.registry import get_intrinsic
from ..rewriter import (
    CpuScheduleReport,
    CpuTuningConfig,
    GpuScheduleReport,
    GpuTuningConfig,
    TensorizeError,
    TensorizeSpec,
    apply_cpu_schedule,
    apply_gpu_schedule,
    replace_tensorize,
    reorganize_loops,
)
from ..tir import PrimFunc, alloc_buffers, lower, verify
from ..tir.executor import Executor, tier_for_engine

__all__ = ["TensorizeResult", "tensorize", "select_intrinsic", "validate_tensorize"]


@dataclass
class TensorizeResult:
    """Everything produced by tensorizing one operation."""

    operation: ComputeOp
    intrinsic: TensorIntrinsic
    inspection: InspectionResult
    spec: TensorizeSpec
    func: PrimFunc
    config: Union[CpuTuningConfig, GpuTuningConfig, None]
    schedule_report: Union[CpuScheduleReport, GpuScheduleReport, None]

    def execute(
        self,
        buffers: Dict[Tensor, np.ndarray],
        engine: str = "vector",
        executor: Optional[Executor] = None,
    ) -> np.ndarray:
        """Run the tensorized program on numpy buffers (correctness check).

        Executes through a :class:`repro.tir.Executor` — pass one to control
        the tier and validation policy, or use the legacy ``engine`` string
        (``"vector"`` by default, ``"scalar"`` for the reference
        interpreter, ``"native"`` for tiered compiled execution).
        """
        executor = executor or Executor(tier=tier_for_engine(engine))
        return executor.run(self.func, buffers)

    @property
    def num_feasible_mappings(self) -> int:
        return len(self.inspection.mappings)

    def __repr__(self) -> str:
        return (
            f"TensorizeResult({self.operation.name} via {self.intrinsic.name}, "
            f"{self.num_feasible_mappings} feasible mapping(s))"
        )


def select_intrinsic(operation_or_tensor, target: str) -> InspectionResult:
    """Pick the best applicable instruction registered for ``target``.

    Raises :class:`TensorizeError` when nothing applies — the caller should
    then fall back to plain vectorised code.
    """
    results = applicable_intrinsics(operation_or_tensor, target)
    if not results:
        op = getattr(operation_or_tensor, "op", operation_or_tensor)
        raise TensorizeError(
            f"no tensorized instruction registered for target {target!r} applies "
            f"to operation {op.name!r}"
        )
    return results[0]


def validate_tensorize(
    result: TensorizeResult,
    rng: Optional[np.random.Generator] = None,
    engine: str = "vector",
    executor: Optional[Executor] = None,
) -> None:
    """Numerically validate a tensorized function against its operation.

    Executes ``result.func`` and the plain (default-schedule) lowering of the
    original operation over identical random buffers through the selected
    engine.  Integer outputs must be *bit-identical*; floating-point outputs
    are compared with a tight ``allclose`` tolerance, because tensorized
    instructions legitimately reassociate the reduction (e.g. the WMMA
    hardware model accumulates a 16-wide K slab per call).  Raises
    :class:`TensorizeError` on any mismatch.  This is the functional oracle
    the schedule verification and tuning paths share; with the vectorized
    engine it is cheap enough to run per tuned workload.
    """
    rng = rng or np.random.default_rng(0)
    executor = executor or Executor(tier=tier_for_engine(engine))
    reference = lower(result.operation, name=f"{result.operation.name}_ref")
    buffers = alloc_buffers(result.func, rng)
    got = executor.run(result.func, {t: a.copy() for t, a in buffers.items()})
    expected = executor.run(reference, {t: a.copy() for t, a in buffers.items()})
    if result.func.output.dtype.is_integer:
        ok = np.array_equal(got, expected)
    else:
        ok = np.allclose(got, expected, rtol=1e-4, atol=1e-5)
    if not ok:
        mismatch = int(np.sum(got != expected))
        raise TensorizeError(
            f"tensorized {result.operation.name!r} via {result.intrinsic.name} "
            f"does not reproduce the reference ({mismatch} of "
            f"{expected.size} elements differ)"
        )


def tensorize(
    operation_or_tensor,
    intrinsic: Union[str, TensorIntrinsic, None] = None,
    target: Optional[str] = None,
    config: Union[CpuTuningConfig, GpuTuningConfig, None] = None,
    mapping_index: int = 0,
    verify_ir: bool = True,
    validate: bool = False,
) -> TensorizeResult:
    """Tensorize one operation with a given instruction (or the target's best).

    Parameters
    ----------
    operation_or_tensor:
        A computed tensor (or its ComputeOp) written in the tensor DSL.
    intrinsic:
        A :class:`TensorIntrinsic` or registered name.  When omitted,
        ``target`` must be given and the best applicable instruction is chosen.
    config:
        The schedule configuration for the non-tensorized loops.  Defaults to
        the recommended first tuning pair for the instruction's platform.
    mapping_index:
        Which feasible loop mapping to use (0 = the greedy innermost choice);
        alternative mappings are a dimension of the tuning space.
    validate:
        Also run :func:`validate_tensorize` — execute the tensorized function
        through the vectorized engine against the operation's plain lowering:
        bit-identical for integer kernels, tight tolerance for floats (whose
        reductions the instruction may legitimately reassociate).
    """
    op = getattr(operation_or_tensor, "op", operation_or_tensor)

    if intrinsic is None:
        if target is None:
            raise ValueError("either an intrinsic or a target must be provided")
        inspection = select_intrinsic(op, target)
        intrin = inspection.intrinsic
    else:
        intrin = get_intrinsic(intrinsic) if isinstance(intrinsic, str) else intrinsic
        inspection = inspect_applicability(op, intrin)
        if not inspection.applicable:
            raise TensorizeError(
                f"{intrin.name} is not applicable to {op.name}: {inspection.reason}"
            )

    mappings = inspection.mappings
    if not 0 <= mapping_index < len(mappings):
        raise IndexError(
            f"mapping_index {mapping_index} out of range (found {len(mappings)} mappings)"
        )
    spec = reorganize_loops(inspection, mapping=mappings[mapping_index])

    report: Union[CpuScheduleReport, GpuScheduleReport, None] = None
    if intrin.target in ("x86", "arm"):
        cpu_config = config if isinstance(config, CpuTuningConfig) else CpuTuningConfig()
        report = apply_cpu_schedule(spec, cpu_config)
        config = cpu_config
    elif intrin.target == "cuda":
        gpu_config = config if isinstance(config, GpuTuningConfig) else GpuTuningConfig()
        report = apply_gpu_schedule(spec, gpu_config)
        config = gpu_config

    func = lower(spec.schedule)
    # replace_tensorize runs the full static verification tier (structure,
    # bounds, overlap, dtype) over the rewritten candidate; the structural
    # verify() afterwards keeps the historical VerificationError surface.
    func = replace_tensorize(func, spec, verify=verify_ir)
    if verify_ir:
        verify(func)
    result = TensorizeResult(
        operation=op,
        intrinsic=intrin,
        inspection=inspection,
        spec=spec,
        func=func,
        config=config,
        schedule_report=report,
    )
    if validate:
        validate_tensorize(result)
    return result
