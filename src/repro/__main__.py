"""Top-level CLI dispatcher: ``python -m repro <command>``.

Currently one command: ``query`` — the telemetry results-DB / live-service
query CLI (see :mod:`repro.telemetry.query`).  The service daemon keeps its
own entry point (``python -m repro.service``), as do the analysis tools
(``python -m repro.analysis``).
"""

from __future__ import annotations

import sys
from typing import List, Optional

_USAGE = """\
usage: python -m repro query <subcommand> [options]

commands:
  query    query the telemetry results database and live services
           (subcommands: runs, trend, spans, service, verdicts)

other entry points:
  python -m repro.service   tuning service daemon and admin commands
  python -m repro.analysis  static loop-nest analysis reports
"""


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0
    command, rest = argv[0], argv[1:]
    if command == "query":
        from .telemetry.query import main as query_main

        return query_main(rest)
    print(f"python -m repro: unknown command {command!r}\n", file=sys.stderr)
    print(_USAGE, end="", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
