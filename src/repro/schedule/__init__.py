"""``repro.schedule`` — loop-nest scheduling primitives.

This is the stand-in for TVM's schedule layer.  A :class:`Schedule` wraps one
:class:`~repro.dsl.compute.ComputeOp` and records loop transformations (split,
fuse, reorder) and annotations (parallel, unroll, vectorize, bind, tensorize,
pragma) without changing the computation's semantics.  The lowering pass in
``repro.tir.lower`` consumes the schedule to emit tensor IR.
"""

from .schedule import (
    Annotation,
    LoopVar,
    Schedule,
    Stage,
    create_schedule,
)

__all__ = ["Annotation", "LoopVar", "Schedule", "Stage", "create_schedule"]
