"""Schedule primitives: split / fuse / reorder / annotate / tensorize.

A schedule never changes what is computed — only how the loop nest is
organised.  This mirrors TVM's scheduling language, which is the substrate the
paper's Rewriter drives (Section III-C / IV-B): the Rewriter tiles the matched
loops, reorders them innermost, annotates them with a ``tensorize`` pragma,
and organises the remaining loops for parallelism and unrolling.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from ..dsl.axis import AxisKind, IterAxis
from ..dsl.compute import ComputeOp
from ..dsl.dtype import int32
from ..dsl.expr import Expr, Var

__all__ = ["Annotation", "LoopVar", "Stage", "Schedule", "create_schedule"]


class Annotation(Enum):
    """How a loop level is to be emitted by the lowering pass."""

    SERIAL = "serial"
    PARALLEL = "parallel"
    UNROLL = "unroll"
    VECTORIZE = "vectorize"
    TENSORIZE = "tensorize"
    BLOCK_X = "blockIdx.x"
    BLOCK_Y = "blockIdx.y"
    THREAD_X = "threadIdx.x"
    THREAD_Y = "threadIdx.y"

    @property
    def is_gpu_binding(self) -> bool:
        return self in (
            Annotation.BLOCK_X,
            Annotation.BLOCK_Y,
            Annotation.THREAD_X,
            Annotation.THREAD_Y,
        )


class LoopVar:
    """One loop level of a schedule (a root axis or a derived axis)."""

    def __init__(self, name: str, extent: int, kind: AxisKind) -> None:
        self.name = name
        self.extent = int(extent)
        self.kind = kind
        self.var = Var(name, int32)
        self.annotation = Annotation.SERIAL
        self.pragmas: Dict[str, object] = {}

    @property
    def is_reduce(self) -> bool:
        return self.kind == AxisKind.REDUCE

    def __repr__(self) -> str:
        tag = "reduce" if self.is_reduce else "parallel"
        return f"LoopVar({self.name}, extent={self.extent}, {tag}, {self.annotation.value})"


class _SplitRelation:
    def __init__(self, parent: LoopVar, outer: LoopVar, inner: LoopVar, factor: int) -> None:
        self.parent = parent
        self.outer = outer
        self.inner = inner
        self.factor = int(factor)

    @property
    def perfect(self) -> bool:
        return self.parent.extent % self.factor == 0


class _FuseRelation:
    def __init__(self, outer: LoopVar, inner: LoopVar, fused: LoopVar) -> None:
        self.outer = outer
        self.inner = inner
        self.fused = fused


class Stage:
    """The schedule of a single :class:`ComputeOp`."""

    def __init__(self, op: ComputeOp) -> None:
        self.op = op
        self.relations: List[object] = []
        self.root_loops: Dict[IterAxis, LoopVar] = {}
        leafs: List[LoopVar] = []
        for axis in op.all_axes:
            loop = LoopVar(axis.name, axis.extent, axis.kind)
            self.root_loops[axis] = loop
            leafs.append(loop)
        self.leaf_vars: List[LoopVar] = leafs
        # Tensorize state: the loop at which the intrinsic is injected, and the
        # intrinsic itself (set via .tensorize()).
        self.tensorize_loop: Optional[LoopVar] = None
        self.tensorize_intrin = None

    # -- lookup -----------------------------------------------------------
    def __getitem__(self, axis: IterAxis) -> LoopVar:
        """The schedule loop currently standing for a root axis."""
        return self.root_loops[axis]

    def axis_of(self, loop: LoopVar) -> Optional[IterAxis]:
        for axis, lv in self.root_loops.items():
            if lv is loop:
                return axis
        return None

    def _check_leaf(self, loop: LoopVar) -> None:
        if loop not in self.leaf_vars:
            raise ValueError(f"{loop!r} is not a leaf loop of this stage")

    # -- transformations --------------------------------------------------
    def split(self, loop: LoopVar, factor: int) -> Tuple[LoopVar, LoopVar]:
        """Split ``loop`` by ``factor`` into ``(outer, inner)``.

        Imperfect splits (extent not divisible by the factor) are allowed and
        produce a guarded residue, mirroring TVM's ``likely`` clause; the
        paper notes this guard is what hurts workloads #1 and #4 on CPU.
        """
        self._check_leaf(loop)
        factor = int(factor)
        if factor <= 0:
            raise ValueError("split factor must be positive")
        outer_extent = _ceil_div(loop.extent, factor)
        outer = LoopVar(f"{loop.name}.o", outer_extent, loop.kind)
        inner = LoopVar(f"{loop.name}.i", factor, loop.kind)
        idx = self.leaf_vars.index(loop)
        self.leaf_vars[idx : idx + 1] = [outer, inner]
        self.relations.append(_SplitRelation(loop, outer, inner, factor))
        return outer, inner

    def fuse(self, outer: LoopVar, inner: LoopVar) -> LoopVar:
        """Fuse two *adjacent* leaf loops into one."""
        self._check_leaf(outer)
        self._check_leaf(inner)
        io, ii = self.leaf_vars.index(outer), self.leaf_vars.index(inner)
        if ii != io + 1:
            raise ValueError("can only fuse adjacent loops (reorder first)")
        if outer.kind != inner.kind:
            raise ValueError("cannot fuse a data-parallel loop with a reduce loop")
        fused = LoopVar(f"{outer.name}.{inner.name}.f", outer.extent * inner.extent, outer.kind)
        self.leaf_vars[io : io + 2] = [fused]
        self.relations.append(_FuseRelation(outer, inner, fused))
        return fused

    def fuse_many(self, loops: Sequence[LoopVar]) -> LoopVar:
        """Fuse a run of adjacent loops left-to-right."""
        loops = list(loops)
        if not loops:
            raise ValueError("fuse_many requires at least one loop")
        result = loops[0]
        for nxt in loops[1:]:
            result = self.fuse(result, nxt)
        return result

    def reorder(self, *loops: LoopVar) -> None:
        """Reorder the given leaf loops into the given relative order.

        Loops not mentioned keep their positions.
        """
        for loop in loops:
            self._check_leaf(loop)
        if len(set(loops)) != len(loops):
            raise ValueError("duplicate loop in reorder")
        positions = sorted(self.leaf_vars.index(l) for l in loops)
        for pos, loop in zip(positions, loops):
            self.leaf_vars[pos] = loop

    # -- annotations ------------------------------------------------------
    def parallel(self, loop: LoopVar) -> None:
        self._annotate(loop, Annotation.PARALLEL)

    def unroll(self, loop: LoopVar) -> None:
        self._annotate(loop, Annotation.UNROLL)

    def vectorize(self, loop: LoopVar) -> None:
        self._annotate(loop, Annotation.VECTORIZE)

    def bind(self, loop: LoopVar, thread_tag: str) -> None:
        """Bind a loop to a GPU block/thread index, e.g. ``"threadIdx.x"``."""
        mapping = {a.value: a for a in Annotation if a.is_gpu_binding}
        if thread_tag not in mapping:
            raise ValueError(f"unknown thread tag {thread_tag!r}")
        self._annotate(loop, mapping[thread_tag])

    def pragma(self, loop: LoopVar, key: str, value=True) -> None:
        self._check_leaf(loop)
        loop.pragmas[key] = value

    def tensorize(self, loop: LoopVar, intrinsic) -> None:
        """Replace the loop nest rooted at ``loop`` with a tensorized instruction.

        ``loop`` and every leaf loop after it become the instruction's loops;
        the lowering pass emits a ``tensorize`` pragma that the Rewriter's
        replacement pass consumes.
        """
        self._check_leaf(loop)
        self._annotate(loop, Annotation.TENSORIZE)
        loop.pragmas["tensorize"] = intrinsic.name if hasattr(intrinsic, "name") else str(intrinsic)
        self.tensorize_loop = loop
        self.tensorize_intrin = intrinsic

    def _annotate(self, loop: LoopVar, annotation: Annotation) -> None:
        self._check_leaf(loop)
        if loop.is_reduce and annotation == Annotation.PARALLEL:
            raise ValueError(
                "cannot parallelize a reduction loop directly; "
                "use split-reduction (rfactor) instead"
            )
        loop.annotation = annotation

    # -- verification -----------------------------------------------------
    def verify(self) -> None:
        """Check the schedule's structural invariants.

        The lowering pass calls this on every scheduled candidate, so a
        malformed schedule — duplicate or non-positive leaf loops, split /
        fuse algebra that no longer covers the parent extents, a reduce loop
        annotated parallel, or a dangling tensorize loop — is rejected
        before the candidate is lowered, costed or executed.  Raises
        :class:`ValueError` naming the offending loop.
        """
        seen = set()
        for loop in self.leaf_vars:
            if id(loop) in seen:
                raise ValueError(f"duplicate leaf loop {loop.name!r} in schedule")
            seen.add(id(loop))
            if loop.extent <= 0:
                raise ValueError(
                    f"leaf loop {loop.name!r} has non-positive extent {loop.extent}"
                )
            if loop.is_reduce and loop.annotation == Annotation.PARALLEL:
                raise ValueError(
                    f"reduce loop {loop.name!r} is annotated parallel; "
                    f"use split-reduction (rfactor) instead"
                )
        for rel in self.relations:
            if isinstance(rel, _SplitRelation):
                covered = rel.outer.extent * rel.factor
                if covered < rel.parent.extent:
                    raise ValueError(
                        f"split of {rel.parent.name!r} covers only {covered} "
                        f"of {rel.parent.extent} iterations"
                    )
                if (rel.outer.extent - 1) * rel.factor >= rel.parent.extent:
                    raise ValueError(
                        f"split of {rel.parent.name!r} overshoots: outer extent "
                        f"{rel.outer.extent} x factor {rel.factor} leaves a "
                        f"whole empty tile"
                    )
            elif isinstance(rel, _FuseRelation):
                product = rel.outer.extent * rel.inner.extent
                if rel.fused.extent != product:
                    raise ValueError(
                        f"fused loop {rel.fused.name!r} has extent "
                        f"{rel.fused.extent}, expected {product}"
                    )
        if self.tensorize_loop is not None and self.tensorize_loop not in self.leaf_vars:
            raise ValueError(
                f"tensorize loop {self.tensorize_loop.name!r} is no longer a "
                f"leaf of the schedule"
            )

    # -- reconstruction ---------------------------------------------------
    def index_expressions(self) -> Dict[Var, Expr]:
        """Express every root axis variable in terms of the leaf loop variables.

        Splits contribute ``outer * factor + inner``; fusions contribute
        ``fused // inner_extent`` and ``fused % inner_extent``.
        """
        exprs: Dict[LoopVar, Expr] = {leaf: leaf.var for leaf in self.leaf_vars}
        for rel in reversed(self.relations):
            if isinstance(rel, _SplitRelation):
                exprs[rel.parent] = exprs[rel.outer] * rel.factor + exprs[rel.inner]
            elif isinstance(rel, _FuseRelation):
                exprs[rel.outer] = exprs[rel.fused] // rel.inner.extent
                exprs[rel.inner] = exprs[rel.fused] % rel.inner.extent
        return {axis.var: exprs[loop] for axis, loop in self.root_loops.items()}

    def guards(self) -> List[Tuple[Expr, int]]:
        """Predicates required by imperfect splits.

        Each entry is ``(index_expr, bound)`` meaning the lowering must guard
        the body with ``index_expr < bound`` (TVM's ``likely`` clause).
        """
        exprs: Dict[LoopVar, Expr] = {leaf: leaf.var for leaf in self.leaf_vars}
        for rel in reversed(self.relations):
            if isinstance(rel, _SplitRelation):
                exprs[rel.parent] = exprs[rel.outer] * rel.factor + exprs[rel.inner]
            elif isinstance(rel, _FuseRelation):
                exprs[rel.outer] = exprs[rel.fused] // rel.inner.extent
                exprs[rel.inner] = exprs[rel.fused] % rel.inner.extent
        out: List[Tuple[Expr, int]] = []
        for rel in self.relations:
            if isinstance(rel, _SplitRelation) and not rel.perfect:
                out.append((exprs[rel.parent], rel.parent.extent))
        return out

    @property
    def has_imperfect_split(self) -> bool:
        return any(
            isinstance(r, _SplitRelation) and not r.perfect for r in self.relations
        )

    def data_parallel_leaves(self) -> List[LoopVar]:
        return [l for l in self.leaf_vars if not l.is_reduce]

    def reduce_leaves(self) -> List[LoopVar]:
        return [l for l in self.leaf_vars if l.is_reduce]

    def __repr__(self) -> str:
        order = ", ".join(l.name for l in self.leaf_vars)
        return f"Stage({self.op.name}: [{order}])"


class Schedule:
    """A collection of stages (one per ComputeOp)."""

    def __init__(self, ops: Sequence[ComputeOp]) -> None:
        self.stages: Dict[ComputeOp, Stage] = {op: Stage(op) for op in ops}
        self.ops = list(ops)

    def __getitem__(self, op_or_tensor) -> Stage:
        op = getattr(op_or_tensor, "op", op_or_tensor)
        return self.stages[op]

    @property
    def stage(self) -> Stage:
        """The single stage, for the common one-operation case."""
        if len(self.ops) != 1:
            raise ValueError("schedule has multiple stages; index by op")
        return self.stages[self.ops[0]]


def create_schedule(op_or_tensor) -> Schedule:
    """Create a fresh (identity) schedule for a tensor operation."""
    op = getattr(op_or_tensor, "op", op_or_tensor)
    if not isinstance(op, ComputeOp):
        raise TypeError("create_schedule expects a ComputeOp or a computed tensor")
    return Schedule([op])


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)
