"""Dtype & overflow lint: accumulation chains and narrowing casts.

The paper's instructions are mixed precision — ``int8 × int8 → int32`` dot
products — which is safe only while the *longest possible accumulation
chain* stays inside the accumulator's range.  This pass bounds every stored
value with interval arithmetic where a ``TensorLoad`` contributes its
tensor's full dtype range, a ``Reduce`` multiplies its source interval by
the reduction cardinality, and an accumulating store additionally multiplies
by the nest's own reduction extents (the sequential revisit rounds).  A
store whose worst-case interval escapes the destination dtype is flagged,
as is a ``Cast`` whose incoming interval does not fit the target type.

Every finding here is a *warning*, not an error: overflow is a property of
the program's declared semantics (the scalar reference wraps identically),
so it is data-dependent lint, not a rewrite-soundness violation — unlike
the bounds and overlap passes, whose errors reject a candidate outright in
:func:`repro.analysis.verify_rewrite`.

Intrinsic nests are checked through the instruction's own DSL body: the
per-call contribution interval is scaled by the number of sequential rounds
the nest performs against the accumulator register's dtype.
"""

from __future__ import annotations

from typing import List, Optional

from ..dsl import expr as E
from ..tir.stmt import IntrinsicCall, Store
from .framework import Diagnostic, Nest, iter_nests
from .interval import Env, Interval, expr_interval, loop_env

__all__ = ["analyze_dtypes"]


def _dtype_range(dtype) -> Optional[Interval]:
    if not (dtype.is_integer or dtype.is_bool):
        return None
    return Interval(int(dtype.min_value), int(dtype.max_value))


def _load_range(load: E.TensorLoad) -> Optional[Interval]:
    return _dtype_range(load.tensor.dtype)


def analyze_dtypes(func) -> List[Diagnostic]:
    """Lint every nest of ``func`` for overflow and narrowing casts."""
    diags: List[Diagnostic] = []
    for nest in iter_nests(func):
        if isinstance(nest.body, Store):
            _check_store(nest, nest.body, diags)
        elif isinstance(nest.body, IntrinsicCall):
            _check_intrinsic(nest, nest.body, diags)
    return diags


def _check_store(nest: Nest, store: Store, diags: List[Diagnostic]) -> None:
    out_range = _dtype_range(store.tensor.dtype)
    if out_range is None:
        return  # float stores: rounding, not wraparound — nothing to lint
    env = loop_env(nest.axes)
    _flag_narrowing_casts(nest, store.value, env, diags)

    acc = _accumulator_rest(store)
    if acc is None:
        value_iv = expr_interval(store.value, env, _load_range)
        if value_iv is None:
            return
        if not _fits(value_iv, out_range):
            diags.append(_overflow(nest, store, value_iv, out_range))
        return

    rest, combiner = acc
    rest_iv = expr_interval(rest, env, _load_range)
    if rest_iv is None:
        return
    if combiner != "sum":
        # max/min chains never grow past their operands.
        if not _fits(rest_iv, out_range):
            diags.append(_overflow(nest, store, rest_iv, out_range))
        return
    # The accumulator is revisited once per point of the nest's reduction
    # domain: every loop axis the store indices do not depend on.
    dep = set()
    for idx in store.indices:
        dep.update(E.free_vars(idx))
    rounds = 1
    for var, extent in nest.axes:
        if var not in dep:
            rounds *= int(extent)
    total = Interval(min(0, rest_iv.lo * rounds), max(0, rest_iv.hi * rounds))
    if not _fits(total, out_range):
        diags.append(
            Diagnostic(
                "dtype",
                "warning",
                f"accumulation chain over {rounds} round(s) can overflow "
                f"{store.tensor.dtype.name} (worst-case sum {total})",
                nest=nest.name,
                index_expr=str(store.value),
                interval=(total.lo, total.hi),
            )
        )


def _check_intrinsic(nest: Nest, call: IntrinsicCall, diags: List[Diagnostic]) -> None:
    out_b = call.output
    out_range = _dtype_range(out_b.program_tensor.dtype)
    if out_range is None:
        return
    intrin = call.intrin
    op = getattr(intrin, "op", None)
    body = getattr(op, "body", None) if op is not None else None
    if body is None:
        return
    # Per-call contribution: the instruction body with the accumulator
    # register contributing zero (the engine's stacked dispatch does exactly
    # this), over the intrinsic's own axes.
    acc_tensors = {
        b.intrin_tensor
        for b in call.inputs
        if b.program_tensor is out_b.program_tensor
    }

    def load_range(load: E.TensorLoad) -> Optional[Interval]:
        if load.tensor in acc_tensors or load.tensor is out_b.intrin_tensor:
            return Interval(0, 0)
        return _dtype_range(load.tensor.dtype)

    env: Env = {}
    contribution = expr_interval(body, env, load_range)
    if contribution is None:
        return
    # Sequential rounds: nest axes the output address does not depend on.
    dep = set()
    for idx in out_b.program_indices:
        dep.update(E.free_vars(idx))
    rounds = 1
    for var, extent in nest.axes:
        if var not in dep:
            rounds *= int(extent)
    total = Interval(
        min(0, contribution.lo * rounds), max(0, contribution.hi * rounds)
    )
    if not _fits(total, out_range):
        diags.append(
            Diagnostic(
                "dtype",
                "warning",
                f"{intrin.name} accumulation over {rounds} round(s) can "
                f"overflow {out_b.program_tensor.dtype.name} "
                f"(worst case {total})",
                nest=nest.name,
                index_expr=str(tuple(out_b.program_indices)),
            )
        )


def _flag_narrowing_casts(
    nest: Nest, expr: E.Expr, env: Env, diags: List[Diagnostic]
) -> None:
    for node in E.post_order(expr):
        if not isinstance(node, E.Cast):
            continue
        target = _dtype_range(node.dtype)
        if target is None:
            continue
        source_iv = expr_interval(node.value, env, _load_range)
        if source_iv is None:
            # Unknown source: only a *structurally* narrowing cast is worth
            # flagging (wider integer type into a strictly narrower one).
            src_dt = node.value.dtype
            if (
                (src_dt.is_integer or src_dt.is_bool)
                and node.dtype.bits < src_dt.bits
            ):
                diags.append(_narrowing(nest, node, None))
            continue
        if not _fits(source_iv, target):
            diags.append(_narrowing(nest, node, source_iv))


def _fits(iv: Interval, rng: Interval) -> bool:
    return rng.lo <= iv.lo and iv.hi <= rng.hi


def _overflow(nest: Nest, store: Store, iv: Interval, rng: Interval) -> Diagnostic:
    return Diagnostic(
        "dtype",
        "warning",
        f"stored value can overflow {store.tensor.dtype.name} "
        f"(value {iv} vs range {rng})",
        nest=nest.name,
        index_expr=str(store.value),
        interval=(iv.lo, iv.hi),
    )


def _narrowing(nest: Nest, cast: E.Cast, iv: Optional[Interval]) -> Diagnostic:
    detail = f"value {iv} does not fit" if iv is not None else "value range unknown"
    return Diagnostic(
        "dtype",
        "warning",
        f"narrowing cast to {cast.dtype.name} ({detail})",
        nest=nest.name,
        index_expr=str(cast),
    )


def _accumulator_rest(store: Store):
    """``(rest, combiner)`` for ``t[i] = combine(t[i], rest)`` stores."""
    v = store.value
    for cls, comb in ((E.Add, "sum"), (E.Max, "max"), (E.Min, "min")):
        if type(v) is cls:
            for load, rest in ((v.a, v.b), (v.b, v.a)):
                if (
                    isinstance(load, E.TensorLoad)
                    and load.tensor is store.tensor
                    and len(load.indices) == len(store.indices)
                    and all(
                        E.structural_equal(x, y)
                        for x, y in zip(load.indices, store.indices)
                    )
                ):
                    return rest, comb
    return None
