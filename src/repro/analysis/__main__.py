"""``python -m repro.analysis`` — sweep the paper's workloads through the
static verification tier.

Tensorizes every Table-1 layer (and, with ``--all``, every unique
convolution shape of the model zoo) exactly the way the pipeline does, runs
the full pass stack over each lowered PrimFunc and reports per-function
proof coverage.  ``--strict`` additionally requires every nest *proved*
(not merely error-free), which is the bar the ``static-analysis`` CI job
holds the repository to; ``--json`` emits the machine-readable report the
job archives.

Exit status is 0 only when every analyzed function passes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Tuple

from . import analyze

__all__ = ["main", "sweep_funcs"]


def _table1_funcs() -> List[Tuple[str, object]]:
    from ..core.unit import tensorize
    from ..rewriter import CpuTuningConfig
    from ..workloads.conv2d import conv2d_nchwc
    from ..workloads.table1 import TABLE1_LAYERS

    funcs = []
    for params in TABLE1_LAYERS:
        result = tensorize(
            conv2d_nchwc(params), "x86.avx512.vpdpbusd", config=CpuTuningConfig()
        )
        funcs.append(("table1", result.func))
    return funcs


def _zoo_funcs(models: List[str]) -> List[Tuple[str, object]]:
    from ..core.unit import tensorize
    from ..models.zoo import get_model
    from ..rewriter import CpuTuningConfig
    from ..workloads.conv2d import conv2d_nchwc

    seen: Dict[tuple, Tuple[str, object]] = {}
    for name in models:
        graph = get_model(name, fresh=True)
        graph.infer_shapes()
        for node in graph.conv_nodes():
            params = node.conv_params()
            key = (
                params.in_channels,
                params.in_height,
                params.in_width,
                params.out_channels,
                params.kernel,
                params.stride,
                params.padding,
            )
            if key not in seen:
                seen[key] = (name, params)
    funcs = []
    for origin, params in seen.values():
        result = tensorize(
            conv2d_nchwc(params), "x86.avx512.vpdpbusd", config=CpuTuningConfig()
        )
        funcs.append((origin, result.func))
    return funcs


def sweep_funcs(all_workloads: bool = False, models: List[str] = None):
    """The ``(origin, PrimFunc)`` list the CLI analyzes, importable for tests."""
    funcs = _table1_funcs()
    if all_workloads or models:
        if models is None:
            from ..models.zoo import EVALUATED_MODELS

            models = list(EVALUATED_MODELS)
        funcs.extend(_zoo_funcs(models))
    return funcs


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="statically verify the paper's tensorized workloads",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="analyze the model zoo's unique conv shapes in addition to Table 1",
    )
    parser.add_argument(
        "--models",
        default=None,
        help="comma-separated model names to sweep (implies the zoo sweep)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="require every nest proved, not merely error-free",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH", help="write the JSON report to PATH"
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="only print failures and the summary"
    )
    args = parser.parse_args(argv)

    models = args.models.split(",") if args.models else None
    t0 = time.perf_counter()
    funcs = sweep_funcs(all_workloads=args.all, models=models)
    build_s = time.perf_counter() - t0

    reports = []
    failures = 0
    t0 = time.perf_counter()
    for origin, func in funcs:
        start = time.perf_counter()
        report = analyze(func)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        passed = report.ok(strict=args.strict)
        failures += 0 if passed else 1
        if not passed or not args.quiet:
            status = "ok" if passed else "FAIL"
            print(
                f"{origin}/{report.func_name}: {status} — "
                f"{report.proved_nests}/{report.total_nests} nests proved, "
                f"{len(report.errors)} error(s), {len(report.warnings)} warning(s)"
            )
            for diag in report.diagnostics:
                print(f"    {diag.format()}")
        entry = report.to_json()
        entry["origin"] = origin
        entry["ok"] = passed
        entry["elapsed_ms"] = round(elapsed_ms, 3)
        reports.append(entry)
    analyze_s = time.perf_counter() - t0

    summary = {
        "strict": args.strict,
        "functions": len(reports),
        "failed": failures,
        "nests": sum(r["total_nests"] for r in reports),
        "proved_nests": sum(r["proved_nests"] for r in reports),
        "build_seconds": round(build_s, 3),
        "analyze_seconds": round(analyze_s, 3),
    }
    print(
        f"analyzed {summary['functions']} function(s): "
        f"{summary['proved_nests']}/{summary['nests']} nests proved, "
        f"{failures} failure(s) "
        f"[build {build_s:.2f}s, analyze {analyze_s:.2f}s]"
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"summary": summary, "reports": reports}, fh, indent=2)
        print(f"wrote {args.json}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
