"""``repro.analysis`` — the static verification tier.

A dataflow / abstract-interpretation framework over :class:`PrimFunc`s with
three cooperating passes, plus the structural verifier they subsume:

* **structure** (:mod:`.structure`) — the folded ``tir.verify`` pass:
  canonical loops, visibility, binding well-formedness, vector lanes;
* **bounds** (:mod:`.bounds`) — interval arithmetic over loop extents
  composed with affine index decomposition proves every load/store
  in-bounds, including ``likely``-guarded residues;
* **overlap** (:mod:`.overlap`) — proves intrinsic output tiles disjoint,
  detects read-write hazards between accumulation rounds and uninitialized
  accumulators;
* **dtype** (:mod:`.dtypes`) — integer accumulation chains stay within the
  declared accumulator width; narrowing casts are flagged.

:func:`analyze` runs all passes and returns an :class:`AnalysisReport`;
:func:`verify_rewrite` is the cheap gate the Rewriter applies to every
tensorized candidate before it reaches the cost model.  The proofs are also
consumed by :func:`repro.tir.engine.compile_plan`, which elides the runtime
guards (masked-gather clamps, lane checks) that a static proof makes
redundant — see ``PlanStats.proved_nests`` / ``elided_checks``.

``python -m repro.analysis --all --strict`` sweeps the 16 Table-1 layers
plus the model zoo and emits the JSON report consumed by the
``static-analysis`` CI job.
"""

from __future__ import annotations

from typing import List

from .bounds import analyze_bounds, check_nest_bounds
from .dtypes import analyze_dtypes
from .framework import AnalysisReport, Diagnostic, Nest, NestProof, iter_nests
from .interval import (
    Interval,
    affine_interval,
    expr_interval,
    loop_env,
    prove_in_range,
    refine_with_guards,
)
from .overlap import analyze_overlap, check_nest_overlap, check_tiles_disjoint
from .structure import VerificationError, structure_diagnostics, verify_structure

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "Diagnostic",
    "Interval",
    "Nest",
    "NestProof",
    "VerificationError",
    "affine_interval",
    "analyze",
    "analyze_bounds",
    "analyze_dtypes",
    "analyze_overlap",
    "check_nest_bounds",
    "check_nest_overlap",
    "check_tiles_disjoint",
    "expr_interval",
    "iter_nests",
    "loop_env",
    "prove_in_range",
    "refine_with_guards",
    "structure_diagnostics",
    "verify_structure",
    "verify_rewrite",
]


class AnalysisError(Exception):
    """Raised by :func:`verify_rewrite` when a candidate fails a pass."""

    def __init__(self, diagnostics: List[Diagnostic]) -> None:
        self.diagnostics = list(diagnostics)
        super().__init__("; ".join(d.format() for d in self.diagnostics))


def analyze(func) -> AnalysisReport:
    """Run every static pass over ``func`` and combine the results."""
    report = AnalysisReport(func_name=func.name)
    report.diagnostics.extend(structure_diagnostics(func))

    proofs, bound_diags = analyze_bounds(func)
    report.diagnostics.extend(bound_diags)

    disjoint, overlap_diags = analyze_overlap(func)
    report.diagnostics.extend(overlap_diags)
    for proof, dj in zip(proofs, disjoint):
        proof.disjoint_tiles = dj

    report.diagnostics.extend(analyze_dtypes(func))
    report.nest_proofs = proofs
    return report


def verify_rewrite(func) -> AnalysisReport:
    """Verify a rewritten candidate before it reaches the cost model.

    Runs the full pass stack and raises :class:`AnalysisError` when any
    pass reports an *error* (unproven-but-plausible nests only produce
    warnings and do not reject the candidate — the engine still guards them
    at run time).  Returns the report so callers can record proof counts.
    """
    report = analyze(func)
    errors = report.errors
    if errors:
        raise AnalysisError(errors)
    return report
