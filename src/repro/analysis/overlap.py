"""Overlap & dependence analysis for tensorized nests.

The execution engine batches an ``IntrinsicCall`` nest over the loop axes
its destination tile depends on, and runs the remaining axes as sequential
accumulation rounds.  That is only sound when

* **tiles are disjoint** — two distinct assignments of the batch axes never
  address the same output element (otherwise the bulk scatter loses the
  scalar loop's write order), and
* **rounds are hazard-free** — a sequential round never reads what another
  round wrote except through the accumulator element itself (the
  ``d = c + sum(...)`` pattern, which the engine folds exactly).

Both are proved here statically.  Disjointness uses the mixed-radix
criterion on the flattened affine output address: with batch coefficients
sorted ascending, each must exceed the total span of all smaller terms plus
the width of one tile — then any nonzero batch step moves the whole tile
past every address the other tiles touch.  Hazards are detected by
comparing every operand binding that touches the written tensor against the
output binding address-for-address.

The pass also performs def-before-use / uninitialized-accumulator
detection over the top-level statement order: an accumulating store
(``t[i] = combine(t[i], rest)``) into a reduction output that no earlier
nest initialised reads garbage in the scalar semantics — the classic
"deleted init nest" corruption, reported with the nest and index expression.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..dsl import expr as E
from ..tir.stmt import IntrinsicCall, Store
from .framework import Diagnostic, Nest, iter_nests
from .interval import (
    Env,
    Interval,
    _common_scale,
    _guard_upper_bound,
    _linear_interval,
    atom_interval,
    atom_root,
    linearize,
    loop_env,
)

__all__ = ["analyze_overlap", "check_tiles_disjoint", "check_nest_overlap"]


def analyze_overlap(func) -> Tuple[List[Optional[bool]], List[Diagnostic]]:
    """Prove tile disjointness / hazard freedom for every nest of ``func``.

    Returns one entry per nest in walk order (``True`` proved disjoint,
    ``False`` proved or suspected overlapping, ``None`` not applicable) plus
    diagnostics, including the uninitialized-accumulator findings.
    """
    results: List[Optional[bool]] = []
    diagnostics: List[Diagnostic] = []
    initialized: Set = set(func.params[:-1])  # inputs are caller-initialised
    output = func.params[-1]
    op = getattr(func, "op", None)
    # An accumulate-form operation (out += ...) reads the caller's output
    # contents by design; a plain reduction must initialise before updating.
    accumulate_by_design = bool(getattr(op, "accumulate", False))

    for nest in iter_nests(func):
        disjoint, diags = check_nest_overlap(nest)
        results.append(disjoint)
        diagnostics.extend(diags)

        # -- def-before-use over top-level statement order ---------------
        written = _written_tensor(nest)
        acc_read = _accumulator_read(nest)
        if acc_read is not None and written is not None:
            tensor, idx_expr = acc_read
            uninitialised = (
                tensor not in initialized
                and not (tensor is output and accumulate_by_design)
                and tensor not in nest.allocated  # Allocate zero-fills
            )
            if uninitialised:
                diagnostics.append(
                    Diagnostic(
                        "overlap",
                        "error",
                        f"accumulating store reads {tensor.name!r} before any "
                        f"nest initialises it (uninitialized accumulator)",
                        nest=nest.name,
                        index_expr=str(idx_expr),
                    )
                )
        if written is not None and acc_read is None:
            # A non-accumulating full store initialises its target.
            initialized.add(written)
    return results, diagnostics


def check_nest_overlap(nest: Nest) -> Tuple[Optional[bool], List[Diagnostic]]:
    """Disjointness / hazard proof for one nest (intrinsic nests only)."""
    if not isinstance(nest.body, IntrinsicCall):
        return None, []
    call = nest.body
    diags: List[Diagnostic] = []
    out_b = call.output

    # Read-write hazards: an operand reading the written tensor must read
    # exactly the accumulator element the call writes.
    for binding in call.inputs:
        if binding.program_tensor is not out_b.program_tensor:
            continue
        same = len(binding.program_indices) == len(out_b.program_indices) and all(
            E.structural_equal(x, y)
            for x, y in zip(binding.program_indices, out_b.program_indices)
        )
        if not same:
            diags.append(
                Diagnostic(
                    "overlap",
                    "error",
                    f"intrinsic reads output tensor "
                    f"{out_b.program_tensor.name!r} at a different address "
                    f"than it writes (read-write hazard across rounds)",
                    nest=nest.name,
                    index_expr=str(tuple(binding.program_indices)),
                )
            )
            return False, diags

    disjoint = check_tiles_disjoint(call, nest.axes, nest.guards)
    if disjoint is False:
        diags.append(
            Diagnostic(
                "overlap",
                "error",
                f"output tiles of {call.intrin.name} are not provably "
                f"disjoint across the batch axes (write-write hazard)",
                nest=nest.name,
                index_expr=str(tuple(out_b.program_indices)),
            )
        )
    elif disjoint is None:
        diags.append(
            Diagnostic(
                "overlap",
                "warning",
                "cannot decide tile disjointness (non-affine output address)",
                nest=nest.name,
                index_expr=str(tuple(out_b.program_indices)),
            )
        )
    return disjoint, diags


def check_tiles_disjoint(
    call: IntrinsicCall,
    axes: List[Tuple[E.Var, int]],
    guards: Tuple[E.Expr, ...] = (),
) -> Optional[bool]:
    """Mixed-radix disjointness of the intrinsic's output tiles.

    Flattens the output binding's program address row-major, decomposes it
    quasi-affinely (fused-variable ``//``/``%`` terms become split atoms)
    over the batch variables (outer loop variables the address depends on)
    and the tile variables (the intrinsic's own axes), and requires every
    batch coefficient to clear the combined span of all smaller batch terms
    plus the tile's address width.

    ``likely`` guards participate: a guard ``g < b`` whose support atoms
    appear in the address as an exact multiple ``s*g`` collapses those atoms
    into one *group* term of range ``[lo(g), b-1]`` — the engine masks the
    guarded residue points, so only the restricted domain must be disjoint.
    (The group map itself must be injective on its box, checked with the
    same mixed-radix test.)  A batch variable whose split atoms do not
    jointly reconstruct it (e.g. only ``f // 3`` addressed, the residue
    lost) makes distinct batch points address identical tiles — a definite
    collision.  ``True`` = proved disjoint, ``False`` = two batch points
    provably collide, ``None`` = undecidable in the quasi-affine domain.
    """
    out_b = call.output
    tensor = out_b.program_tensor

    # Row-major flattening of the address.
    strides: List[int] = []
    acc = 1
    for extent in reversed(tensor.shape):
        strides.append(acc)
        acc *= int(extent)
    strides.reverse()

    ienv: Env = {ax.var: Interval(0, int(ax.extent) - 1) for ax in call.axes}
    benv: Env = loop_env(axes)
    env: Env = {**benv, **ienv}

    flat_coeffs = {}
    atom_env = {}
    per_dim: List[dict] = []
    for idx, stride in zip(out_b.program_indices, strides):
        lin = linearize(idx, env)
        if lin is None:
            return None
        coeffs, _const, aenv = lin
        atom_env.update(aenv)
        per_dim.append(coeffs)
        for atom, c in coeffs.items():
            flat_coeffs[atom] = flat_coeffs.get(atom, 0) + c * stride

    # Partition address atoms into tile (intrinsic-axis) and batch terms.
    tile = Interval(0, 0)
    batch_coeffs: dict = {}
    batch_ivs: dict = {}
    for atom, c in flat_coeffs.items():
        if c == 0:
            continue
        iv = atom_env.get(atom)
        if iv is None:
            return None
        if atom_root(atom) in ienv:
            tile = tile + iv.scaled(c)
        elif iv.width > 0:  # unit-range atoms cannot collide
            batch_coeffs[atom] = c
            batch_ivs[atom] = iv
    width = tile.width
    used = set(batch_coeffs)

    # Guard grouping: a ``likely`` guard ``g < b`` whose support atoms the
    # address carries as an exact multiple ``s*g`` collapses into a single
    # term of coefficient ``s`` over ``[lo(g), b-1]``: the engine masks the
    # residue points past the guard, so only the restricted domain writes.
    grouped: List[Tuple[int, int]] = []
    for guard in guards:
        gb = _guard_upper_bound(guard)
        if gb is None:
            continue
        g_expr, bound = gb
        g_lin = linearize(g_expr, env)
        if g_lin is None or not g_lin[0]:
            continue
        g_coeffs, g_const, g_aenv = g_lin
        support = [a for a, gc in g_coeffs.items() if gc != 0]
        if any(a not in batch_coeffs for a in support):
            continue
        scale = _common_scale({a: batch_coeffs[a] for a in support}, g_coeffs)
        if scale is None:
            continue
        # The group value must determine its member atoms (injective map),
        # otherwise replacing them by one term would hide a collision.
        g_terms = sorted(
            (abs(gc), g_aenv[a].width) for a, gc in g_coeffs.items() if gc != 0
        )
        g_span = 0
        injective = True
        for coeff, w in g_terms:
            if coeff <= g_span:
                injective = False
                break
            g_span += coeff * w
        if not injective:
            continue
        g_iv = _linear_interval(g_coeffs, 0, g_aenv)
        if g_iv is None:
            continue
        hi = min(g_iv.hi, bound - 1 - g_const)
        if hi < g_iv.lo:
            continue
        for a in support:
            del batch_coeffs[a]  # stays in `used`: the group determines it
        grouped.append((scale, hi - g_iv.lo))

    # Reconstructibility: the batch atoms must determine every batch
    # variable they derive from; a lost residue means two distinct batch
    # points share every atom value — identical tiles, definite overlap.
    divisors: dict = {}
    for atom in atom_env:
        if isinstance(atom, tuple):
            divisors.setdefault(atom[1], set()).add(atom[2])

    def _covered(atom) -> bool:
        iv = atom_interval(atom, env)
        if iv is not None and iv.width == 0:
            return True  # constant-valued: nothing to lose
        if atom in used:
            return True
        return any(
            _covered(("div", atom, c)) and _covered(("mod", atom, c))
            for c in divisors.get(atom, ())
        )

    for root in {atom_root(atom) for atom in used}:
        if not _covered(root):
            return False

    terms = [(abs(c), batch_ivs[a].width) for a, c in batch_coeffs.items()]
    terms.extend(grouped)
    terms.sort()

    span = width
    flat_ok = True
    for coeff, extent_span in terms:
        if coeff <= span:
            # The step of this batch axis does not clear the span of the
            # smaller terms plus one tile: two batch points can address
            # overlapping tiles (e.g. a stride smaller than the tile).
            flat_ok = False
            break
        span += coeff * extent_span
    if flat_ok:
        return True

    # Per-dimension fallback.  The flattened criterion treats the tile as a
    # contiguous address range, which is too coarse for multi-dimensional
    # box tiles: a 16x16 WMMA block in a 32-wide row-major array interleaves
    # with its neighbours in flat address space yet never shares an element.
    # When every batch atom contributes to exactly one output dimension, it
    # suffices that each dimension's batch coefficients clear that
    # dimension's *own* tile width — two distinct batch points then differ
    # in some dimension by more than the tile spans there, so the boxes are
    # disjoint.  (Guard restriction is not applied here; the full-interval
    # check is strictly more conservative.)
    dim_of: dict = {}
    dim_terms: List[Tuple[int, List[Tuple[int, int]]]] = []
    for d, coeffs in enumerate(per_dim):
        tile_d = Interval(0, 0)
        batch_d: List[Tuple[int, int]] = []
        for atom, c in coeffs.items():
            if c == 0:
                continue
            iv = atom_env[atom]
            if atom_root(atom) in ienv:
                tile_d = tile_d + iv.scaled(c)
            elif iv.width > 0:
                if dim_of.setdefault(atom, d) != d:
                    return False  # atom spans dimensions; no box argument
                batch_d.append((abs(c), iv.width))
        dim_terms.append((tile_d.width, sorted(batch_d)))
    for w_d, terms_d in dim_terms:
        span = w_d
        for coeff, extent_span in terms_d:
            if coeff <= span:
                return False
            span += coeff * extent_span
    return True


# -- def-before-use helpers -------------------------------------------------


def _written_tensor(nest: Nest):
    if isinstance(nest.body, Store):
        return nest.body.tensor
    if isinstance(nest.body, IntrinsicCall):
        return nest.body.output.program_tensor
    return None


def _accumulator_read(nest: Nest):
    """The ``(tensor, index_expr)`` a nest reads as its accumulator, if any."""
    if isinstance(nest.body, Store):
        store = nest.body
        for node in E.post_order(store.value):
            if isinstance(node, E.TensorLoad) and node.tensor is store.tensor:
                return store.tensor, E.TensorLoad(store.tensor, store.indices)
        return None
    if isinstance(nest.body, IntrinsicCall):
        call = nest.body
        out = call.output.program_tensor
        if call.reads_output:
            for binding in call.inputs:
                if binding.program_tensor is out:
                    return out, E.TensorLoad(out, binding.program_indices)
        return None
    return None
