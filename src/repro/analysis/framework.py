"""Shared infrastructure of the static verification tier.

Every pass speaks the same two vocabularies:

* :class:`Nest` — one compilable loop nest, decomposed exactly the way the
  execution engine's plan compiler decomposes it (a chain of canonical
  ``For`` loops, ``likely`` guards and pragma scopes ending in a ``Store``
  or an ``IntrinsicCall``), so "nest N proved safe" means the same region
  to the analyzer and to :func:`repro.tir.engine.compile_plan`;
* :class:`Diagnostic` — a finding that names the pass, the nest, the exact
  index expression and (for bounds violations) the violating interval, so a
  rejected rewrite is debuggable without re-running anything.

:class:`AnalysisReport` aggregates per-nest proofs plus diagnostics and
serialises to the JSON consumed by the ``static-analysis`` CI job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Tuple

from ..dsl import expr as E
from ..dsl.tensor import Tensor
from ..tir.stmt import (
    Allocate,
    AttrStmt,
    Evaluate,
    For,
    IfThenElse,
    IntrinsicCall,
    SeqStmt,
    Stmt,
    Store,
)

__all__ = ["Diagnostic", "Nest", "NestProof", "AnalysisReport", "iter_nests"]


@dataclass
class Diagnostic:
    """One finding of a static-analysis pass."""

    pass_name: str  # "structure" | "bounds" | "overlap" | "dtype"
    severity: str  # "error" | "warning"
    message: str
    nest: str = ""
    index_expr: Optional[str] = None
    interval: Optional[Tuple[int, int]] = None

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def format(self) -> str:
        parts = [f"[{self.pass_name}:{self.severity}]"]
        if self.nest:
            parts.append(f"nest `{self.nest}`:")
        parts.append(self.message)
        if self.index_expr is not None:
            parts.append(f"(index {self.index_expr}")
            if self.interval is not None:
                parts[-1] += f" ∈ [{self.interval[0]}, {self.interval[1]}]"
            parts[-1] += ")"
        return " ".join(parts)

    def to_json(self) -> dict:
        return {
            "pass": self.pass_name,
            "severity": self.severity,
            "nest": self.nest,
            "message": self.message,
            "index_expr": self.index_expr,
            "interval": list(self.interval) if self.interval else None,
        }


@dataclass
class Nest:
    """One engine-shaped loop nest of a PrimFunc."""

    stmt: Stmt  # the nest root (outermost For / guard)
    axes: List[Tuple[E.Var, int]]
    guards: List[E.Expr]
    body: Stmt  # Store | IntrinsicCall | anything else (unanalyzable)
    allocated: Set[Tensor] = field(default_factory=set)
    index: int = 0  # position in walk order (matches the plan compiler)

    @property
    def name(self) -> str:
        loops = ".".join(v.name for v, _ in self.axes) or "<scalar>"
        if isinstance(self.body, Store):
            return f"{loops}->store[{self.body.tensor.name}]"
        if isinstance(self.body, IntrinsicCall):
            return f"{loops}->intrinsic[{self.body.intrin.name}]"
        return f"{loops}->{type(self.body).__name__}"


@dataclass
class NestProof:
    """What the passes managed to prove about one nest."""

    nest: str
    kind: str  # "store" | "intrinsic" | "other"
    bounds_proved: bool = False
    bounds_conditional: bool = False  # the proof leaned on likely guards
    disjoint_tiles: Optional[bool] = None  # intrinsic nests only
    accesses: int = 0

    @property
    def proved(self) -> bool:
        if self.kind == "intrinsic":
            return self.bounds_proved and self.disjoint_tiles is True
        return self.bounds_proved

    def to_json(self) -> dict:
        return {
            "nest": self.nest,
            "kind": self.kind,
            "proved": self.proved,
            "bounds_proved": self.bounds_proved,
            "bounds_conditional": self.bounds_conditional,
            "disjoint_tiles": self.disjoint_tiles,
            "accesses": self.accesses,
        }


@dataclass
class AnalysisReport:
    """The combined result of all passes over one PrimFunc."""

    func_name: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    nest_proofs: List[NestProof] = field(default_factory=list)

    @property
    def total_nests(self) -> int:
        return len(self.nest_proofs)

    @property
    def proved_nests(self) -> int:
        return sum(1 for p in self.nest_proofs if p.proved)

    @property
    def unproven_nests(self) -> List[NestProof]:
        return [p for p in self.nest_proofs if not p.proved]

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if not d.is_error]

    def ok(self, strict: bool = False) -> bool:
        """No errors; under ``strict`` additionally every nest proved."""
        if self.errors:
            return False
        if strict and self.proved_nests != self.total_nests:
            return False
        return True

    def summary(self) -> str:
        status = "ok" if self.ok() else "FAIL"
        return (
            f"{self.func_name}: {status} — {self.proved_nests}/{self.total_nests} "
            f"nests proved, {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )

    def to_json(self) -> dict:
        return {
            "func": self.func_name,
            "total_nests": self.total_nests,
            "proved_nests": self.proved_nests,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "nests": [p.to_json() for p in self.nest_proofs],
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }


def iter_nests(func) -> Iterator[Nest]:
    """Yield the nests of ``func`` in plan-compiler walk order.

    The decomposition matches ``_PlanCompiler._walk``/``_compile_nest``
    exactly: sequences and pragma scopes are transparent, ``Allocate``
    introduces a buffer for the rest of its scope, and each maximal
    ``For``/likely-guard chain is one nest.
    """
    counter = [0]

    def walk(stmt: Stmt, allocated: Set[Tensor]) -> Iterator[Nest]:
        if isinstance(stmt, SeqStmt):
            for s in stmt.stmts:
                yield from walk(s, allocated)
        elif isinstance(stmt, AttrStmt):
            yield from walk(stmt.body, allocated)
        elif isinstance(stmt, Allocate):
            yield from walk(stmt.body, allocated | {stmt.tensor})
        elif isinstance(stmt, (For, Store, IfThenElse, IntrinsicCall)):
            yield decompose(stmt, allocated)
        elif isinstance(stmt, Evaluate):
            pass  # opaque side effect; the structural pass checks it
        # Unknown statements are the structural pass's concern.

    def decompose(root: Stmt, allocated: Set[Tensor]) -> Nest:
        axes: List[Tuple[E.Var, int]] = []
        guards: List[E.Expr] = []
        stmt = root
        while True:
            if isinstance(stmt, For):
                axes.append((stmt.var, stmt.extent))
                stmt = stmt.body
            elif isinstance(stmt, IfThenElse) and stmt.else_case is None:
                guards.append(stmt.condition)
                stmt = stmt.then_case
            elif isinstance(stmt, AttrStmt):
                stmt = stmt.body
            else:
                break
        nest = Nest(root, axes, guards, stmt, set(allocated), counter[0])
        counter[0] += 1
        return nest

    yield from walk(func.body, set())
