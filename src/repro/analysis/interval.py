"""Integer interval arithmetic over tensor-IR index expressions.

The abstract domain of the static verification tier (Section II-C.3's
"analyzable programs" claim made checkable): every loop variable of a
canonical nest ranges over ``[0, extent)``, so any index expression built
from loop variables evaluates to a computable integer interval.  Two layers
cooperate:

* :func:`expr_interval` — a sound recursive evaluator covering the whole
  expression language (including ``//``/``%``, ``min``/``max``, ``Select``,
  the vector constructors and ``Reduce``); unknown leaves yield ``None``
  ("cannot bound"), never a wrong interval;
* :func:`refine_with_guards` — affine composition with ``likely`` guards: a
  residue guard ``g < b`` tightens the interval of any index that is an
  affine multiple of ``g`` (``idx = s*g + rest``), which is exactly the shape
  imperfect splits produce.

Both build on the memoized :func:`repro.dsl.expr.extract_linear`
decomposition, so the hot affine path shares its cache with the execution
engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..dsl import expr as E

__all__ = [
    "Interval",
    "loop_env",
    "expr_interval",
    "affine_interval",
    "linearize",
    "atom_root",
    "atom_interval",
    "refine_with_guards",
    "prove_in_range",
]


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        corners = (
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        )
        return Interval(min(corners), max(corners))

    def scaled(self, k: int) -> "Interval":
        if k >= 0:
            return Interval(self.lo * k, self.hi * k)
        return Interval(self.hi * k, self.lo * k)

    def shifted(self, k: int) -> "Interval":
        return Interval(self.lo + k, self.hi + k)

    def floordiv(self, other: "Interval") -> Optional["Interval"]:
        """``self // other`` (Python floor semantics); ``None`` if 0 ∈ other."""
        if other.lo <= 0 <= other.hi:
            return None
        corners = (
            self.lo // other.lo,
            self.lo // other.hi,
            self.hi // other.lo,
            self.hi // other.hi,
        )
        return Interval(min(corners), max(corners))

    def mod(self, other: "Interval") -> Optional["Interval"]:
        """``self % other`` for a constant positive modulus."""
        if other.lo != other.hi or other.lo <= 0:
            return None
        m = other.lo
        if 0 <= self.lo and self.hi < m:
            return self  # already reduced
        return Interval(0, m - 1)

    def min_with(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def max_with(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def clamp_hi(self, hi: int) -> "Interval":
        return Interval(self.lo, min(self.hi, hi))

    # -- predicates -------------------------------------------------------
    def within(self, lo: int, hi: int) -> bool:
        return lo <= self.lo and self.hi <= hi

    @property
    def width(self) -> int:
        return self.hi - self.lo

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


Env = Dict[E.Var, Interval]


def loop_env(axes: Iterable[Tuple[E.Var, int]]) -> Env:
    """The interval environment of a canonical nest: ``var ∈ [0, extent-1]``."""
    return {var: Interval(0, int(extent) - 1) for var, extent in axes}


def affine_interval(expr: E.Expr, env: Env) -> Optional[Interval]:
    """Interval of an affine expression via :func:`extract_linear` (fast path)."""
    lin = E.extract_linear(expr, list(env))
    if lin is None:
        return None
    coeffs, const = lin
    total = Interval(const, const)
    for var, c in coeffs.items():
        total = total + env[var].scaled(c)
    return total


def expr_interval(expr: E.Expr, env: Env, load_range=None) -> Optional[Interval]:
    """Sound interval of ``expr`` under ``env``; ``None`` when unbounded.

    ``load_range`` optionally maps a :class:`~repro.dsl.expr.TensorLoad` to an
    interval (the dtype lint passes the loaded tensor's value range); index
    analysis leaves it ``None``, so data-dependent indices are "cannot
    bound", never wrongly bounded.
    """
    fast = affine_interval(expr, env)
    if fast is not None:
        return fast
    if isinstance(expr, E.Const):
        if expr.dtype.is_float:
            return None
        return Interval(int(expr.value), int(expr.value))
    if isinstance(expr, E.Var):
        return env.get(expr)
    if isinstance(expr, E.Cast):
        inner = expr_interval(expr.value, env, load_range)
        if inner is None:
            return None
        if expr.dtype.is_integer or expr.dtype.is_bool:
            lo, hi = int(expr.dtype.min_value), int(expr.dtype.max_value)
            if inner.within(lo, hi):
                return inner
            # Out-of-range casts wrap: all we know is the target's range.
            return Interval(lo, hi)
        return None
    if isinstance(expr, E.BinaryOp):
        a = expr_interval(expr.a, env, load_range)
        b = expr_interval(expr.b, env, load_range)
        if a is None or b is None:
            return None
        if isinstance(expr, E.Add):
            return a + b
        if isinstance(expr, E.Sub):
            return a - b
        if isinstance(expr, E.Mul):
            return a * b
        if isinstance(expr, E.FloorDiv):
            return a.floordiv(b)
        if isinstance(expr, E.Mod):
            return a.mod(b)
        if isinstance(expr, E.Min):
            return a.min_with(b)
        return a.max_with(b)
    if isinstance(expr, E.Compare):
        return Interval(0, 1)
    if isinstance(expr, E.Select):
        t = expr_interval(expr.true_value, env, load_range)
        f = expr_interval(expr.false_value, env, load_range)
        if t is None or f is None:
            return None
        return t.hull(f)
    if isinstance(expr, E.Ramp):
        base = expr_interval(expr.base, env, load_range)
        if base is None:
            return None
        span = expr.stride * (expr.lanes - 1)
        return base + Interval(min(0, span), max(0, span))
    if isinstance(expr, E.Broadcast):
        return expr_interval(expr.value, env, load_range)
    if isinstance(expr, E.Shuffle):
        total: Optional[Interval] = None
        for v in expr.vectors:
            iv = expr_interval(v, env, load_range)
            if iv is None:
                return None
            total = iv if total is None else total.hull(iv)
        return total
    if isinstance(expr, E.Reduce):
        sub = dict(env)
        n = 1
        for ax in expr.axes:
            sub[ax.var] = Interval(0, int(ax.extent) - 1)
            n *= int(ax.extent)
        src = expr_interval(expr.source, sub, load_range)
        if src is None:
            return None
        if expr.combiner == "sum":
            return Interval(min(0, src.lo * n), max(0, src.hi * n))
        return src
    if isinstance(expr, E.TensorLoad):
        if load_range is not None:
            return load_range(expr)
        return None
    return None


# -- quasi-affine linearization ---------------------------------------------
#
# Fused loops address buffers through ``//`` and ``%`` of the fused variable
# (``f // 3 // 17``, ``(f % 3) * 8 + ow``), which is outside the affine
# domain of :func:`extract_linear`.  :func:`linearize` recovers linearity by
# *atom splitting*: each ``α // c`` / ``α % c`` over an atom ``α`` (a loop
# variable or a previously split atom) becomes a synthetic atom with the
# induced interval (``α//c ∈ [lo//c, hi//c]``, ``α%c ∈ [0, c-1]``).  Atoms
# are canonical tuples, so the same subterm in an index and in its ``likely``
# guard linearizes to the *same* atom and affine reasoning composes across
# them exactly as it does for plain variables.

Atom = object  # a Var, or ("div"|"mod", parent_atom, divisor)


def atom_root(atom) -> E.Var:
    """The loop variable a (possibly nested) split atom derives from."""
    while isinstance(atom, tuple):
        atom = atom[1]
    return atom


def atom_interval(atom, env: Env) -> Optional[Interval]:
    """Interval of an atom from the root variable's range alone."""
    if not isinstance(atom, tuple):
        return env.get(atom)
    kind, parent, c = atom
    piv = atom_interval(parent, env)
    if piv is None:
        return None
    if kind == "div":
        return piv.floordiv(Interval(c, c))
    return Interval(0, c - 1)


def linearize(expr: E.Expr, env: Env):
    """Quasi-affine decomposition of ``expr`` over ``env``'s variables.

    Returns ``(coeffs, const, atom_env)`` where ``coeffs`` maps atoms
    (variables and div/mod split atoms) to integer coefficients and
    ``atom_env`` bounds every atom, or ``None`` when ``expr`` is not
    quasi-affine (data-dependent indices, variable divisors, products of
    variables).
    """
    atom_env: Dict = dict(env)
    lin = _linearize(expr, env, atom_env)
    if lin is None:
        return None
    coeffs, const = lin
    return coeffs, const, atom_env


def _linearize(expr: E.Expr, env: Env, atom_env: Dict):
    if isinstance(expr, E.Const):
        if expr.dtype.is_float:
            return None
        return {}, int(expr.value)
    if isinstance(expr, E.Var):
        if expr not in env:
            return None
        return {expr: 1}, 0
    if isinstance(expr, E.Cast):
        # Index casts are book-keeping; wraparound of an index that large
        # would already fail the bounds check on the unwrapped value.
        return _linearize(expr.value, env, atom_env)
    if isinstance(expr, (E.Add, E.Sub)):
        a = _linearize(expr.a, env, atom_env)
        b = _linearize(expr.b, env, atom_env)
        if a is None or b is None:
            return None
        sign = 1 if isinstance(expr, E.Add) else -1
        coeffs = dict(a[0])
        for atom, c in b[0].items():
            coeffs[atom] = coeffs.get(atom, 0) + sign * c
        return {k: c for k, c in coeffs.items() if c != 0}, a[1] + sign * b[1]
    if isinstance(expr, E.Mul):
        a = _linearize(expr.a, env, atom_env)
        b = _linearize(expr.b, env, atom_env)
        if a is None or b is None:
            return None
        if a[0] and b[0]:
            return None  # product of two non-constant parts
        if b[0]:
            a, b = b, a
        k = b[1]
        return {atom: c * k for atom, c in a[0].items() if c * k != 0}, a[1] * k
    if isinstance(expr, (E.FloorDiv, E.Mod)):
        b = _linearize(expr.b, env, atom_env)
        if b is None or b[0] or b[1] <= 0:
            return None
        c = b[1]
        a = _linearize(expr.a, env, atom_env)
        if a is None:
            return None
        a_coeffs, a_const = a
        if not a_coeffs:
            v = a_const // c if isinstance(expr, E.FloorDiv) else a_const % c
            return {}, v
        if len(a_coeffs) != 1 or a_const != 0:
            return None
        ((atom, k),) = a_coeffs.items()
        if k != 1:
            return None
        iv = atom_env.get(atom)
        if iv is None:
            return None
        if isinstance(expr, E.FloorDiv):
            if 0 <= iv.lo and iv.hi < c:
                return {}, 0  # the quotient is identically zero
            derived = ("div", atom, c)
            atom_env.setdefault(derived, iv.floordiv(Interval(c, c)))
            return {derived: 1}, 0
        if 0 <= iv.lo and iv.hi < c:
            return {atom: 1}, 0  # already reduced: α % c == α
        derived = ("mod", atom, c)
        atom_env.setdefault(derived, Interval(0, c - 1))
        return {derived: 1}, 0
    return None


def _linear_interval(coeffs: Dict, const: int, atom_env: Dict) -> Optional[Interval]:
    total = Interval(const, const)
    for atom, c in coeffs.items():
        iv = atom_env.get(atom)
        if iv is None:
            return None
        total = total + iv.scaled(c)
    return total


def refine_with_guards(
    expr: E.Expr,
    base: Optional[Interval],
    guards: Sequence[E.Expr],
    env: Env,
) -> Tuple[Optional[Interval], bool]:
    """Tighten ``base`` using quasi-affine ``likely`` guards; returns
    ``(interval, used_guard)``.

    A guard ``g < b`` caps any index of the shape ``idx = s*g + rest`` (with
    integer ``s > 0`` and ``rest`` quasi-affine over the remaining atoms) at
    ``s*(b-1) + max(rest)`` — the exact relationship between an imperfect
    split's residue guard and the loads that address through the guarded
    axis.  Index and guard are decomposed with :func:`linearize`, so the
    composition also fires when both address through fused-variable
    ``//``/``%`` terms.
    """
    lin = linearize(expr, env)
    if lin is None:
        return base, False
    coeffs, const, aenv = lin
    interval = base
    used = False
    for guard in guards:
        bound_expr = _guard_upper_bound(guard)
        if bound_expr is None:
            continue
        g_expr, bound = bound_expr
        g_lin = linearize(g_expr, env)
        if g_lin is None or not g_lin[0]:
            continue
        g_coeffs, g_const, g_aenv = g_lin
        aenv_all = {**aenv, **g_aenv}
        scale = _common_scale(coeffs, g_coeffs)
        if scale is None:
            continue
        # rest = idx - scale * g, quasi-affine over the remaining atoms.
        rest = Interval(const - scale * g_const, const - scale * g_const)
        ok = True
        for atom, c in coeffs.items():
            rc = c - scale * g_coeffs.get(atom, 0)
            if rc == 0:
                continue
            iv = aenv_all.get(atom)
            if iv is None:
                ok = False
                break
            rest = rest + iv.scaled(rc)
        if not ok:
            continue
        # g ranges over [g_lo, b-1] inside the guarded region.
        g_iv = _linear_interval(g_coeffs, g_const, aenv_all)
        g_lo = g_iv.lo if g_iv is not None else None
        g_hi = bound - 1
        if g_iv is not None:
            g_hi = min(g_hi, g_iv.hi)
        if g_lo is None or g_lo > g_hi:
            continue
        capped = Interval(g_lo, g_hi).scaled(scale) + rest
        if interval is not None:
            lo, hi = max(interval.lo, capped.lo), min(interval.hi, capped.hi)
            if lo > hi:
                continue  # guard excludes the whole range: no refinement
            capped = Interval(lo, hi)
        interval = capped
        used = True
    return interval, used


def _guard_upper_bound(guard: E.Expr) -> Optional[Tuple[E.Expr, int]]:
    """Normalise a guard to ``(expr, exclusive_upper_bound)`` when possible."""
    if not isinstance(guard, E.Compare):
        return None
    if guard.op == "<" and isinstance(guard.b, E.Const):
        return guard.a, int(guard.b.value)
    if guard.op == "<=" and isinstance(guard.b, E.Const):
        return guard.a, int(guard.b.value) + 1
    if guard.op == ">" and isinstance(guard.a, E.Const):
        return guard.b, int(guard.a.value)
    if guard.op == ">=" and isinstance(guard.a, E.Const):
        return guard.b, int(guard.a.value) + 1
    return None


def _common_scale(coeffs: Dict, g_coeffs: Dict) -> Optional[int]:
    """The positive integer ``s`` with ``coeffs ⊇ s * g_coeffs``, if any."""
    scale: Optional[int] = None
    for var, gc in g_coeffs.items():
        if gc == 0:
            continue
        c = coeffs.get(var, 0)
        if c == 0 or c % gc != 0:
            return None
        s = c // gc
        if s <= 0:
            return None
        if scale is None:
            scale = s
        elif s != scale:
            return None
    return scale


def prove_in_range(
    expr: E.Expr,
    extent: int,
    env: Env,
    guards: Sequence[E.Expr] = (),
) -> Tuple[bool, bool, Optional[Interval]]:
    """Prove ``0 <= expr < extent``; returns ``(proved, used_guard, interval)``.

    ``used_guard`` distinguishes *unconditional* proofs (valid at every grid
    point, so the engine may elide its masked-gather clamps) from proofs that
    hold only inside the ``likely``-guarded region.
    """
    base = expr_interval(expr, env)
    if base is not None and base.within(0, extent - 1):
        return True, False, base
    refined, used = refine_with_guards(expr, base, guards, env)
    if refined is not None and refined.within(0, extent - 1):
        return True, used, refined
    return False, False, refined if refined is not None else base
