"""Structural verification of tensor-IR programs (the folded ``tir.verify``).

Checks the invariants the paper relies on (Section II-C.3): canonical loops,
no variable shadowing, all loads/stores referring to buffers that are either
parameters or allocated in scope, and every intrinsic operand bound to
visible buffers over bound variables.  This is the old ``repro.tir.verify``
pass folded into the analysis framework, with its two known gaps closed:

* **vector expressions** — ``Ramp``/``Broadcast``/``Shuffle`` lanes must be
  positive and lanes must not nest (a vector of vectors has no scalar-loop
  semantics; the engine would only discover this at run time);
* **intrinsic region reads** — operand *index expressions* may themselves
  read tensors (indirect addressing); those tensors must be visible in the
  ``Allocate`` scope of the call, which the old pass never checked.

``verify_structure`` raises :class:`VerificationError` on the first
violation (the historical contract, re-exported as ``repro.tir.verify``);
``structure_diagnostics`` collects every violation as diagnostics for the
combined report.
"""

from __future__ import annotations

from typing import List, Set

from ..dsl import expr as E
from ..dsl.tensor import Tensor
from ..tir.stmt import (
    Allocate,
    AttrStmt,
    Evaluate,
    For,
    IfThenElse,
    IntrinsicCall,
    SeqStmt,
    Stmt,
    Store,
)
from .framework import Diagnostic

__all__ = ["VerificationError", "verify_structure", "structure_diagnostics"]


class VerificationError(Exception):
    """Raised when a tensor-IR program violates a structural invariant."""


def verify_structure(func) -> None:
    """Verify ``func``; raises :class:`VerificationError` on the first violation."""
    visible: Set[Tensor] = set(func.params)
    bound_vars: Set[E.Var] = set()
    _check(func.body, visible, bound_vars)


def structure_diagnostics(func) -> List[Diagnostic]:
    """All structural violations of ``func`` as diagnostics (never raises)."""
    try:
        verify_structure(func)
    except VerificationError as exc:
        return [Diagnostic("structure", "error", str(exc))]
    return []


def _check(stmt: Stmt, visible: Set[Tensor], bound: Set[E.Var]) -> None:
    if isinstance(stmt, For):
        if stmt.var in bound:
            raise VerificationError(f"loop variable {stmt.var.name!r} is shadowed")
        if stmt.extent <= 0:
            raise VerificationError("loop extent must be positive")
        _check(stmt.body, visible, bound | {stmt.var})
    elif isinstance(stmt, SeqStmt):
        for s in stmt.stmts:
            _check(s, visible, bound)
    elif isinstance(stmt, IfThenElse):
        _check_expr(stmt.condition, visible, bound)
        _check(stmt.then_case, visible, bound)
        if stmt.else_case is not None:
            _check(stmt.else_case, visible, bound)
    elif isinstance(stmt, AttrStmt):
        _check(stmt.body, visible, bound)
    elif isinstance(stmt, Allocate):
        _check(stmt.body, visible | {stmt.tensor}, bound)
    elif isinstance(stmt, Store):
        if stmt.tensor not in visible:
            raise VerificationError(f"store into unknown buffer {stmt.tensor.name!r}")
        for idx in stmt.indices:
            _check_expr(idx, visible, bound)
        _check_expr(stmt.value, visible, bound)
    elif isinstance(stmt, Evaluate):
        _check_expr(stmt.expr, visible, bound)
    elif isinstance(stmt, IntrinsicCall):
        intrin_axis_vars = {ax.var for ax in stmt.axes}
        for binding in list(stmt.inputs) + [stmt.output]:
            if binding.program_tensor not in visible:
                raise VerificationError(
                    f"intrinsic operand uses unknown buffer "
                    f"{binding.program_tensor.name!r}"
                )
            for idx in binding.program_indices:
                for var in E.free_vars(idx):
                    if var not in bound and var not in intrin_axis_vars:
                        raise VerificationError(
                            f"intrinsic operand index uses unbound variable {var.name!r}"
                        )
                # Indirect addressing: region reads inside the operand index
                # must be visible in the Allocate scope of the call.
                for node in E.post_order(idx):
                    if isinstance(node, E.TensorLoad) and node.tensor not in visible:
                        raise VerificationError(
                            f"intrinsic operand index reads unknown buffer "
                            f"{node.tensor.name!r}"
                        )
                _check_vector(idx)
    else:
        raise VerificationError(f"unknown statement type {type(stmt).__name__}")


def _check_expr(expr: E.Expr, visible: Set[Tensor], bound: Set[E.Var]) -> None:
    if isinstance(expr, E.Var):
        if expr not in bound:
            raise VerificationError(f"use of unbound variable {expr.name!r}")
        return
    if isinstance(expr, E.Reduce):
        # Reduce axes bind their own variables inside the source.
        _check_expr(expr.source, visible, bound | {ax.var for ax in expr.axes})
        return
    if isinstance(expr, E.TensorLoad):
        if expr.tensor not in visible:
            raise VerificationError(f"load from unknown buffer {expr.tensor.name!r}")
    if isinstance(expr, (E.Ramp, E.Broadcast, E.Shuffle)):
        _check_vector(expr)
    for child in expr.children:
        _check_expr(child, visible, bound)


def _check_vector(expr: E.Expr, inside_vector: bool = False) -> None:
    """Vector well-formedness: positive lane counts, no nested lanes."""
    if isinstance(expr, (E.Ramp, E.Broadcast)):
        if expr.lanes <= 0:
            raise VerificationError(
                f"{type(expr).__name__} with non-positive lane count {expr.lanes}"
            )
        if inside_vector:
            raise VerificationError(
                f"nested vector lanes ({type(expr).__name__} inside a vector expression)"
            )
        for child in expr.children:
            _check_vector(child, inside_vector=True)
        return
    if isinstance(expr, E.Shuffle):
        if inside_vector:
            raise VerificationError(
                "nested vector lanes (Shuffle inside a vector expression)"
            )
        for child in expr.children:
            # Shuffle concatenates vectors; its parts may be vectors but
            # must not nest further.
            _check_vector(child, inside_vector=False)
        return
    for child in expr.children:
        _check_vector(child, inside_vector)
