"""Bounds & shape analysis: prove every buffer access in-bounds, statically.

For each nest, every loop variable contributes ``[0, extent)`` to the
interval environment; every ``TensorLoad``/``Store`` index (including those
inside ``Reduce`` bodies and intrinsic operand bindings, which additionally
bind the reduce/intrinsic axes) must then evaluate to an interval inside the
addressed dimension.  ``likely``-guarded residues are handled by affine
guard composition (:func:`repro.analysis.interval.refine_with_guards`): an
index that exceeds its dimension over the raw grid may still be *proved
in-bounds inside the guarded region*, which is exactly the imperfect-split
situation — the proof is then recorded as *conditional*, and the engine
keeps its masked-gather clamps for that access while eliding them for
unconditionally proved ones.

A failed proof yields a diagnostic naming the nest, the exact index
expression and the violating interval.  An index the interval domain cannot
bound at all (data-dependent addressing) yields an *unproven* nest, not an
error: the program may still be correct, it just is not analyzable.
"""

from __future__ import annotations

from typing import List, Tuple

from ..dsl import expr as E
from ..tir.stmt import IntrinsicCall, Store
from .framework import Diagnostic, Nest, NestProof, iter_nests
from .interval import Env, Interval, loop_env, prove_in_range

__all__ = ["analyze_bounds", "check_nest_bounds"]


def analyze_bounds(func) -> Tuple[List[NestProof], List[Diagnostic]]:
    """Prove every access of every nest of ``func`` in-bounds."""
    proofs: List[NestProof] = []
    diagnostics: List[Diagnostic] = []
    for nest in iter_nests(func):
        proof, diags = check_nest_bounds(nest)
        proofs.append(proof)
        diagnostics.extend(diags)
    return proofs, diagnostics


def check_nest_bounds(nest: Nest) -> Tuple[NestProof, List[Diagnostic]]:
    """The per-nest bounds proof; shared with the rewrite verifier."""
    diags: List[Diagnostic] = []
    env = loop_env(nest.axes)
    if isinstance(nest.body, Store):
        proof = NestProof(nest.name, "store")
        checker = _AccessChecker(nest, env, diags)
        store = nest.body
        for dim, idx in enumerate(store.indices):
            checker.check_index(store.tensor, dim, idx, env, "store")
        checker.check_value(store.value, env)
        proof.accesses = checker.accesses
        proof.bounds_proved = checker.all_proved
        proof.bounds_conditional = checker.used_guard
        return proof, diags
    if isinstance(nest.body, IntrinsicCall):
        proof = NestProof(nest.name, "intrinsic")
        call = nest.body
        # Operand bindings are written over the nest loops plus the
        # intrinsic's own axes.
        ienv: Env = dict(env)
        for ax in call.axes:
            ienv[ax.var] = Interval(0, int(ax.extent) - 1)
        checker = _AccessChecker(nest, ienv, diags)
        for binding in list(call.inputs) + [call.output]:
            for dim, idx in enumerate(binding.program_indices):
                checker.check_index(binding.program_tensor, dim, idx, ienv, "operand")
            for dim, idx in enumerate(binding.intrin_indices):
                checker.check_index(binding.intrin_tensor, dim, idx, ienv, "register")
        proof.accesses = checker.accesses
        proof.bounds_proved = checker.all_proved
        proof.bounds_conditional = checker.used_guard
        return proof, diags
    # Not a store or intrinsic nest: the engine falls back to the
    # interpreter here; nothing to prove, nothing proved.
    proof = NestProof(nest.name, "other")
    return proof, diags


class _AccessChecker:
    """Walks accesses of one nest, proving each index dimension in-range."""

    def __init__(self, nest: Nest, env: Env, diags: List[Diagnostic]) -> None:
        self.nest = nest
        self.base_env = env
        self.diags = diags
        self.accesses = 0
        self.all_proved = True
        self.used_guard = False

    def check_index(self, tensor, dim: int, idx: E.Expr, env: Env, what: str) -> None:
        self.accesses += 1
        extent = tensor.shape[dim]
        proved, used_guard, interval = prove_in_range(
            idx, extent, env, self.nest.guards
        )
        if proved:
            self.used_guard = self.used_guard or used_guard
            return
        self.all_proved = False
        if interval is None:
            self.diags.append(
                Diagnostic(
                    "bounds",
                    "warning",
                    f"cannot bound {what} index into "
                    f"{tensor.name!r} dim {dim} (extent {extent})",
                    nest=self.nest.name,
                    index_expr=str(idx),
                )
            )
            return
        self.diags.append(
            Diagnostic(
                "bounds",
                "error",
                f"{what} index into {tensor.name!r} dim {dim} may leave "
                f"[0, {extent - 1}]",
                nest=self.nest.name,
                index_expr=str(idx),
                interval=(interval.lo, interval.hi),
            )
        )

    def check_value(self, expr: E.Expr, env: Env) -> None:
        """Check every load reachable from a store value (Reduce binds axes)."""
        if isinstance(expr, E.TensorLoad):
            for dim, idx in enumerate(expr.indices):
                self.check_index(expr.tensor, dim, idx, env, "load")
                # Indirect addressing: the index itself may read tensors.
                for child in idx.children:
                    self.check_value(child, env)
            return
        if isinstance(expr, E.Reduce):
            sub = dict(env)
            for ax in expr.axes:
                sub[ax.var] = Interval(0, int(ax.extent) - 1)
            self.check_value(expr.source, sub)
            return
        for child in expr.children:
            self.check_value(child, env)
