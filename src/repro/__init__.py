"""Reproduction of "UNIT: Unifying Tensorized Instruction Compilation" (CGO 2021).

The package is organised in the same layers as the paper's Figure 3:

* ``repro.dsl`` / ``repro.schedule`` / ``repro.tir`` — the tensor DSL, the
  schedule language, and the loop-based tensor IR (the TVM substrate the
  paper builds on, reimplemented from scratch).
* ``repro.isa`` — tensorized instructions described as small DSL programs
  (Intel VNNI, ARM DOT, Nvidia Tensor Core, plus SIMD fallbacks).
* ``repro.inspector`` — applicability detection: arithmetic isomorphism and
  array-access isomorphism.
* ``repro.rewriter`` — loop reorganization, tensorized-instruction
  replacement, and the CPU/GPU tuners.
* ``repro.hwsim`` — analytical CPU/GPU performance models standing in for
  the Cascade Lake / Graviton2 / V100 machines of the evaluation.
* ``repro.baselines`` — oneDNN / cuDNN / MXNet / hand-written-TVM cost
  models used as comparison points.
* ``repro.graph`` / ``repro.models`` — a Relay-like graph IR, quantization
  and layout passes, and the DNN model zoo used in the end-to-end figures.
* ``repro.core`` — the UNIT pipeline: ``tensorize()`` for a single operator
  and ``compile_model()`` for end-to-end inference.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
