"""Span-based tracer with parent/child nesting and exclusive-time math.

``span("tir.compile_plan", func=name)`` is a context manager.  With no
tracer installed it returns a shared immutable null object — the first
statement of :func:`span` is a global load and a ``None`` test, so
instrumentation left permanently in hot paths costs nothing in production
(the same discipline as ``testing/faults.fire`` and
``telemetry.metrics.count``).

With a tracer installed, each thread keeps its own span stack (spans on
different threads never parent each other).  A finished span records:

* ``dur_s`` — wall-clock from ``__enter__`` to ``__exit__``;
* ``excl_s`` — ``dur_s`` minus the wall-clock of its direct children,
  i.e. time spent in this span's own code ("self time" in a flame graph);
* structured attributes (``sp.set(outcome="promoted")`` merges more).

The clock is injectable (``Tracer(clock=fake)``) so the exclusive-time
arithmetic is tested deterministically.  Finished spans append to a
lock-guarded list; export as JSONL with :meth:`Tracer.export_jsonl` or
render with :func:`format_span_tree` / :func:`top_spans`.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "SpanRecord",
    "Tracer",
    "active",
    "format_span_tree",
    "install",
    "span",
    "top_spans",
    "tracing",
    "uninstall",
]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, as exported to JSONL and the results DB."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_s: float
    dur_s: float
    excl_s: float
    thread: str
    attrs: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "dur_s": self.dur_s,
            "excl_s": self.excl_s,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """The shared disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = (
        "tracer", "name", "attrs", "span_id", "parent_id", "start_s", "child_s",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.start_s = 0.0
        self.child_s = 0.0

    def set(self, **attrs) -> "_Span":
        """Merge structured attributes into the span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        tracer = self.tracer
        self.span_id = tracer._next_id()
        stack = tracer._stack()
        if stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self.start_s = tracer.clock()
        return self

    def __exit__(self, *exc) -> bool:
        tracer = self.tracer
        end_s = tracer.clock()
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        dur_s = end_s - self.start_s
        if stack:
            stack[-1].child_s += dur_s
        tracer._record(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                start_s=self.start_s,
                dur_s=dur_s,
                excl_s=dur_s - self.child_s,
                thread=threading.current_thread().name,
                attrs=self.attrs,
            )
        )
        return False


class Tracer:
    """Collects finished spans; one thread-local span stack per thread."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self._lock = threading.Lock()
        self._finished: List[SpanRecord] = []
        self._seq = 0
        self._local = threading.local()

    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_id(self) -> int:
        with self._lock:
            self._seq += 1
            return self._seq

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._finished.append(record)

    def finished(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()

    def export_jsonl(self, path: str) -> int:
        """Write one JSON object per finished span; returns the span count."""
        records = self.finished()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
        return len(records)


_ACTIVE: Optional[Tracer] = None


def active() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


def install(tracer: Optional[Tracer] = None) -> Tracer:
    global _ACTIVE
    if tracer is None:
        tracer = Tracer()
    _ACTIVE = tracer
    return tracer


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Scoped install: the previous tracer (usually ``None``) is restored."""
    global _ACTIVE
    previous = _ACTIVE
    tracer = install(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE = previous


def span(name: str, **attrs):
    """Open a span; returns the shared null object when tracing is off."""
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return _Span(tracer, name, attrs)


# -- rendering ---------------------------------------------------------------


def _children(records: Sequence[SpanRecord]) -> Dict[Optional[int], List[SpanRecord]]:
    by_parent: Dict[Optional[int], List[SpanRecord]] = {}
    known = {record.span_id for record in records}
    for record in records:
        parent = record.parent_id if record.parent_id in known else None
        by_parent.setdefault(parent, []).append(record)
    for children in by_parent.values():
        children.sort(key=lambda r: (r.start_s, r.span_id))
    return by_parent


def format_span_tree(records: Sequence[SpanRecord]) -> str:
    """Indented parent/child rendering with wall and exclusive times."""
    by_parent = _children(records)
    lines: List[str] = []

    def _walk(parent: Optional[int], depth: int) -> None:
        for record in by_parent.get(parent, []):
            attrs = " ".join(f"{k}={v}" for k, v in sorted(record.attrs.items()))
            lines.append(
                "  " * depth
                + f"{record.name}  wall={record.dur_s * 1e3:.3f}ms"
                + f" excl={record.excl_s * 1e3:.3f}ms"
                + (f"  [{attrs}]" if attrs else "")
            )
            _walk(record.span_id, depth + 1)

    _walk(None, 0)
    return "\n".join(lines)


def top_spans(
    records: Sequence[SpanRecord], n: int = 10
) -> List[Tuple[str, int, float, float]]:
    """Top-N span names by total exclusive time.

    Returns ``(name, calls, total_excl_s, total_wall_s)`` rows, the flame
    summary the query CLI renders per run.
    """
    totals: Dict[str, List[float]] = {}
    for record in records:
        row = totals.setdefault(record.name, [0, 0.0, 0.0])
        row[0] += 1
        row[1] += record.excl_s
        row[2] += record.dur_s
    ranked = sorted(totals.items(), key=lambda item: item[1][1], reverse=True)
    return [
        (name, int(calls), excl, wall) for name, (calls, excl, wall) in ranked[:n]
    ]
