"""Sqlite results store: every bench run, span, and regression verdict.

A single-file :mod:`sqlite3` database (WAL mode) that turns the one-shot
``BENCH_*.json`` artifacts into a queryable history.  Each recorded run
stores:

* ``runs`` — kind (``compile_time`` / ``distributed_tuning`` / ``service``
  / ...), label, wall-clock timestamp, and run metadata: git revision,
  host, python version, native-toolchain availability, plus the full
  sanitized JSON payload;
* ``metrics`` — the payload flattened to dotted-path numeric leaves
  (``table1[0].vector_s``), the same paths ``check_regression.py``
  compares, so trends and baseline gates speak one metric language;
* ``spans`` — finished tracer spans (name, parent, wall, exclusive,
  attributes) for per-run flame summaries;
* ``verdicts`` — per-metric regression verdicts from
  ``check_regression.py``;
* ``service_snapshots`` — live ``stats`` wire responses captured by
  ``repro query service --record``.

JSON sanitation: sqlite and downstream ``json.loads`` must never see NaN
or ±inf (``json.dumps`` would emit non-standard tokens), so
:func:`json_safe` maps non-finite floats to ``None`` before storage and
:func:`numeric_leaves` skips them entirely.
"""

from __future__ import annotations

import json
import math
import os
import platform
import sqlite3
import subprocess
import sys
import threading
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "ResultsDB",
    "default_db_path",
    "json_safe",
    "numeric_leaves",
    "record_bench",
    "run_metadata",
]

DB_ENV_VAR = "REPRO_RESULTS_DB"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    kind TEXT NOT NULL,
    label TEXT,
    created_unix REAL NOT NULL,
    git_rev TEXT,
    host TEXT,
    python TEXT,
    toolchain TEXT,
    payload TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS metrics (
    run_id INTEGER NOT NULL REFERENCES runs(id),
    path TEXT NOT NULL,
    value REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_metrics_path ON metrics(path, run_id);
CREATE TABLE IF NOT EXISTS spans (
    run_id INTEGER NOT NULL REFERENCES runs(id),
    span_id INTEGER NOT NULL,
    parent_id INTEGER,
    name TEXT NOT NULL,
    start_s REAL NOT NULL,
    dur_s REAL NOT NULL,
    excl_s REAL NOT NULL,
    thread TEXT,
    attrs TEXT
);
CREATE INDEX IF NOT EXISTS idx_spans_run ON spans(run_id);
CREATE TABLE IF NOT EXISTS verdicts (
    run_id INTEGER REFERENCES runs(id),
    metric TEXT NOT NULL,
    kind TEXT NOT NULL,
    ok INTEGER NOT NULL,
    fresh REAL,
    baseline REAL,
    created_unix REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS service_snapshots (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    created_unix REAL NOT NULL,
    address TEXT,
    payload TEXT NOT NULL
);
"""


def default_db_path() -> str:
    """``$REPRO_RESULTS_DB`` or ``results.db`` in the working directory."""
    return os.environ.get(DB_ENV_VAR) or "results.db"


def json_safe(data):
    """Deep-copy ``data`` with non-finite floats replaced by ``None``.

    The result round-trips through strict JSON: ``json.loads(json.dumps(x))``
    never produces ``NaN`` / ``Infinity`` tokens.
    """
    if isinstance(data, dict):
        return {str(key): json_safe(value) for key, value in data.items()}
    if isinstance(data, (list, tuple)):
        return [json_safe(value) for value in data]
    if isinstance(data, bool) or data is None or isinstance(data, (int, str)):
        return data
    if isinstance(data, float):
        return data if math.isfinite(data) else None
    return str(data)


def numeric_leaves(data, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Flatten nested dicts/lists into dotted-path -> finite-numeric pairs.

    The path syntax (``a.b[0].c``) matches ``check_regression.py`` exactly,
    so ``--history`` trends and baseline gates address the same metrics.
    """
    if isinstance(data, dict):
        for key, value in data.items():
            yield from numeric_leaves(value, f"{prefix}.{key}" if prefix else str(key))
    elif isinstance(data, (list, tuple)):
        for index, value in enumerate(data):
            yield from numeric_leaves(value, f"{prefix}[{index}]")
    elif isinstance(data, bool):
        return  # flags, not metrics
    elif isinstance(data, (int, float)):
        value = float(data)
        if math.isfinite(value):
            yield prefix, value


def run_metadata() -> Dict[str, str]:
    """Git revision, host, python version, and native-toolchain kind."""
    try:
        git_rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        git_rev = "unknown"
    try:
        from ..tir.backend import native_toolchain

        kind, _ = native_toolchain()
        toolchain = kind or "none"
    except Exception:
        toolchain = "unknown"
    return {
        "git_rev": git_rev,
        "host": platform.node() or "unknown",
        "python": sys.version.split()[0],
        "toolchain": toolchain,
    }


class ResultsDB:
    """One sqlite connection, WAL mode, guarded by a single lock."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path or default_db_path()
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultsDB":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- writes -------------------------------------------------------------
    def record_run(
        self,
        kind: str,
        payload: dict,
        label: Optional[str] = None,
        spans: Optional[Sequence] = None,
        metadata: Optional[Dict[str, str]] = None,
    ) -> int:
        """Persist one run: payload, flattened metrics, and its spans."""
        meta = metadata if metadata is not None else run_metadata()
        safe = json_safe(payload)
        with self._lock:
            cursor = self._conn.execute(
                "INSERT INTO runs (kind, label, created_unix, git_rev, host,"
                " python, toolchain, payload) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    kind,
                    label,
                    time.time(),
                    meta.get("git_rev"),
                    meta.get("host"),
                    meta.get("python"),
                    meta.get("toolchain"),
                    json.dumps(safe, sort_keys=True),
                ),
            )
            run_id = int(cursor.lastrowid)
            self._conn.executemany(
                "INSERT INTO metrics (run_id, path, value) VALUES (?, ?, ?)",
                [(run_id, path, value) for path, value in numeric_leaves(safe)],
            )
            if spans:
                self._conn.executemany(
                    "INSERT INTO spans (run_id, span_id, parent_id, name,"
                    " start_s, dur_s, excl_s, thread, attrs)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    [
                        (
                            run_id,
                            record.span_id,
                            record.parent_id,
                            record.name,
                            record.start_s,
                            record.dur_s,
                            record.excl_s,
                            record.thread,
                            json.dumps(json_safe(record.attrs), sort_keys=True),
                        )
                        for record in spans
                    ],
                )
            self._conn.commit()
        return run_id

    def record_verdicts(
        self, run_id: Optional[int], rows: Sequence[Tuple[str, str, bool, float, float]]
    ) -> None:
        """Persist ``(metric, kind, ok, fresh, baseline)`` verdict rows."""
        now = time.time()
        with self._lock:
            self._conn.executemany(
                "INSERT INTO verdicts (run_id, metric, kind, ok, fresh,"
                " baseline, created_unix) VALUES (?, ?, ?, ?, ?, ?, ?)",
                [
                    (run_id, metric, kind, int(ok), fresh, baseline, now)
                    for metric, kind, ok, fresh, baseline in rows
                ],
            )
            self._conn.commit()

    def record_service_snapshot(self, address: str, payload: dict) -> int:
        with self._lock:
            cursor = self._conn.execute(
                "INSERT INTO service_snapshots (created_unix, address, payload)"
                " VALUES (?, ?, ?)",
                (time.time(), address, json.dumps(json_safe(payload), sort_keys=True)),
            )
            self._conn.commit()
            return int(cursor.lastrowid)

    # -- queries ------------------------------------------------------------
    def runs(self, kind: Optional[str] = None, limit: int = 20) -> List[Dict]:
        """Most-recent-first run history with per-run metric/span counts."""
        query = (
            "SELECT r.id, r.kind, r.label, r.created_unix, r.git_rev, r.host,"
            " r.python, r.toolchain,"
            " (SELECT COUNT(*) FROM metrics m WHERE m.run_id = r.id),"
            " (SELECT COUNT(*) FROM spans s WHERE s.run_id = r.id)"
            " FROM runs r"
        )
        params: List = []
        if kind is not None:
            query += " WHERE r.kind = ?"
            params.append(kind)
        query += " ORDER BY r.id DESC LIMIT ?"
        params.append(limit)
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [
            {
                "id": row[0],
                "kind": row[1],
                "label": row[2],
                "created_unix": row[3],
                "git_rev": row[4],
                "host": row[5],
                "python": row[6],
                "toolchain": row[7],
                "metrics": row[8],
                "spans": row[9],
            }
            for row in rows
        ]

    def latest_run_id(self, kind: Optional[str] = None) -> Optional[int]:
        query = "SELECT MAX(id) FROM runs"
        params: List = []
        if kind is not None:
            query += " WHERE kind = ?"
            params.append(kind)
        with self._lock:
            row = self._conn.execute(query, params).fetchone()
        return int(row[0]) if row and row[0] is not None else None

    def payload(self, run_id: int) -> Optional[dict]:
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM runs WHERE id = ?", (run_id,)
            ).fetchone()
        return json.loads(row[0]) if row else None

    def metric_paths(self, like: Optional[str] = None) -> List[str]:
        query = "SELECT DISTINCT path FROM metrics"
        params: List = []
        if like:
            query += " WHERE path LIKE ?"
            params.append(like)
        query += " ORDER BY path"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [row[0] for row in rows]

    def metric_trend(
        self, path: str, kind: Optional[str] = None, last: int = 10
    ) -> List[Dict]:
        """Oldest-to-newest ``(run, timestamp, value)`` rows for one metric.

        ``path`` may contain SQL ``LIKE`` wildcards (``%``/``_``); exact
        dotted paths work unchanged since ``[``/``]``/``.`` are literal.
        """
        query = (
            "SELECT m.run_id, m.path, m.value, r.created_unix, r.git_rev"
            " FROM metrics m JOIN runs r ON r.id = m.run_id"
            " WHERE m.path LIKE ?"
        )
        params: List = [path]
        if kind is not None:
            query += " AND r.kind = ?"
            params.append(kind)
        query += " ORDER BY m.run_id DESC LIMIT ?"
        params.append(max(1, last) * 8)  # headroom for multi-path patterns
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        per_path: Dict[str, List[Dict]] = {}
        for run_id, mpath, value, created, git_rev in rows:
            bucket = per_path.setdefault(mpath, [])
            if len(bucket) < max(1, last):
                bucket.append(
                    {
                        "run_id": run_id,
                        "path": mpath,
                        "value": value,
                        "created_unix": created,
                        "git_rev": git_rev,
                    }
                )
        out: List[Dict] = []
        for mpath in sorted(per_path):
            out.extend(reversed(per_path[mpath]))  # oldest first per path
        return out

    def spans(self, run_id: int) -> List[Dict]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT span_id, parent_id, name, start_s, dur_s, excl_s,"
                " thread, attrs FROM spans WHERE run_id = ?"
                " ORDER BY start_s, span_id",
                (run_id,),
            ).fetchall()
        return [
            {
                "span_id": row[0],
                "parent_id": row[1],
                "name": row[2],
                "start_s": row[3],
                "dur_s": row[4],
                "excl_s": row[5],
                "thread": row[6],
                "attrs": json.loads(row[7]) if row[7] else {},
            }
            for row in rows
        ]

    def top_spans(self, run_id: int, n: int = 10) -> List[Dict]:
        """Top-N span names by total exclusive time for one run."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT name, COUNT(*), SUM(excl_s), SUM(dur_s)"
                " FROM spans WHERE run_id = ? GROUP BY name"
                " ORDER BY SUM(excl_s) DESC LIMIT ?",
                (run_id, n),
            ).fetchall()
        return [
            {"name": row[0], "calls": row[1], "excl_s": row[2], "wall_s": row[3]}
            for row in rows
        ]

    def verdicts(self, limit: int = 50) -> List[Dict]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT run_id, metric, kind, ok, fresh, baseline, created_unix"
                " FROM verdicts ORDER BY rowid DESC LIMIT ?",
                (limit,),
            ).fetchall()
        return [
            {
                "run_id": row[0],
                "metric": row[1],
                "kind": row[2],
                "ok": bool(row[3]),
                "fresh": row[4],
                "baseline": row[5],
                "created_unix": row[6],
            }
            for row in rows
        ]


def record_bench(
    kind: str,
    payload: dict,
    db_path: Optional[str] = None,
    label: Optional[str] = None,
    spans: Optional[Sequence] = None,
) -> int:
    """Record one bench run into the (default-pathed) results DB."""
    with ResultsDB(db_path) as db:
        return db.record_run(kind, payload, label=label, spans=spans)
