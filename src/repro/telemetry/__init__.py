"""Unified observability: metrics registry, span tracer, results DB, CLI.

Three cooperating layers (see the README "Observability" section):

* :mod:`repro.telemetry.metrics` — process-wide counters / gauges /
  histograms, off by default with a first-statement-early-return hot path;
* :mod:`repro.telemetry.trace` — nested spans with wall + exclusive time,
  JSONL export, and tree/flame rendering;
* :mod:`repro.telemetry.resultsdb` — sqlite (WAL) history of bench runs,
  spans, and regression verdicts, queried by ``python -m repro query``
  (:mod:`repro.telemetry.query`, imported lazily: it needs ``click``).
"""

from . import metrics, trace
from .metrics import MetricsRegistry, collecting, register_stats_gauges
from .resultsdb import ResultsDB, default_db_path, record_bench, run_metadata
from .trace import Tracer, format_span_tree, span, top_spans, tracing

__all__ = [
    "MetricsRegistry",
    "ResultsDB",
    "Tracer",
    "collecting",
    "default_db_path",
    "format_span_tree",
    "metrics",
    "record_bench",
    "register_stats_gauges",
    "run_metadata",
    "span",
    "top_spans",
    "trace",
    "tracing",
]
