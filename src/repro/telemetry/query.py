"""``python -m repro query`` — the operational query CLI.

Subcommands (all read the sqlite results DB written by the benchmarks,
except ``service`` which speaks the live wire protocol):

* ``runs``    — run history: id, kind, when, git rev, toolchain, row counts;
* ``trend``   — one metric's trajectory over the last K runs (value, delta
  vs the previous run, direction), the over-time complement to
  ``check_regression.py``'s one-baseline gate;
* ``spans``   — per-run flame summary (top-N names by exclusive time) or
  the full parent/child tree with ``--tree``;
* ``service`` — live daemon introspection: wraps the ``stats`` wire op and
  renders uptime, per-op request counts, and the telemetry counter
  snapshot; ``--record`` stores the snapshot in the DB.

Output formats: ``table`` (rich when importable, plain monospace
otherwise — rich is an optional dependency and must not be required),
``csv``, and ``json``.
"""

from __future__ import annotations

import csv
import io
import json
import sys
import time
from typing import Dict, List, Optional, Sequence

import click

from .resultsdb import ResultsDB, default_db_path

try:  # pragma: no cover - exercised only where rich is installed
    from rich.console import Console
    from rich.table import Table

    _HAVE_RICH = True
except ImportError:
    _HAVE_RICH = False


def _plain_table(rows: List[Sequence], columns: Sequence[str], title: str) -> str:
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(column)), *(len(row[i]) for row in cells)) if cells else len(column)
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in cells
    ]
    return "\n".join([title, header, rule, *body])


def format_output(
    rows: List[Sequence],
    columns: Sequence[str],
    fmt: str = "table",
    title: str = "",
) -> None:
    """Render rows as a rich/plain table, CSV, or JSON."""
    if fmt == "json":
        click.echo(
            json.dumps(
                [dict(zip(columns, row)) for row in rows], indent=2, sort_keys=True
            )
        )
        return
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(columns)
        writer.writerows(rows)
        click.echo(buffer.getvalue().rstrip("\n"))
        return
    if _HAVE_RICH:
        table = Table(title=title or None)
        for column in columns:
            table.add_column(str(column))
        for row in rows:
            table.add_row(*(str(cell) for cell in row))
        Console().print(table)
        return
    click.echo(_plain_table(rows, columns, title))


def _when(created_unix: Optional[float]) -> str:
    if not created_unix:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(created_unix))


_FORMAT = click.option(
    "--format",
    "fmt",
    type=click.Choice(["table", "csv", "json"]),
    default="table",
    show_default=True,
    help="output format",
)
_DB = click.option(
    "--db",
    "db_path",
    default=None,
    help="results DB path (default: $REPRO_RESULTS_DB or ./results.db)",
)


@click.group(name="query")
def query() -> None:
    """Query the telemetry results database and live services."""


@query.command()
@click.option("--kind", default=None, help="filter by run kind")
@click.option("--limit", default=20, show_default=True, help="max rows")
@_DB
@_FORMAT
def runs(kind: Optional[str], limit: int, db_path: Optional[str], fmt: str) -> None:
    """Run history, most recent first."""
    with ResultsDB(db_path) as db:
        history = db.runs(kind=kind, limit=limit)
    rows = [
        (
            run["id"],
            run["kind"],
            run["label"] or "-",
            _when(run["created_unix"]),
            run["git_rev"] or "-",
            run["toolchain"] or "-",
            run["metrics"],
            run["spans"],
        )
        for run in history
    ]
    format_output(
        rows,
        ["id", "kind", "label", "when", "git_rev", "toolchain", "metrics", "spans"],
        fmt,
        title=f"runs ({db_path or default_db_path()})",
    )


@query.command()
@click.argument("metric", required=False)
@click.option("--kind", default=None, help="restrict to one run kind")
@click.option("--last", default=10, show_default=True, help="trailing runs per path")
@click.option("--list", "list_paths", is_flag=True, help="list matching metric paths")
@_DB
@_FORMAT
def trend(
    metric: Optional[str],
    kind: Optional[str],
    last: int,
    list_paths: bool,
    db_path: Optional[str],
    fmt: str,
) -> None:
    """One metric's trajectory over the last K recorded runs.

    METRIC is a dotted path as printed by check_regression.py
    (e.g. 'table1[0].vector_s'); SQL LIKE wildcards (%/_) match families.
    """
    with ResultsDB(db_path) as db:
        if list_paths or metric is None:
            like = metric if metric else None
            paths = db.metric_paths(like=like)
            format_output(
                [(path,) for path in paths], ["path"], fmt, title="metric paths"
            )
            return
        points = db.metric_trend(metric, kind=kind, last=last)
    rows: List[Sequence] = []
    previous: Dict[str, float] = {}
    for point in points:
        prev = previous.get(point["path"])
        if prev is None:
            delta, arrow = "-", " "
        else:
            delta = f"{(point['value'] - prev) / prev * 100:+.1f}%" if prev else "-"
            arrow = "+" if point["value"] > prev else ("-" if point["value"] < prev else "=")
        previous[point["path"]] = point["value"]
        rows.append(
            (
                point["path"],
                point["run_id"],
                _when(point["created_unix"]),
                point["git_rev"] or "-",
                f"{point['value']:.6g}",
                delta,
                arrow,
            )
        )
    format_output(
        rows,
        ["path", "run", "when", "git_rev", "value", "delta", "dir"],
        fmt,
        title=f"trend {metric}",
    )


@query.command()
@click.option("--run", "run_id", type=int, default=None, help="run id (default: latest)")
@click.option("--top", "top_n", default=10, show_default=True, help="top-N span names")
@click.option("--tree", is_flag=True, help="print the full parent/child span tree")
@_DB
@_FORMAT
def spans(
    run_id: Optional[int],
    top_n: int,
    tree: bool,
    db_path: Optional[str],
    fmt: str,
) -> None:
    """Span flame summary (top-N exclusive-time) for one recorded run."""
    with ResultsDB(db_path) as db:
        if run_id is None:
            run_id = db.latest_run_id()
        if run_id is None:
            raise click.ClickException("results DB has no recorded runs")
        if tree:
            from .trace import SpanRecord, format_span_tree

            records = [
                SpanRecord(
                    span_id=row["span_id"],
                    parent_id=row["parent_id"],
                    name=row["name"],
                    start_s=row["start_s"],
                    dur_s=row["dur_s"],
                    excl_s=row["excl_s"],
                    thread=row["thread"] or "",
                    attrs=row["attrs"],
                )
                for row in db.spans(run_id)
            ]
            click.echo(f"span tree for run {run_id}:")
            click.echo(format_span_tree(records) or "(no spans recorded)")
            return
        summary = db.top_spans(run_id, n=top_n)
    rows = [
        (
            row["name"],
            row["calls"],
            f"{row['excl_s'] * 1e3:.3f}",
            f"{row['wall_s'] * 1e3:.3f}",
        )
        for row in summary
    ]
    format_output(
        rows,
        ["span", "calls", "excl_ms", "wall_ms"],
        fmt,
        title=f"top spans by exclusive time (run {run_id})",
    )


@query.command()
@click.option("--host", default="127.0.0.1", show_default=True)
@click.option("--port", default=7463, show_default=True)
@click.option("--record", is_flag=True, help="store the snapshot in the results DB")
@_DB
@_FORMAT
def service(host: str, port: int, record: bool, db_path: Optional[str], fmt: str) -> None:
    """Live service introspection via the stats/health wire ops."""
    from ..service.client import ServiceClient

    client = ServiceClient((host, port), retries=1)
    try:
        stats = client.stats()
    except Exception as exc:
        raise click.ClickException(f"service at {host}:{port} unreachable: {exc}")
    if record:
        with ResultsDB(db_path) as db:
            snap_id = db.record_service_snapshot(f"{host}:{port}", stats)
        click.echo(f"recorded service snapshot {snap_id}")
    if fmt == "json":
        click.echo(json.dumps(stats, indent=2, sort_keys=True))
        return
    rows: List[Sequence] = [
        ("uptime_s", f"{stats.get('uptime_s', 0.0):.1f}"),
        ("role", stats.get("role", "-")),
    ]
    for section in ("service", "session", "store", "expr_cache", "replication"):
        payload = stats.get(section)
        if not isinstance(payload, dict):
            continue
        for key, value in sorted(payload.items()):
            if isinstance(value, dict):
                for sub_key, sub_value in sorted(value.items()):
                    rows.append((f"{section}.{key}.{sub_key}", sub_value))
            else:
                rows.append((f"{section}.{key}", value))
    telemetry = stats.get("telemetry")
    if isinstance(telemetry, dict):
        for key, value in sorted(telemetry.items()):
            rows.append((f"telemetry.{key}", value))
    format_output(rows, ["metric", "value"], fmt, title=f"service {host}:{port}")


@query.command()
@click.option("--limit", default=20, show_default=True)
@_DB
@_FORMAT
def verdicts(limit: int, db_path: Optional[str], fmt: str) -> None:
    """Recorded regression verdicts, most recent first."""
    with ResultsDB(db_path) as db:
        rows_raw = db.verdicts(limit=limit)
    rows = [
        (
            row["run_id"] if row["run_id"] is not None else "-",
            row["metric"],
            row["kind"],
            "PASS" if row["ok"] else "FAIL",
            f"{row['fresh']:.6g}" if row["fresh"] is not None else "-",
            f"{row['baseline']:.6g}" if row["baseline"] is not None else "-",
            _when(row["created_unix"]),
        )
        for row in rows_raw
    ]
    format_output(
        rows,
        ["run", "metric", "kind", "verdict", "fresh", "baseline", "when"],
        fmt,
        title="regression verdicts",
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by ``python -m repro query``."""
    try:
        query.main(
            args=list(sys.argv[1:] if argv is None else argv),
            prog_name="python -m repro query",
            standalone_mode=False,
        )
    except click.ClickException as exc:
        exc.show()
        return exc.exit_code
    except click.Abort:
        return 130
    return 0
