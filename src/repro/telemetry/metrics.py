"""Process-wide metrics registry: counters, gauges, histograms.

The registry is **off by default** and follows the same zero-overhead
discipline as :func:`repro.testing.faults.fire`: every module-level entry
point (:func:`count`, :func:`observe`, :func:`event`) begins with a single
global load and a ``None`` test and returns immediately when no registry is
installed.  No locks, no dict lookups, no string formatting happen on the
disabled path, so instrumentation can live permanently inside hot loops
(plan-cache lookups, tiered dispatch, service request handling) without
taxing production runs.

Three instrument kinds:

* **counters** — monotonically increasing event tallies
  (``tir.plan_cache.hits``, ``service.requests.tune``);
* **gauges** — values read lazily at snapshot time from a registered
  callback.  :func:`register_stats_gauges` wires an existing stats
  dataclass (``EngineStats``, ``StoreStats``, ``ServiceStats``, ...) so the
  dataclass stays the single source of truth and the telemetry view can
  never drift from it;
* **histograms** — fixed-boundary bucket counts plus sum/count, for
  latency distributions (``service.request_s``).

Thread safety: one :class:`threading.Lock` per registry guards all three
tables.  The lint in ``tools/lint_concurrency.py`` polices that discipline
statically (``MetricsRegistry._lock`` guards ``_counters`` / ``_gauges`` /
``_histograms``).
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from contextlib import contextmanager
from dataclasses import fields as _dataclass_fields, is_dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS_S",
    "MetricsRegistry",
    "active",
    "collecting",
    "count",
    "event",
    "gauge",
    "install",
    "observe",
    "register_stats_gauges",
    "snapshot_counters",
    "uninstall",
]

# Latency-flavoured defaults: 100us .. 10s, roughly log-spaced.  Fixed at
# registry construction so concurrent observers never see a resize.
DEFAULT_BUCKETS_S: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
)


class _Histogram:
    """Fixed-boundary bucket counts.  Mutated only under the registry lock."""

    __slots__ = ("boundaries", "counts", "total", "sum")

    def __init__(self, boundaries: Sequence[float]) -> None:
        self.boundaries: Tuple[float, ...] = tuple(boundaries)
        self.counts: List[int] = [0] * (len(self.boundaries) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.boundaries, value)] += 1
        self.total += 1
        self.sum += value

    def as_dict(self) -> Dict[str, object]:
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "count": self.total,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Thread-safe counters, lazy gauges, and fixed-bucket histograms."""

    def __init__(self, buckets_s: Sequence[float] = DEFAULT_BUCKETS_S) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, Callable[[], float]] = {}
        self._histograms: Dict[str, _Histogram] = {}
        self.default_buckets: Tuple[float, ...] = tuple(buckets_s)

    # -- counters -----------------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def counters(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._counters)

    # -- gauges -------------------------------------------------------------
    def gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register ``fn`` to be evaluated lazily at snapshot time."""
        with self._lock:
            self._gauges[name] = fn

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = lambda: value

    def gauges(self) -> Dict[str, float]:
        """Evaluate every gauge callback; broken callbacks are skipped."""
        with self._lock:
            callbacks = list(self._gauges.items())
        out: Dict[str, float] = {}
        for name, fn in callbacks:
            try:
                value = fn()
            except Exception:
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            out[name] = float(value)
        return out

    # -- histograms ---------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = _Histogram(self.default_buckets)
                self._histograms[name] = hist
            hist.observe(value)

    def histograms(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            return {name: hist.as_dict() for name, hist in self._histograms.items()}

    # -- snapshot -----------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """Counters + evaluated gauges + histograms, as one JSON-safe dict."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": self.histograms(),
        }


# The single module-global every hot-path helper tests.  ``None`` means
# telemetry is off and every entry point below is a two-instruction no-op.
_ACTIVE: Optional[MetricsRegistry] = None


def active() -> Optional[MetricsRegistry]:
    """The installed registry, or ``None`` when telemetry is disabled."""
    return _ACTIVE


def install(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) the process-wide registry."""
    global _ACTIVE
    if registry is None:
        registry = MetricsRegistry()
    _ACTIVE = registry
    return registry


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def collecting(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Scoped install: previous registry (usually ``None``) is restored."""
    global _ACTIVE
    previous = _ACTIVE
    registry = install(registry)
    try:
        yield registry
    finally:
        _ACTIVE = previous


def count(name: str, value: float = 1) -> None:
    """Increment a counter; first statement returns when telemetry is off."""
    registry = _ACTIVE
    if registry is None:
        return
    registry.count(name, value)


def event(prefix: str, label: str, value: float = 1) -> None:
    """Count ``{prefix}.{label}``, formatting only when a sink is active."""
    registry = _ACTIVE
    if registry is None:
        return
    registry.count(f"{prefix}.{label}", value)


def observe(name: str, value: float) -> None:
    """Record one histogram observation; no-op when telemetry is off."""
    registry = _ACTIVE
    if registry is None:
        return
    registry.observe(name, value)


def gauge(name: str, fn: Callable[[], float]) -> None:
    """Register a lazy gauge callback; no-op when telemetry is off."""
    registry = _ACTIVE
    if registry is None:
        return
    registry.gauge(name, fn)


def snapshot_counters() -> Dict[str, float]:
    """Counter snapshot for wire responses; ``{}`` when telemetry is off."""
    registry = _ACTIVE
    if registry is None:
        return {}
    return registry.counters()


def register_stats_gauges(prefix: str, stats: object) -> None:
    """Expose every numeric field of a stats dataclass as a lazy gauge.

    The dataclass instance remains the single source of truth: each gauge
    re-reads its field at snapshot time, so the ``EngineStats`` the engine
    mutates and the ``tir.engine.*`` gauges the telemetry view renders can
    never disagree.  No-op when telemetry is off or ``stats`` is not a
    dataclass instance.
    """
    registry = _ACTIVE
    if registry is None:
        return
    if not is_dataclass(stats) or isinstance(stats, type):
        return
    for field in _dataclass_fields(stats):
        probe = getattr(stats, field.name, None)
        if isinstance(probe, bool) or not isinstance(probe, (int, float)):
            continue

        def _read(obj=stats, attr=field.name) -> float:
            return getattr(obj, attr)

        registry.gauge(f"{prefix}.{field.name}", _read)
